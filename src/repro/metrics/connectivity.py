"""Connectivity-based prior-work metrics (Chapter II, items 6-8).

* **(K,L)-connectivity** [Garbers et al. 1990]: two nodes are
  (K,L)-connected when K edge-disjoint paths of length <= L join them; a
  cluster is (K,L)-connected when every internal pair is.  The paper notes
  such clusters may still have large cut and that the metric is expensive —
  we implement the practical L=2 case (path counting via common neighbors)
  exactly as Garbers' heuristic targets.
* **Edge separability** [Cong & Lim 2004]: the min-cut between a net's two
  endpoints; emphasizes internal connections only.
* **Adhesion** [Kudva et al. 2002]: the sum of min-cuts over all node
  pairs of a cluster — "hardly practical for designs with millions of
  cells", which we make measurable by exposing it for small clusters only.

All three operate on the cluster's induced graph, using networkx max-flow
for min-cuts.  They exist as baselines: the package's experiments show why
the paper's Rent-based scores replace them.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx

from repro.errors import MetricError
from repro.netlist.hypergraph import Netlist


def _induced_graph(netlist: Netlist, cells: Iterable[int]) -> nx.Graph:
    """Clique-expanded induced graph with parallel-edge multiplicity."""
    members: Set[int] = set(cells)
    graph = nx.Graph()
    graph.add_nodes_from(members)
    seen: Set[int] = set()
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            inside = [c for c in netlist.cells_of_net(net) if c in members]
            for a, b in itertools.combinations(inside, 2):
                if graph.has_edge(a, b):
                    graph[a][b]["capacity"] += 1.0
                else:
                    graph.add_edge(a, b, capacity=1.0)
    return graph


def kl_connectivity_l2(netlist: Netlist, cells: Iterable[int]) -> int:
    """Largest K such that the cluster is (K, 2)-connected.

    For L = 2, the number of edge-disjoint paths of length <= 2 between u
    and v equals (direct edge multiplicity) + (number of common neighbors
    reachable by distinct intermediate nodes).  Returns the minimum over
    all internal pairs (0 when some pair shares nothing).
    """
    members = sorted(set(cells))
    if len(members) < 2:
        raise MetricError("(K,L)-connectivity needs at least two cells")
    graph = _induced_graph(netlist, members)
    best_k = None
    for u, v in itertools.combinations(members, 2):
        direct = int(graph[u][v]["capacity"]) if graph.has_edge(u, v) else 0
        common = len(set(graph.neighbors(u)) & set(graph.neighbors(v)) - {u, v})
        k = direct + common
        best_k = k if best_k is None else min(best_k, k)
        if best_k == 0:
            return 0
    return int(best_k)


def edge_separability(
    netlist: Netlist, cells: Iterable[int], u: int, v: int
) -> float:
    """Min-cut between ``u`` and ``v`` in the cluster's induced graph."""
    members = set(cells)
    if u not in members or v not in members:
        raise MetricError("both endpoints must be inside the cluster")
    if u == v:
        raise MetricError("edge separability needs two distinct endpoints")
    graph = _induced_graph(netlist, members)
    if not nx.has_path(graph, u, v):
        return 0.0
    value, _ = nx.minimum_cut(graph, u, v)
    return float(value)


def adhesion(
    netlist: Netlist, cells: Iterable[int], max_cells: int = 40
) -> float:
    """Sum of pairwise min-cuts of the cluster (Kudva et al.).

    Quadratically many max-flow computations — exactly the cost the paper
    cites as impractical; ``max_cells`` guards against accidental use on
    large clusters.
    """
    members = sorted(set(cells))
    if len(members) < 2:
        raise MetricError("adhesion needs at least two cells")
    if len(members) > max_cells:
        raise MetricError(
            f"adhesion on {len(members)} cells exceeds max_cells={max_cells} "
            "(the metric is impractical at scale — the paper's point)"
        )
    graph = _induced_graph(netlist, members)
    total = 0.0
    for u, v in itertools.combinations(members, 2):
        if nx.has_path(graph, u, v):
            value, _ = nx.minimum_cut(graph, u, v)
            total += float(value)
    return total
