"""Degree/Separation (DS) metric of Hagen & Kahng (prior work #5).

``Degree`` is the average number of nets incident to a node of the cluster;
``Separation`` is the average shortest-path distance between node pairs
inside the cluster (paths restricted to the cluster).  The DS value is
``Degree / Separation`` — larger means denser and tighter.  As the paper
notes, it ignores external connections, which is why it cannot identify
GTLs; we include it as a baseline.

Exact all-pairs distances are O(|C| * (|C| + edges)); for large clusters we
sample source nodes, which preserves the average within sampling error.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import MetricError
from repro.netlist.hypergraph import Netlist
from repro.utils.rng import RngLike, ensure_rng


def degree_separation(
    netlist: Netlist,
    group: Iterable[int],
    max_sources: int = 64,
    rng: RngLike = 0,
) -> float:
    """DS value of ``group``: average degree / average pairwise separation.

    Args:
        netlist: the host netlist.
        group: cell indices of the cluster (at least two cells).
        max_sources: BFS sources used to estimate the average separation;
            clusters smaller than this are measured exactly.
        rng: seed or generator for source sampling.

    Returns ``0.0`` for clusters whose members are mutually unreachable
    inside the cluster (infinite separation).
    """
    members: List[int] = sorted(set(group))
    if len(members) < 2:
        raise MetricError("degree_separation needs at least two cells")
    member_set: Set[int] = set(members)

    degree = sum(netlist.cell_degree(c) for c in members) / len(members)

    # Cluster-internal adjacency (via nets with >= 2 members inside).
    adjacency: Dict[int, Set[int]] = {c: set() for c in members}
    seen_nets: Set[int] = set()
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen_nets:
                continue
            seen_nets.add(net)
            inside = [c for c in netlist.cells_of_net(net) if c in member_set]
            for i, a in enumerate(inside):
                for b in inside[i + 1 :]:
                    adjacency[a].add(b)
                    adjacency[b].add(a)

    if len(members) <= max_sources:
        sources = members
    else:
        sources = ensure_rng(rng).sample(members, max_sources)

    total_distance = 0
    total_pairs = 0
    for source in sources:
        distances = _bfs(adjacency, source)
        reached = len(distances) - 1
        if reached < len(members) - 1:
            return 0.0  # some pair unreachable: separation is infinite
        total_distance += sum(distances.values())
        total_pairs += reached
    if total_pairs == 0:
        return 0.0
    separation = total_distance / total_pairs
    if separation == 0:
        return 0.0
    return degree / separation


def _bfs(adjacency: Dict[int, Set[int]], source: int) -> Dict[int, int]:
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances
