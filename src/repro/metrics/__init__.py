"""Cluster-quality metrics.

The package implements the paper's new metrics (Section 3.1):

* ``GTL-S(C)  = T(C) / |C|^p``
* ``nGTL-S(C) = T(C) / (A_G * |C|^p)``
* ``GTL-SD(C) = T(C) / (A_G * |C|^(p * A_C / A_G))``

and all the prior-work metrics it compares against (Chapter II): net cut,
ratio cut / scaled cost, the Rent-exponent metric, absorption, and
degree separation.
"""

from repro.metrics.cut import absorption, net_cut
from repro.metrics.ratio_cut import ratio_cut, rent_metric, scaled_cost
from repro.metrics.rent import (
    estimate_group_rent_exponent,
    estimate_rent_exponent_from_prefixes,
    fit_rent_exponent,
)
from repro.metrics.degree_separation import degree_separation
from repro.metrics.connectivity import adhesion, edge_separability, kl_connectivity_l2
from repro.metrics.gtl_score import (
    ScoreContext,
    density_aware_gtl_score,
    gtl_score,
    normalized_gtl_score,
)

__all__ = [
    "net_cut",
    "absorption",
    "ratio_cut",
    "scaled_cost",
    "rent_metric",
    "estimate_group_rent_exponent",
    "estimate_rent_exponent_from_prefixes",
    "fit_rent_exponent",
    "degree_separation",
    "adhesion",
    "edge_separability",
    "kl_connectivity_l2",
    "ScoreContext",
    "gtl_score",
    "normalized_gtl_score",
    "density_aware_gtl_score",
]
