"""Size-normalized baseline metrics: ratio cut, scaled cost, Rent metric.

These are the prior-work metrics of Chapter II that the paper shows cannot
fairly compare clusters of different sizes:

* ratio cut / scaled cost ``T(C)/|C|`` decreases almost monotonically with
  size (Fig 5's flat bottom curve);
* the Rent metric ``ln T(C) / ln |C|`` [Ng et al.] improves on it but still
  decreases monotonically as C grows.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import MetricError
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import cut_size


def ratio_cut(netlist: Netlist, group: Iterable[int]) -> float:
    """Ratio cut ``T(C) / |C|`` [Chan, Schlag & Zien]."""
    members = group if isinstance(group, set) else set(group)
    if not members:
        raise MetricError("ratio_cut of an empty group")
    return cut_size(netlist, members) / len(members)


def scaled_cost(netlist: Netlist, group: Iterable[int]) -> float:
    """Scaled cost: ratio cut additionally normalized by the netlist size.

    ``T(C) / (|C| * (|V| - |C|))`` — the two-way form of the scaled-cost
    clustering objective.
    """
    members = group if isinstance(group, set) else set(group)
    if not members:
        raise MetricError("scaled_cost of an empty group")
    outside = netlist.num_cells - len(members)
    if outside <= 0:
        raise MetricError("scaled_cost of the whole netlist is undefined")
    return cut_size(netlist, members) / (len(members) * outside)


def rent_metric(netlist: Netlist, group: Iterable[int]) -> float:
    """Rent metric ``ln T(C) / ln |C|`` [Ng, Oldfield & Pitchumani].

    Groups of one cell or with zero cut have no meaningful value; zero cut
    returns ``-inf`` (a perfectly isolated group) to keep ordering sensible.
    """
    members = group if isinstance(group, set) else set(group)
    if len(members) < 2:
        raise MetricError("rent_metric needs at least two cells")
    cut = cut_size(netlist, members)
    if cut == 0:
        return float("-inf")
    return math.log(cut) / math.log(len(members))
