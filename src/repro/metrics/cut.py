"""Cut-based baseline metrics: net cut and absorption.

Net cut ``T(C)`` is the fundamental quantity all the paper's metrics build
on.  Absorption [Alpert & Kahng 1995] counts internal connectivity and is
included as the prior-work baseline the paper criticizes for growing with
cluster size.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.errors import MetricError
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import cut_size


def net_cut(netlist: Netlist, group: Iterable[int]) -> int:
    """``T(C)``: nets with pins inside and outside ``group``."""
    return cut_size(netlist, group)


def absorption(netlist: Netlist, group: Iterable[int]) -> float:
    """Absorption of ``group``: sum over nets of absorbed pin fraction.

    For each net ``e`` touching the group with ``k`` pins inside, the net
    contributes ``(k - 1) / (|e| - 1)`` (fully internal nets contribute 1,
    nets touched at a single pin contribute 0).  Larger is better, and the
    value grows with group size — the property that makes it unsuitable for
    comparing candidate GTLs of different sizes.
    """
    members: Set[int] = group if isinstance(group, set) else set(group)
    if not members:
        raise MetricError("absorption of an empty group")
    seen: Set[int] = set()
    total = 0.0
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            cells = netlist.cells_of_net(net)
            if len(cells) < 2:
                continue
            inside = sum(1 for c in cells if c in members)
            total += (inside - 1) / (len(cells) - 1)
    return total
