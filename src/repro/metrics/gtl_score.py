"""The paper's GTL metrics (Section 3.1).

Given net cut ``T(C)``, Rent exponent ``p``, netlist-average pin count
``A_G`` and group-average pin count ``A_C``:

* ``GTL-S(C)  = T(C) / |C|^p`` — Rent-scaled cut, constant in expectation
  for an "average quality" group of any size;
* ``nGTL-S(C) = T(C) / (A_G * |C|^p)`` — normalized so the average group
  scores ~1 regardless of the netlist's fanin mix;
* ``GTL-SD(C) = T(C) / (A_G * |C|^(p * A_C / A_G))`` — density-aware: the
  exponent is inflated for pin-dense groups (complex gates such as NAND4 /
  OAI / AOI), sharpening the minimum at true GTLs (Fig 3 vs Fig 2).

Scores much smaller than 1 (e.g. < 0.1) indicate strong GTLs.

:class:`ScoreContext` packages the netlist constants so the finder can score
thousands of prefix groups from :class:`~repro.netlist.ops.GroupStats`
without touching the netlist again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import MetricError
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import GroupStats, PrefixCurves, group_stats


def gtl_score(netlist: Netlist, group: Iterable[int], rent_exponent: float) -> float:
    """``GTL-S(C) = T(C) / |C|^p``."""
    stats = group_stats(netlist, group)
    _check(stats, rent_exponent)
    return stats.cut / stats.size**rent_exponent


def normalized_gtl_score(
    netlist: Netlist, group: Iterable[int], rent_exponent: float
) -> float:
    """``nGTL-S(C) = T(C) / (A_G * |C|^p)``."""
    stats = group_stats(netlist, group)
    _check(stats, rent_exponent)
    return stats.cut / (netlist.average_pins_per_cell * stats.size**rent_exponent)


def density_aware_gtl_score(
    netlist: Netlist, group: Iterable[int], rent_exponent: float
) -> float:
    """``GTL-SD(C) = T(C) / (A_G * |C|^(p * A_C / A_G))``."""
    stats = group_stats(netlist, group)
    _check(stats, rent_exponent)
    a_g = netlist.average_pins_per_cell
    exponent = rent_exponent * stats.avg_pins / a_g
    return stats.cut / (a_g * stats.size**exponent)


def _check(stats: GroupStats, rent_exponent: float) -> None:
    if stats.size < 1:
        raise MetricError("GTL score of an empty group")
    if not 0 < rent_exponent <= 2:
        raise MetricError(f"implausible Rent exponent {rent_exponent}")


@dataclass(frozen=True)
class ScoreContext:
    """Frozen netlist constants needed to score a group from its stats.

    Attributes:
        rent_exponent: estimated Rent exponent ``p`` of the netlist.
        avg_pins_per_cell: ``A_G``.
        metric: which score :meth:`score` evaluates — ``"gtl_s"``,
            ``"ngtl_s"`` (default) or ``"gtl_sd"``.
    """

    rent_exponent: float
    avg_pins_per_cell: float
    metric: str = "ngtl_s"

    VALID_METRICS = ("gtl_s", "ngtl_s", "gtl_sd")

    def __post_init__(self) -> None:
        if self.metric not in self.VALID_METRICS:
            raise MetricError(
                f"unknown metric {self.metric!r}; expected one of {self.VALID_METRICS}"
            )
        if not 0 < self.rent_exponent <= 2:
            raise MetricError(f"implausible Rent exponent {self.rent_exponent}")
        if self.avg_pins_per_cell <= 0:
            raise MetricError("avg_pins_per_cell must be positive")

    @classmethod
    def for_netlist(
        cls, netlist: Netlist, rent_exponent: float, metric: str = "ngtl_s"
    ) -> "ScoreContext":
        """Build a context with ``A_G`` taken from ``netlist``.

        Contexts are frozen and depend only on ``(netlist, rent_exponent,
        metric)``, so they are memoized on the netlist's derived-object
        cache — re-scoring many candidates of one netlist reuses one
        instance per exponent/metric pair.
        """
        key = ("score_context", rent_exponent, metric)
        cache = netlist.derived_cache
        context = cache.get(key)
        if context is None:
            context = cls(
                rent_exponent=rent_exponent,
                avg_pins_per_cell=netlist.average_pins_per_cell,
                metric=metric,
            )
            cache[key] = context
        return context

    def score(self, stats: GroupStats) -> float:
        """Score a group from its :class:`GroupStats` (lower = more tangled)."""
        if stats.size < 1:
            raise MetricError("score of an empty group")
        if self.metric == "gtl_s":
            return stats.cut / stats.size**self.rent_exponent
        if self.metric == "ngtl_s":
            denominator = self.avg_pins_per_cell * stats.size**self.rent_exponent
            return stats.cut / denominator
        exponent = self.rent_exponent * stats.avg_pins / self.avg_pins_per_cell
        return stats.cut / (self.avg_pins_per_cell * stats.size**exponent)

    def score_all(self, prefix_stats) -> list:
        """Score a sequence of :class:`GroupStats` (one ordering's prefixes)."""
        return [self.score(stats) for stats in prefix_stats]

    def score_curves(self, curves: PrefixCurves) -> np.ndarray:
        """Score every prefix of a :class:`~repro.netlist.ops.PrefixCurves`.

        Vectorized counterpart of :meth:`score_all` over the array form of
        an ordering's prefixes; agrees with the scalar scores to float64
        rounding (well below 1e-9).
        """
        sizes = curves.sizes.astype(np.float64)
        cuts = curves.cuts.astype(np.float64)
        if self.metric == "gtl_s":
            return cuts / sizes**self.rent_exponent
        if self.metric == "ngtl_s":
            return cuts / (self.avg_pins_per_cell * sizes**self.rent_exponent)
        exponents = self.rent_exponent * curves.avg_pins / self.avg_pins_per_cell
        return cuts / (self.avg_pins_per_cell * sizes**exponents)
