"""Rent-exponent estimation.

Rent's rule relates the external pin/terminal count of a logic block to its
size: ``T = A * |C|^p`` with ``p`` the Rent exponent.  The paper (Phase II)
estimates ``p`` of a netlist by averaging, over the groups produced by a
linear ordering, the per-group estimate::

    p(C) = (ln T(C) - ln A_C) / ln |C|

where ``A_C`` is the average pin count per cell inside C.  We implement that
estimator plus a least-squares fit over the prefix curve, which is the
textbook way of measuring Rent exponents and serves as a cross-check.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import MetricError
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import GroupStats, PrefixCurves, PrefixScanner, group_stats


def estimate_group_rent_exponent(netlist: Netlist, group: Iterable[int]) -> float:
    """Per-group Rent exponent ``(ln T(C) - ln A_C) / ln |C|``.

    Raises :class:`MetricError` for groups where the formula degenerates
    (fewer than two cells, zero cut, or zero pins).
    """
    stats = group_stats(netlist, group)
    return rent_exponent_from_stats(stats)


def rent_exponent_from_stats(stats: GroupStats) -> float:
    """Rent exponent of one group from its precomputed statistics."""
    if stats.size < 2:
        raise MetricError("Rent exponent needs at least two cells")
    if stats.cut <= 0:
        raise MetricError("Rent exponent undefined for zero cut")
    if stats.avg_pins <= 0:
        raise MetricError("Rent exponent undefined for zero pins")
    return (math.log(stats.cut) - math.log(stats.avg_pins)) / math.log(stats.size)


def estimate_rent_exponent_from_prefixes(
    prefix_stats: Sequence[GroupStats],
    min_size: int = 8,
    clamp: Tuple[float, float] = (0.1, 1.0),
    fallback: float = 0.6,
) -> float:
    """Average per-prefix Rent exponents, the paper's Phase II estimator.

    Args:
        prefix_stats: statistics of every ordering prefix ``C_k``.
        min_size: prefixes smaller than this are skipped (tiny groups make
            the logarithm ratio noisy; the paper explicitly does not care
            about groups with a handful of cells).
        clamp: estimates are clamped to this physically meaningful range;
            Rent exponents of real circuits lie in roughly [0.4, 0.8] and
            values outside [0.1, 1.0] indicate a degenerate prefix.
        fallback: returned when no usable prefix exists.  The default 0.6
            (a typical logic Rent exponent) keeps downstream scoring defined
            on pathological inputs; callers that need to *detect* the
            degenerate case pass ``float("nan")`` and filter.
    """
    low, high = clamp
    estimates: List[float] = []
    for stats in prefix_stats:
        if stats.size < min_size or stats.cut <= 0 or stats.avg_pins <= 0:
            continue
        value = (math.log(stats.cut) - math.log(stats.avg_pins)) / math.log(stats.size)
        estimates.append(min(high, max(low, value)))
    if not estimates:
        return fallback
    return sum(estimates) / len(estimates)


def estimate_rent_exponent_from_curves(
    curves: PrefixCurves,
    min_size: int = 8,
    clamp: Tuple[float, float] = (0.1, 1.0),
    fallback: float = 0.6,
) -> float:
    """Vectorized :func:`estimate_rent_exponent_from_prefixes` over a whole
    :class:`~repro.netlist.ops.PrefixCurves`.

    Same estimator, same clamping, same usable-prefix filter; the average
    runs through ``cumsum`` so the float accumulation order matches the
    scalar left-to-right sum.
    """
    low, high = clamp
    usable = (curves.sizes >= min_size) & (curves.cuts > 0) & (curves.pins > 0)
    if not usable.any():
        return fallback
    sizes = curves.sizes[usable]
    cuts = curves.cuts[usable].astype(np.float64)
    avg_pins = curves.pins[usable] / sizes
    with np.errstate(divide="ignore", invalid="ignore"):
        values = (np.log(cuts) - np.log(avg_pins)) / np.log(sizes.astype(np.float64))
    values = np.clip(values, low, high)
    return float(np.cumsum(values)[-1]) / values.size


def fit_rent_exponent(
    sizes: Sequence[int], cuts: Sequence[int], min_size: int = 8
) -> Tuple[float, float]:
    """Least-squares fit of ``ln T = ln A + p ln |C|`` over a prefix curve.

    Returns ``(p, A)``.  Points with size < ``min_size`` or zero cut are
    skipped.  Raises :class:`MetricError` with fewer than two usable points.
    """
    xs: List[float] = []
    ys: List[float] = []
    for size, cut in zip(sizes, cuts):
        if size >= min_size and cut > 0:
            xs.append(math.log(size))
            ys.append(math.log(cut))
    if len(xs) < 2:
        raise MetricError("fit_rent_exponent needs at least two usable points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise MetricError("fit_rent_exponent: all sizes identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    p = sxy / sxx
    log_a = mean_y - p * mean_x
    return p, math.exp(log_a)


def scan_prefix_stats(netlist: Netlist, ordering: Sequence[int]) -> List[GroupStats]:
    """Statistics of every prefix of ``ordering`` (O(total pins) overall)."""
    scanner = PrefixScanner(netlist)
    result: List[GroupStats] = []
    for cell in ordering:
        scanner.add(cell)
        result.append(scanner.stats())
    return result
