"""Area-weighted recursive spreading.

Quadratic placement piles cells up near the die center; spreading
redistributes them across the die while preserving their relative order —
the role look-ahead legalization plays in analytic placers.  We use
recursive area bisection: sort cells along the wider axis, split the region
at the area-weighted median, recurse.  Because the split is *area*-weighted,
inflating a group of cells (Fig 7's congestion mitigation) automatically
buys that group more die area and pushes its members apart.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.placement.region import Die

#: Quadtree depth cap for :func:`relieve_density`.  Regions halve per
#: level, so 64 levels shrink any die below float resolution — only a
#: coincident-coordinate clump descends that far.
_MAX_QUADTREE_DEPTH = 64


def spread_cells(
    x: np.ndarray,
    y: np.ndarray,
    areas: Sequence[float],
    die: Die,
    movable: Optional[np.ndarray] = None,
    leaf_cells: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Spread ``movable`` cells uniformly (by area) over the die.

    Args:
        x, y: global-placement coordinates (all cells).
        areas: per-cell areas (inflated areas included).
        die: the placement region.
        movable: indices to spread (defaults to all cells).
        leaf_cells: recursion stops at partitions of at most this many
            cells, which are then placed on the partition's center row.

    Returns new coordinate arrays; non-movable cells are untouched.
    """
    x = np.asarray(x, dtype=float).copy()
    y = np.asarray(y, dtype=float).copy()
    area_arr = np.asarray(areas, dtype=float)
    if movable is None:
        movable = np.arange(len(x))
    movable = np.asarray(movable, dtype=np.int64)
    if movable.size == 0:
        return x, y
    if np.any(area_arr[movable] <= 0):
        raise PlacementError("cell areas must be positive for spreading")

    _spread(
        x,
        y,
        area_arr,
        movable,
        (0.0, 0.0, die.width, die.height),
        leaf_cells,
    )
    return x, y


def _spread(
    x: np.ndarray,
    y: np.ndarray,
    areas: np.ndarray,
    cells: np.ndarray,
    region: Tuple[float, float, float, float],
    leaf_cells: int,
) -> None:
    x0, y0, x1, y1 = region
    if cells.size <= leaf_cells:
        _place_leaf(x, y, cells, region)
        return

    width, height = x1 - x0, y1 - y0
    split_horizontally = width >= height  # split along the wider axis
    coords = x[cells] if split_horizontally else y[cells]
    order = cells[np.argsort(coords, kind="stable")]

    total = areas[order].sum()
    cumulative = np.cumsum(areas[order])
    # Area-weighted median: first index where half the area is covered.
    split = int(np.searchsorted(cumulative, total / 2.0)) + 1
    split = max(1, min(split, order.size - 1))
    left, right = order[:split], order[split:]
    # The geometric split tracks the area split exactly, so each side's
    # region is proportional to the area it holds (the invariant that
    # makes spreading area-preserving).  The old hard [0.05, 0.95] clamp
    # detached the two on skewed distributions — a side holding 2% of the
    # area was handed 5% of the region while the split index provably
    # cannot move (the crossing cell's cumulative jump spans the clamp
    # band); only a literal zero-width region needs guarding against.
    fraction = float(cumulative[split - 1] / total)
    fraction = min(max(fraction, 1e-6), 1.0 - 1e-6)

    if split_horizontally:
        xm = x0 + fraction * width
        _spread(x, y, areas, left, (x0, y0, xm, y1), leaf_cells)
        _spread(x, y, areas, right, (xm, y0, x1, y1), leaf_cells)
    else:
        ym = y0 + fraction * height
        _spread(x, y, areas, left, (x0, y0, x1, ym), leaf_cells)
        _spread(x, y, areas, right, (x0, ym, x1, y1), leaf_cells)


def relieve_density(
    x: np.ndarray,
    y: np.ndarray,
    areas: Sequence[float],
    die: Die,
    movable: Optional[np.ndarray] = None,
    max_utilization: float = 0.8,
    min_cells: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Spread only *overfull* regions; leave everything else in place.

    This is the density cap a real placer enforces: connectivity may pull a
    tangled group together, but never beyond the point where its cells
    exceed ``max_utilization`` of the local area.  A quadtree is descended
    over the die; whenever a subtree contains an overfull region, the lowest
    enclosing node whose own utilization is within the cap is spread
    uniformly (area-weighted), giving the clump exactly
    ``area / max_utilization`` of room around its location.

    Because the relief is area-weighted, inflating a group of cells (the
    paper's congestion fix) directly enlarges the footprint the group is
    granted — this function is where cell inflation takes effect.
    """
    x = np.asarray(x, dtype=float).copy()
    y = np.asarray(y, dtype=float).copy()
    area_arr = np.asarray(areas, dtype=float)
    if movable is None:
        movable = np.arange(len(x))
    movable = np.asarray(movable, dtype=np.int64)
    if movable.size == 0:
        return x, y
    if not 0 < max_utilization <= 1:
        raise PlacementError("max_utilization must be in (0, 1]")

    def recurse(
        cells: np.ndarray,
        region: Tuple[float, float, float, float],
        depth: int = 0,
    ) -> bool:
        """Returns True when the subtree still contains unresolved overfill."""
        x0, y0, x1, y1 = region
        region_area = (x1 - x0) * (y1 - y0)
        if cells.size == 0 or region_area <= 0:
            return False
        utilization = area_arr[cells].sum() / region_area

        if cells.size <= min_cells or depth >= _MAX_QUADTREE_DEPTH:
            # Depth guard: a clump of coincident coordinates never
            # separates by quartering — every level keeps all its cells in
            # one quadrant until the recursion limit blows.  Report the
            # overfill instead, so the lowest enclosing node with room
            # spreads the clump apart.
            return utilization > max_utilization

        xm, ym = (x0 + x1) / 2.0, (y0 + y1) / 2.0
        in_right = x[cells] >= xm
        in_top = y[cells] >= ym
        quadrants = (
            (cells[~in_right & ~in_top], (x0, y0, xm, ym)),
            (cells[in_right & ~in_top], (xm, y0, x1, ym)),
            (cells[~in_right & in_top], (x0, ym, xm, y1)),
            (cells[in_right & in_top], (xm, ym, x1, y1)),
        )
        unresolved = False
        for sub_cells, sub_region in quadrants:
            if recurse(sub_cells, sub_region, depth + 1):
                unresolved = True
        if not unresolved and utilization <= max_utilization:
            return False
        if utilization <= max_utilization:
            # Lowest enclosing node with room: spread the whole subtree.
            _spread(x, y, area_arr, cells, region, leaf_cells=4)
            return False
        return True

    if recurse(movable, (0.0, 0.0, die.width, die.height)):
        # The die itself is overfull; full uniform spreading is the best
        # we can do.
        _spread(x, y, area_arr, movable, (0.0, 0.0, die.width, die.height), 4)
    return x, y


def diffuse_density(
    x: np.ndarray,
    y: np.ndarray,
    areas: Sequence[float],
    die: Die,
    movable: Optional[np.ndarray] = None,
    max_utilization: float = 0.8,
    bins: Tuple[int, int] = (32, 32),
    max_iterations: int = 100,
    tolerance: float = 1.05,
) -> Tuple[np.ndarray, np.ndarray]:
    """Poisson-based density diffusion (ePlace-style, capped).

    Cells flow down the gradient of a potential whose Laplacian is the
    *overflow* density (local utilization above ``max_utilization``), so
    only overfull regions push cells out and neighboring regions absorb
    them; regions already within the cap are left essentially alone.  This
    preserves locality — no re-sorting, no dilution — which makes it the
    right density-relief step after the contraction solve: a tangled group
    that contracted beyond the cap expands to a footprint of
    ``area / max_utilization`` around its own location.

    Because overflow is measured in *area*, inflated cells claim
    proportionally more footprint: this function is where the paper's cell
    inflation takes effect.
    """
    import scipy.fft

    x = np.asarray(x, dtype=float).copy()
    y = np.asarray(y, dtype=float).copy()
    area_arr = np.asarray(areas, dtype=float)
    if movable is None:
        movable = np.arange(len(x))
    movable = np.asarray(movable, dtype=np.int64)
    if movable.size == 0:
        return x, y
    if not 0 < max_utilization <= 1:
        raise PlacementError("max_utilization must be in (0, 1]")

    nx, ny = bins
    bin_w = die.width / nx
    bin_h = die.height / ny
    bin_area = bin_w * bin_h
    weights = area_arr[movable]

    # Laplacian eigenvalues for the DCT (Neumann boundary) solve.
    lam = (
        (2.0 * np.cos(np.pi * np.arange(nx) / nx) - 2.0) / bin_w**2
    )[:, None] + ((2.0 * np.cos(np.pi * np.arange(ny) / ny) - 2.0) / bin_h**2)[None, :]
    lam[0, 0] = 1.0  # avoided below (mean mode forced to zero)

    max_step = 0.49 * min(bin_w, bin_h)
    for _ in range(max_iterations):
        ix = np.clip((x[movable] / bin_w).astype(int), 0, nx - 1)
        iy = np.clip((y[movable] / bin_h).astype(int), 0, ny - 1)
        density = np.zeros((nx, ny))
        np.add.at(density, (ix, iy), weights)
        density /= bin_area

        overflow = np.maximum(density - max_utilization, 0.0)
        if overflow.max() <= max_utilization * (tolerance - 1.0):
            break

        source = overflow - overflow.mean()
        source_hat = scipy.fft.dctn(source, type=2, norm="ortho")
        phi_hat = source_hat / lam
        phi_hat[0, 0] = 0.0
        phi = scipy.fft.idctn(phi_hat, type=2, norm="ortho")

        grad_x = np.zeros_like(phi)
        grad_x[1:-1, :] = (phi[2:, :] - phi[:-2, :]) / (2.0 * bin_w)
        grad_y = np.zeros_like(phi)
        grad_y[:, 1:-1] = (phi[:, 2:] - phi[:, :-2]) / (2.0 * bin_h)

        # With phi = laplacian^-1(overflow), grad(phi) points away from
        # overfull regions (1D check: phi'' = delta -> phi' = sign(x)/2).
        dx = grad_x[ix, iy]
        dy = grad_y[ix, iy]
        magnitude = np.hypot(dx, dy)
        # Normalize so cells in the congested tail move a full step, then
        # cap per-cell displacement (normalizing by the single largest
        # gradient would make everything else crawl and stall convergence).
        reference = float(np.percentile(magnitude[magnitude > 0], 90)) if np.any(
            magnitude > 0
        ) else 0.0
        if reference <= 0:
            break
        scale = max_step / reference
        step_x = np.clip(scale * dx, -max_step, max_step)
        step_y = np.clip(scale * dy, -max_step, max_step)
        x[movable] = np.clip(x[movable] + step_x, 0.0, die.width)
        y[movable] = np.clip(y[movable] + step_y, 0.0, die.height)
    return x, y


def make_fillers(
    total_cell_area: float,
    die: Die,
    mean_cell_area: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Whitespace filler cells on a uniform grid.

    Real placers model whitespace explicitly so that local density stays at
    the *target utilization* rather than being squeezed by area-weighted
    spreading.  Fillers have no connectivity; they only occupy area during
    spreading/diffusion.  Returns ``(x, y, areas)`` arrays (possibly empty).
    """
    whitespace = die.area - total_cell_area
    if whitespace <= 0 or mean_cell_area <= 0:
        return np.empty(0), np.empty(0), np.empty(0)
    count = int(whitespace / mean_cell_area)
    if count == 0:
        return np.empty(0), np.empty(0), np.empty(0)
    side = max(1, int(np.ceil(np.sqrt(count))))
    gx, gy = np.meshgrid(
        (np.arange(side) + 0.5) * die.width / side,
        (np.arange(side) + 0.5) * die.height / side,
    )
    fx = gx.ravel()[:count]
    fy = gy.ravel()[:count]
    fareas = np.full(count, whitespace / count)
    return fx, fy, fareas


def _place_leaf(
    x: np.ndarray,
    y: np.ndarray,
    cells: np.ndarray,
    region: Tuple[float, float, float, float],
) -> None:
    x0, y0, x1, y1 = region
    count = cells.size
    if count == 0:
        return
    # Evenly space leaf cells along the region's center line, preserving
    # their x order for determinism.
    order = cells[np.argsort(x[cells], kind="stable")]
    xs = x0 + (np.arange(count) + 0.5) * (x1 - x0) / count
    x[order] = xs
    y[order] = (y0 + y1) / 2.0
