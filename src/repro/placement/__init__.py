"""Placement substrate.

A global analytic placer in the style the paper's experiments rely on: a
star/clique quadratic formulation solved with conjugate gradients, followed
by area-weighted recursive spreading and simple row legalization.  The key
behaviour for the reproduction is that *highly connected cells are pulled
close together* — which turns GTLs into spatial clusters (Figs 4, 6) and
routing hotspots (Fig 1) — and that *cell inflation* inside GTLs forces the
spreading step to give those cells more room (Fig 7).
"""

from repro.placement.region import Die
from repro.placement.pads import assign_pad_positions
from repro.placement.quadratic import assemble_quadratic_system, solve_quadratic_placement
from repro.placement.spreading import diffuse_density, make_fillers, relieve_density, spread_cells
from repro.placement.legalize import legalize_rows
from repro.placement.inflation import inflate_cells
from repro.placement.placer import Placement, place

__all__ = [
    "Die",
    "assign_pad_positions",
    "assemble_quadratic_system",
    "solve_quadratic_placement",
    "spread_cells",
    "diffuse_density",
    "make_fillers",
    "relieve_density",
    "legalize_rows",
    "inflate_cells",
    "Placement",
    "place",
]
