"""Die (placement region) model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlacementError


@dataclass(frozen=True)
class Die:
    """Rectangular placement region ``[0, width] x [0, height]``.

    Attributes:
        width: die width in placement units.
        height: die height.
        num_rows: standard-cell rows used by legalization.
    """

    width: float
    height: float
    num_rows: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise PlacementError("die dimensions must be positive")
        if self.num_rows < 0:
            raise PlacementError("num_rows must be >= 0")

    @property
    def area(self) -> float:
        """Total die area."""
        return self.width * self.height

    @property
    def center(self) -> tuple:
        """Center point of the die."""
        return (self.width / 2.0, self.height / 2.0)

    def clamp(self, x: float, y: float) -> tuple:
        """Clamp a point into the die."""
        return (min(max(x, 0.0), self.width), min(max(y, 0.0), self.height))

    @classmethod
    def for_area(
        cls, total_cell_area: float, utilization: float = 0.6, aspect: float = 1.0
    ) -> "Die":
        """A die sized so cells fill ``utilization`` of it."""
        if not 0 < utilization <= 1:
            raise PlacementError("utilization must be in (0, 1]")
        if total_cell_area <= 0:
            raise PlacementError("total_cell_area must be positive")
        area = total_cell_area / utilization
        width = (area * aspect) ** 0.5
        return cls(width=width, height=area / width)
