"""Perimeter pad placement.

Fixed cells (IO pads) anchor the quadratic system; without fixed terminals
the Laplacian is singular and everything collapses to one point.  Pads are
distributed evenly around the die perimeter in index order, matching how the
synthetic generators conceive of them.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import PlacementError
from repro.netlist.hypergraph import Netlist
from repro.placement.region import Die


def assign_pad_positions(
    netlist: Netlist, die: Die
) -> Dict[int, Tuple[float, float]]:
    """Evenly space every fixed cell along the die perimeter.

    Returns a mapping ``cell index -> (x, y)``.  Raises
    :class:`PlacementError` when the netlist has no fixed cells.
    """
    pads = netlist.fixed_cells()
    if not pads:
        raise PlacementError("netlist has no fixed cells to place as pads")
    perimeter = 2.0 * (die.width + die.height)
    spacing = perimeter / len(pads)
    positions: Dict[int, Tuple[float, float]] = {}
    for index, cell in enumerate(pads):
        positions[cell] = _perimeter_point(die, index * spacing)
    return positions


def _perimeter_point(die: Die, distance: float) -> Tuple[float, float]:
    """Point at ``distance`` along the perimeter, counterclockwise from origin."""
    d = distance % (2.0 * (die.width + die.height))
    if d < die.width:
        return (d, 0.0)
    d -= die.width
    if d < die.height:
        return (die.width, d)
    d -= die.height
    if d < die.width:
        return (die.width - d, die.height)
    d -= die.width
    return (0.0, die.height - d)
