"""End-to-end placement flow: quadratic solve -> spreading -> legalization."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.netlist.arrays import geometry_backend
from repro.netlist.hypergraph import Netlist
from repro.placement.legalize import legalize_rows
from repro.placement.pads import assign_pad_positions
from repro.placement.quadratic import solve_quadratic_placement
from repro.placement.region import Die
from repro.placement.spreading import diffuse_density, make_fillers, spread_cells


@dataclass(frozen=True)
class Placement:
    """A placed design.

    Attributes:
        netlist: the placed netlist.
        die: the region it was placed into.
        x, y: per-cell coordinates.
    """

    netlist: Netlist
    die: Die
    x: np.ndarray
    y: np.ndarray

    def position(self, cell: int) -> Tuple[float, float]:
        """Coordinates of ``cell``."""
        return float(self.x[cell]), float(self.y[cell])

    def hpwl(self, backend: Optional[str] = None) -> float:
        """Total half-perimeter wirelength of the placement.

        ``backend`` selects the batched numpy path (default) or the scalar
        per-net reference loop (``"python"``, also forced globally by
        ``REPRO_SCALAR_BACKEND=1``); both return bit-identical totals.
        """
        if geometry_backend(backend) == "python":
            total = 0.0
            for net in range(self.netlist.num_nets):
                cells = list(self.netlist.cells_of_net(net))
                if len(cells) < 2:
                    continue
                xs = self.x[cells]
                ys = self.y[cells]
                total += float(xs.max() - xs.min() + ys.max() - ys.min())
            return total
        arrays = self.netlist.arrays
        if arrays.net_cells.size == 0:
            return 0.0
        x0, x1, y0, y1 = arrays.net_bboxes(self.x, self.y)
        # Same left-to-right grouping as the scalar loop's
        # ``max - min + max - min`` so the per-net spans are bit-identical.
        spans = x1 - x0 + y1 - y0
        spans = spans[arrays.net_degrees >= 2]
        if spans.size == 0:
            return 0.0
        # cumsum accumulates left to right like the scalar loop, keeping the
        # two backends bit-identical (np.sum's pairwise order would not).
        return float(spans.cumsum()[-1])


def place(
    netlist: Netlist,
    die: Optional[Die] = None,
    pad_positions: Optional[Dict[int, Tuple[float, float]]] = None,
    utilization: float = 0.6,
    spreading_iterations: int = 1,
    regroup_weight: float = 0.25,
    contraction_weight: float = 0.0,
    max_utilization: float = 1.0,
    legalize: bool = False,
) -> Placement:
    """Place ``netlist``; returns a :class:`Placement`.

    The flow alternates wirelength optimization with density control, the
    standard analytic-placement loop:

    1. unconstrained quadratic solve (cells collapse toward connectivity
       centroids);
    2. area-weighted spreading together with whitespace *filler cells*
       (fillers keep local real-cell density at the target utilization
       instead of letting spreading squeeze everything to uniform fill);
    3. ``spreading_iterations`` rounds of anchored re-solve + re-spread,
       where each movable cell is tied to its last spread position with a
       spring *relative* to its connectivity (weight ``regroup_weight``) —
       connectivity re-groups logic locally without global collapse;
    4. optionally (``contraction_weight > 0``) a final anchored solve with
       an *absolute* spring per cell: ordinary cells barely move while
       highly interconnected cells overcome the spring and contract toward
       their group — an explicit model of the paper's "placer naturally
       wants to pull [GTL] cells tightly together".  Off by default: the
       congestion hotspots of Figs 1/6 already arise from the higher
       pin-per-area density of tangled logic at uniform placement density,
       and the contraction also densifies ordinary logic clusters;
    5. capped Poisson diffusion: pockets whose utilization exceeds
       ``max_utilization`` push cells outward until physical;
    6. optional row legalization (congestion analysis conventionally runs
       on the global placement, so the default is off).

    Args:
        netlist: design to place (needs at least one fixed cell unless
            ``pad_positions`` covers none — the quadratic anchor keeps the
            system solvable either way).
        die: target region; sized from total cell area when omitted.
        pad_positions: explicit pad coordinates; perimeter-assigned when
            omitted and fixed cells exist.
        utilization: cell-area utilization used to size a default die.
        spreading_iterations: anchored re-solve/re-spread rounds.
        regroup_weight: relative anchor weight during re-solve rounds.
        contraction_weight: absolute anchor spring of the optional final
            solve; smaller values let tangled groups contract harder, 0
            disables the step.
        max_utilization: local density cap enforced after contraction.
        legalize: snap to rows at the end.
    """
    if die is None:
        total_area = sum(netlist.cell_area(c) for c in range(netlist.num_cells))
        die = Die.for_area(total_area, utilization=utilization)
    if pad_positions is None:
        pad_positions = (
            assign_pad_positions(netlist, die) if netlist.fixed_cells() else {}
        )
    if spreading_iterations < 0:
        raise PlacementError("spreading_iterations must be >= 0")
    if regroup_weight <= 0:
        raise PlacementError("regroup_weight must be positive")
    if contraction_weight < 0:
        raise PlacementError("contraction_weight must be >= 0")

    num_cells = netlist.num_cells
    movable = np.flatnonzero(~netlist.arrays.fixed_mask)
    areas = np.array(netlist.arrays.areas)

    # Whitespace fillers participate in spreading/diffusion only.
    movable_area = float(areas[movable].sum()) if movable.size else 0.0
    mean_area = movable_area / max(1, movable.size)
    fx, fy, fareas = make_fillers(areas.sum(), die, mean_area)
    num_fillers = len(fx)

    def combine(cx: np.ndarray, cy: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return np.concatenate([cx, fx]), np.concatenate([cy, fy])

    all_areas = np.concatenate([areas, fareas])
    all_movable = np.concatenate(
        [movable, num_cells + np.arange(num_fillers, dtype=np.int64)]
    )

    qx, qy = solve_quadratic_placement(netlist, die, pad_positions)
    gx, gy = combine(qx, qy)
    gx, gy = spread_cells(gx, gy, all_areas, die, movable=all_movable)
    for _ in range(spreading_iterations):
        qx, qy = solve_quadratic_placement(
            netlist,
            die,
            pad_positions,
            anchors=(gx[:num_cells], gy[:num_cells]),
            anchor_weight=regroup_weight,
        )
        gx[:num_cells], gy[:num_cells] = qx, qy
        gx, gy = spread_cells(gx, gy, all_areas, die, movable=all_movable)
    if contraction_weight > 0:
        qx, qy = solve_quadratic_placement(
            netlist,
            die,
            pad_positions,
            anchors=(gx[:num_cells], gy[:num_cells]),
            anchor_weight=contraction_weight,
            anchor_mode="absolute",
        )
        gx[:num_cells], gy[:num_cells] = qx, qy
        gx, gy = diffuse_density(
            gx, gy, all_areas, die, movable=all_movable, max_utilization=max_utilization
        )
    if legalize:
        # Fillers participate so row capacities account for whitespace.
        gx, gy = legalize_rows(gx, gy, all_areas, die, movable=all_movable)
    x, y = gx[:num_cells], gy[:num_cells]
    return Placement(netlist=netlist, die=die, x=x, y=y)
