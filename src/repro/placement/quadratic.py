"""Quadratic (analytic) global placement.

Minimizes the weighted sum of squared edge lengths.  Nets are decomposed
into two-point springs:

* nets with up to ``clique_limit`` pins become cliques with the standard
  ``2 / (deg * (deg - 1))`` weights (total net weight 1);
* larger nets become rings over their pins (each pin two springs), keeping
  the system sparse while still pulling the net together.

The two axes decouple into independent linear systems ``L x = b`` over the
movable cells, with fixed pads contributing to the diagonal and the right-
hand side.  Systems are solved with scipy's conjugate gradients; a small
diagonal regularization anchored at the die center keeps the system
positive definite even when a component touches no pad.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.errors import PlacementError
from repro.netlist.hypergraph import Netlist
from repro.placement.region import Die


def solve_quadratic_placement(
    netlist: Netlist,
    die: Die,
    pad_positions: Dict[int, Tuple[float, float]],
    clique_limit: int = 5,
    anchor_weight: float = 1e-6,
    anchors: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    anchor_mode: str = "relative",
    tol: float = 1e-7,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the quadratic placement; returns per-cell ``(x, y)`` arrays.

    Args:
        netlist: the design.
        die: placement region.
        pad_positions: coordinates of every fixed cell.
        clique_limit: largest net modeled as a clique (rings beyond).
        anchor_weight: anchor spring strength.  With ``anchors=None`` this
            is a tiny absolute regularization toward the die center.  With
            explicit anchors it is *relative*: each cell's anchor spring is
            ``anchor_weight`` times the total weight of its incident net
            springs, so the wirelength-vs-density balance is uniform across
            cells of different connectivity (1.0 = anchor as strong as all
            nets combined; small values let connected groups contract).
        anchors: per-cell ``(x, y)`` anchor coordinates from a previous
            spreading step.  Anchored re-solves are how the placer iterates
            between wirelength optimization and density control.
        anchor_mode: ``"relative"`` (anchor spring proportional to the
            cell's incident net weight — every cell contracts by the same
            geometric fraction) or ``"absolute"`` (one spring constant for
            all cells — highly connected cells overcome their anchor and
            contract harder, which is how tangled logic ends up packed
            more tightly than ordinary logic).
        tol: conjugate-gradient tolerance.

    Fixed cells keep their ``pad_positions`` coordinates in the output.
    """
    num_cells = netlist.num_cells
    fixed_mask = np.zeros(num_cells, dtype=bool)
    for cell, _ in pad_positions.items():
        fixed_mask[cell] = True
    for cell in range(num_cells):
        if netlist.cell_is_fixed(cell) and not fixed_mask[cell]:
            raise PlacementError(f"fixed cell {cell} has no pad position")

    movable = np.flatnonzero(~fixed_mask)
    if movable.size == 0:
        x = np.zeros(num_cells)
        y = np.zeros(num_cells)
        for cell, (px, py) in pad_positions.items():
            x[cell], y[cell] = px, py
        return x, y
    index_of = -np.ones(num_cells, dtype=np.int64)
    index_of[movable] = np.arange(movable.size)

    fixed_x = np.zeros(num_cells)
    fixed_y = np.zeros(num_cells)
    for cell, (px, py) in pad_positions.items():
        fixed_x[cell], fixed_y[cell] = px, py

    rows, cols, vals = [], [], []
    diag = np.zeros(movable.size)
    bx = np.zeros(movable.size)
    by = np.zeros(movable.size)

    def add_spring(a: int, b: int, weight: float) -> None:
        a_mov, b_mov = not fixed_mask[a], not fixed_mask[b]
        if a_mov:
            ia = index_of[a]
            diag[ia] += weight
        if b_mov:
            ib = index_of[b]
            diag[ib] += weight
        if a_mov and b_mov:
            rows.append(index_of[a])
            cols.append(index_of[b])
            vals.append(-weight)
            rows.append(index_of[b])
            cols.append(index_of[a])
            vals.append(-weight)
        elif a_mov:
            bx[index_of[a]] += weight * fixed_x[b]
            by[index_of[a]] += weight * fixed_y[b]
        elif b_mov:
            bx[index_of[b]] += weight * fixed_x[a]
            by[index_of[b]] += weight * fixed_y[a]

    for net in range(netlist.num_nets):
        cells = netlist.cells_of_net(net)
        degree = len(cells)
        if degree < 2:
            continue
        if degree <= clique_limit:
            weight = 2.0 / (degree * (degree - 1))
            for i in range(degree):
                for j in range(i + 1, degree):
                    add_spring(cells[i], cells[j], weight)
        else:
            weight = 1.0 / degree
            for i in range(degree):
                add_spring(cells[i], cells[(i + 1) % degree], weight)

    # Anchor springs: absolute center regularization without anchors,
    # connectivity-relative anchors otherwise.
    if anchors is None:
        center_x, center_y = die.center
        spring = np.full(movable.size, anchor_weight)
        target_x = np.full(movable.size, center_x)
        target_y = np.full(movable.size, center_y)
    else:
        anchor_x, anchor_y = anchors
        if anchor_mode == "relative":
            spring = anchor_weight * np.maximum(diag, 1e-12)
        elif anchor_mode == "absolute":
            spring = np.full(movable.size, anchor_weight)
        else:
            raise PlacementError(f"unknown anchor_mode {anchor_mode!r}")
        # Isolated cells (no nets) get a unit spring so they stay put.
        spring[diag == 0] = 1.0
        target_x = np.asarray(anchor_x, dtype=float)[movable]
        target_y = np.asarray(anchor_y, dtype=float)[movable]
    diag += spring
    bx += spring * target_x
    by += spring * target_y

    n = movable.size
    laplacian = scipy.sparse.coo_matrix(
        (vals, (rows, cols)), shape=(n, n)
    ).tocsr()
    laplacian += scipy.sparse.diags(diag)

    solution_x = _solve(laplacian, bx, tol)
    solution_y = _solve(laplacian, by, tol)

    x = fixed_x.copy()
    y = fixed_y.copy()
    x[movable] = solution_x
    y[movable] = solution_y
    x = np.clip(x, 0.0, die.width)
    y = np.clip(y, 0.0, die.height)
    return x, y


def _solve(matrix, rhs: np.ndarray, tol: float) -> np.ndarray:
    solution, info = scipy.sparse.linalg.cg(matrix, rhs, rtol=tol, maxiter=2000)
    if info > 0:
        # CG hit maxiter: the partial solution is still a usable placement
        # seed, but surface hard failures.
        residual = np.linalg.norm(matrix @ solution - rhs)
        if residual > 1e-3 * max(np.linalg.norm(rhs), 1.0):
            raise PlacementError(f"conjugate gradients stalled (residual {residual:g})")
    elif info < 0:
        raise PlacementError("conjugate gradients failed (bad system)")
    return solution
