"""Quadratic (analytic) global placement.

Minimizes the weighted sum of squared edge lengths.  Nets are decomposed
into two-point springs:

* nets with up to ``clique_limit`` pins become cliques with the standard
  ``2 / (deg * (deg - 1))`` weights (total net weight 1);
* larger nets become rings over their pins (each pin two springs), keeping
  the system sparse while still pulling the net together.

The two axes decouple into independent linear systems ``L x = b`` over the
movable cells, with fixed pads contributing to the diagonal and the right-
hand side.  Systems are solved with scipy's conjugate gradients; a small
diagonal regularization anchored at the die center keeps the system
positive definite even when a component touches no pad.

Assembly is batched: clique pair and ring successor index arrays are built
with numpy gathers over the netlist's flat pin arrays
(:class:`repro.netlist.arrays.NetlistArrays`) and scattered into the system
with ``np.add.at`` — no per-pin ``list.append``.  The original per-pin
Python assembly stays as the reference (``backend="python"`` or
``REPRO_SCALAR_BACKEND=1``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.errors import PlacementError
from repro.netlist.arrays import geometry_backend
from repro.netlist.hypergraph import Netlist
from repro.placement.region import Die


def _placement_frame(
    netlist: Netlist, pad_positions: Dict[int, Tuple[float, float]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fixed mask, movable index set and pad coordinate arrays."""
    num_cells = netlist.num_cells
    fixed_mask = np.zeros(num_cells, dtype=bool)
    for cell, _ in pad_positions.items():
        fixed_mask[cell] = True
    for cell in range(num_cells):
        if netlist.cell_is_fixed(cell) and not fixed_mask[cell]:
            raise PlacementError(f"fixed cell {cell} has no pad position")
    movable = np.flatnonzero(~fixed_mask)
    index_of = -np.ones(num_cells, dtype=np.int64)
    index_of[movable] = np.arange(movable.size)
    fixed_x = np.zeros(num_cells)
    fixed_y = np.zeros(num_cells)
    for cell, (px, py) in pad_positions.items():
        fixed_x[cell], fixed_y[cell] = px, py
    return fixed_mask, movable, index_of, fixed_x, fixed_y


def _spring_arrays_numpy(
    netlist: Netlist, clique_limit: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Endpoint and weight arrays of every net spring, built without
    Python loops over pins (cliques grouped by degree, rings in one gather)."""
    arrays = netlist.arrays
    degrees = arrays.net_degrees
    starts = arrays.net_ptr[:-1]
    a_parts, b_parts, w_parts = [], [], []

    for degree in range(2, clique_limit + 1):
        nets = np.flatnonzero(degrees == degree)
        if nets.size == 0:
            continue
        members = arrays.net_cells[starts[nets][:, None] + np.arange(degree)]
        ii, jj = np.triu_indices(degree, k=1)
        a_parts.append(members[:, ii].ravel())
        b_parts.append(members[:, jj].ravel())
        w_parts.append(
            np.full(nets.size * ii.size, 2.0 / (degree * (degree - 1)))
        )

    rings = np.flatnonzero(degrees > clique_limit)
    if rings.size:
        ring_degrees = degrees[rings]
        pin_start = np.repeat(starts[rings], ring_degrees)
        pin_degree = np.repeat(ring_degrees, ring_degrees)
        total = int(ring_degrees.sum())
        position = np.arange(total) - np.repeat(
            np.cumsum(ring_degrees) - ring_degrees, ring_degrees
        )
        a_parts.append(arrays.net_cells[pin_start + position])
        b_parts.append(arrays.net_cells[pin_start + (position + 1) % pin_degree])
        w_parts.append(np.repeat(1.0 / ring_degrees, ring_degrees))

    if not a_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0)
    return (
        np.concatenate(a_parts),
        np.concatenate(b_parts),
        np.concatenate(w_parts),
    )


def _assemble_numpy(
    netlist: Netlist,
    clique_limit: int,
    fixed_mask: np.ndarray,
    index_of: np.ndarray,
    fixed_x: np.ndarray,
    fixed_y: np.ndarray,
    num_movable: int,
):
    """Scatter the spring arrays into diag / off-diagonals / rhs."""
    a, b, w = _spring_arrays_numpy(netlist, clique_limit)
    diag = np.zeros(num_movable)
    bx = np.zeros(num_movable)
    by = np.zeros(num_movable)
    a_movable = ~fixed_mask[a]
    b_movable = ~fixed_mask[b]
    ia = index_of[a]
    ib = index_of[b]
    np.add.at(diag, ia[a_movable], w[a_movable])
    np.add.at(diag, ib[b_movable], w[b_movable])
    both = a_movable & b_movable
    rows = np.concatenate([ia[both], ib[both]])
    cols = np.concatenate([ib[both], ia[both]])
    vals = np.concatenate([-w[both], -w[both]])
    a_only = a_movable & ~b_movable
    np.add.at(bx, ia[a_only], w[a_only] * fixed_x[b[a_only]])
    np.add.at(by, ia[a_only], w[a_only] * fixed_y[b[a_only]])
    b_only = b_movable & ~a_movable
    np.add.at(bx, ib[b_only], w[b_only] * fixed_x[a[b_only]])
    np.add.at(by, ib[b_only], w[b_only] * fixed_y[a[b_only]])
    return rows, cols, vals, diag, bx, by


def _assemble_python(
    netlist: Netlist,
    clique_limit: int,
    fixed_mask: np.ndarray,
    index_of: np.ndarray,
    fixed_x: np.ndarray,
    fixed_y: np.ndarray,
    num_movable: int,
):
    """Scalar reference: the original per-pin ``add_spring`` assembly."""
    rows, cols, vals = [], [], []
    diag = np.zeros(num_movable)
    bx = np.zeros(num_movable)
    by = np.zeros(num_movable)

    def add_spring(a: int, b: int, weight: float) -> None:
        a_mov, b_mov = not fixed_mask[a], not fixed_mask[b]
        if a_mov:
            ia = index_of[a]
            diag[ia] += weight
        if b_mov:
            ib = index_of[b]
            diag[ib] += weight
        if a_mov and b_mov:
            rows.append(index_of[a])
            cols.append(index_of[b])
            vals.append(-weight)
            rows.append(index_of[b])
            cols.append(index_of[a])
            vals.append(-weight)
        elif a_mov:
            bx[index_of[a]] += weight * fixed_x[b]
            by[index_of[a]] += weight * fixed_y[b]
        elif b_mov:
            bx[index_of[b]] += weight * fixed_x[a]
            by[index_of[b]] += weight * fixed_y[a]

    for net in range(netlist.num_nets):
        cells = netlist.cells_of_net(net)
        degree = len(cells)
        if degree < 2:
            continue
        if degree <= clique_limit:
            weight = 2.0 / (degree * (degree - 1))
            for i in range(degree):
                for j in range(i + 1, degree):
                    add_spring(cells[i], cells[j], weight)
        else:
            weight = 1.0 / degree
            for i in range(degree):
                add_spring(cells[i], cells[(i + 1) % degree], weight)
    return rows, cols, vals, diag, bx, by


def assemble_quadratic_system(
    netlist: Netlist,
    pad_positions: Dict[int, Tuple[float, float]],
    clique_limit: int = 5,
    backend: Optional[str] = None,
) -> Tuple[scipy.sparse.csr_matrix, np.ndarray, np.ndarray, np.ndarray]:
    """Net-spring system before anchors: ``(laplacian, bx, by, movable)``.

    The Laplacian (diagonal included) and right-hand sides cover the
    movable cells only.  Exposed so benchmarks and parity tests can compare
    the ``"numpy"`` and ``"python"`` assembly backends directly.
    """
    fixed_mask, movable, index_of, fixed_x, fixed_y = _placement_frame(
        netlist, pad_positions
    )
    assemble = (
        _assemble_python if geometry_backend(backend) == "python" else _assemble_numpy
    )
    rows, cols, vals, diag, bx, by = assemble(
        netlist, clique_limit, fixed_mask, index_of, fixed_x, fixed_y, movable.size
    )
    n = movable.size
    laplacian = scipy.sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    laplacian += scipy.sparse.diags(diag)
    return laplacian, bx, by, movable


def solve_quadratic_placement(
    netlist: Netlist,
    die: Die,
    pad_positions: Dict[int, Tuple[float, float]],
    clique_limit: int = 5,
    anchor_weight: float = 1e-6,
    anchors: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    anchor_mode: str = "relative",
    tol: float = 1e-7,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the quadratic placement; returns per-cell ``(x, y)`` arrays.

    Args:
        netlist: the design.
        die: placement region.
        pad_positions: coordinates of every fixed cell.
        clique_limit: largest net modeled as a clique (rings beyond).
        anchor_weight: anchor spring strength.  With ``anchors=None`` this
            is a tiny absolute regularization toward the die center.  With
            explicit anchors it is *relative*: each cell's anchor spring is
            ``anchor_weight`` times the total weight of its incident net
            springs, so the wirelength-vs-density balance is uniform across
            cells of different connectivity (1.0 = anchor as strong as all
            nets combined; small values let connected groups contract).
        anchors: per-cell ``(x, y)`` anchor coordinates from a previous
            spreading step.  Anchored re-solves are how the placer iterates
            between wirelength optimization and density control.
        anchor_mode: ``"relative"`` (anchor spring proportional to the
            cell's incident net weight — every cell contracts by the same
            geometric fraction) or ``"absolute"`` (one spring constant for
            all cells — highly connected cells overcome their anchor and
            contract harder, which is how tangled logic ends up packed
            more tightly than ordinary logic).
        tol: conjugate-gradient tolerance.
        backend: ``"numpy"`` (batched assembly, default) or ``"python"``
            (per-pin reference); ``None`` honors ``REPRO_SCALAR_BACKEND``.

    Fixed cells keep their ``pad_positions`` coordinates in the output.
    """
    num_cells = netlist.num_cells
    fixed_mask, movable, index_of, fixed_x, fixed_y = _placement_frame(
        netlist, pad_positions
    )
    if movable.size == 0:
        x = np.zeros(num_cells)
        y = np.zeros(num_cells)
        for cell, (px, py) in pad_positions.items():
            x[cell], y[cell] = px, py
        return x, y

    assemble = (
        _assemble_python if geometry_backend(backend) == "python" else _assemble_numpy
    )
    rows, cols, vals, diag, bx, by = assemble(
        netlist, clique_limit, fixed_mask, index_of, fixed_x, fixed_y, movable.size
    )

    # Anchor springs: absolute center regularization without anchors,
    # connectivity-relative anchors otherwise.
    if anchors is None:
        center_x, center_y = die.center
        spring = np.full(movable.size, anchor_weight)
        target_x = np.full(movable.size, center_x)
        target_y = np.full(movable.size, center_y)
    else:
        anchor_x, anchor_y = anchors
        if anchor_mode == "relative":
            spring = anchor_weight * np.maximum(diag, 1e-12)
        elif anchor_mode == "absolute":
            spring = np.full(movable.size, anchor_weight)
        else:
            raise PlacementError(f"unknown anchor_mode {anchor_mode!r}")
        # Isolated cells (no nets) get a unit spring so they stay put.
        spring[diag == 0] = 1.0
        target_x = np.asarray(anchor_x, dtype=float)[movable]
        target_y = np.asarray(anchor_y, dtype=float)[movable]
    diag = diag + spring
    bx = bx + spring * target_x
    by = by + spring * target_y

    n = movable.size
    laplacian = scipy.sparse.coo_matrix(
        (vals, (rows, cols)), shape=(n, n)
    ).tocsr()
    laplacian += scipy.sparse.diags(diag)

    solution_x = _solve(laplacian, bx, tol)
    solution_y = _solve(laplacian, by, tol)

    x = fixed_x.copy()
    y = fixed_y.copy()
    x[movable] = solution_x
    y[movable] = solution_y
    x = np.clip(x, 0.0, die.width)
    y = np.clip(y, 0.0, die.height)
    return x, y


def _solve(matrix, rhs: np.ndarray, tol: float) -> np.ndarray:
    solution, info = scipy.sparse.linalg.cg(matrix, rhs, rtol=tol, maxiter=2000)
    if info > 0:
        # CG hit maxiter: the partial solution is still a usable placement
        # seed, but surface hard failures.
        residual = np.linalg.norm(matrix @ solution - rhs)
        if residual > 1e-3 * max(np.linalg.norm(rhs), 1.0):
            raise PlacementError(f"conjugate gradients stalled (residual {residual:g})")
    elif info < 0:
        raise PlacementError("conjugate gradients failed (bad system)")
    return solution
