"""Cell inflation (the paper's congestion mitigation, Section 5.1.3).

"All the cells inside the GTLs found through tangled-logic finder algorithm
are inflated by four times, and placement was re-performed to spread these
cells."  Inflation returns a new netlist with identical connectivity and
scaled areas for the selected cells, so the area-weighted spreading step
gives tangled regions proportionally more die area.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.errors import PlacementError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist


def inflate_cells(
    netlist: Netlist, cells: Iterable[int], factor: float = 4.0
) -> Netlist:
    """Return a copy of ``netlist`` with ``cells`` areas scaled by ``factor``.

    The paper inflates by 4x.  Connectivity, names, pin counts and fixed
    flags are preserved; only areas change.
    """
    if factor <= 0:
        raise PlacementError("inflation factor must be positive")
    selected: Set[int] = set(cells)
    for cell in selected:
        if not 0 <= cell < netlist.num_cells:
            raise PlacementError(f"cell index {cell} out of range")

    builder = NetlistBuilder()
    for cell in range(netlist.num_cells):
        view = netlist.cell(cell)
        area = view.area * factor if cell in selected else view.area
        builder.add_cell(
            name=view.name, area=area, pin_count=view.pin_count, fixed=view.fixed
        )
    for net in range(netlist.num_nets):
        builder.add_net(netlist.net_name(net), netlist.cells_of_net(net))
    return builder.build()
