"""Row legalization.

Two steps, both locality-preserving:

1. *Row assignment by capacity*: movable cells (including whitespace
   fillers, when the caller passes them) are scanned in y-order and packed
   into rows by cumulative width, so no row is oversubscribed.  With
   fillers included, total width equals total row capacity exactly and the
   assignment is a measure-preserving transform of the y distribution.
2. *Tetris in x*: within each row, cells keep their desired x where
   possible; overlaps are resolved by a left-to-right push followed by a
   right-edge pull-back.

Cells are unit height; a cell's width is its area.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.placement.region import Die


def legalize_rows(
    x: np.ndarray,
    y: np.ndarray,
    widths: Sequence[float],
    die: Die,
    movable: Optional[np.ndarray] = None,
    num_rows: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Legalize ``movable`` cells onto rows; returns new coordinates.

    Args:
        x, y: global-placement coordinates (all cells).
        widths: per-cell widths (area with unit height).
        die: the placement region.
        movable: cells to legalize (defaults to all).
        num_rows: rows to use; 0 derives one row per height unit, which
            makes a full row correspond to local density 1.0.

    For a distortion-free result the caller should include whitespace
    filler entries in ``movable`` so that total width matches total row
    capacity (see :func:`repro.placement.spreading.make_fillers`).
    """
    x = np.asarray(x, dtype=float).copy()
    y = np.asarray(y, dtype=float).copy()
    width_arr = np.asarray(widths, dtype=float)
    if movable is None:
        movable = np.arange(len(x))
    movable = np.asarray(movable, dtype=np.int64)
    if movable.size == 0:
        return x, y

    if num_rows <= 0:
        num_rows = die.num_rows or max(1, int(round(die.height)))
    row_pitch = die.height / num_rows
    capacity = die.width

    # Step 1: capacity-respecting row assignment in y-order (ties by x for
    # determinism).
    order = movable[np.lexsort((x[movable], y[movable]))]
    # Quantile assignment: a cell whose cumulative width midpoint falls in
    # row r's capacity band goes to row r.  Rows may overflow by a fraction
    # of one cell but there is no cumulative drift.
    w_sorted = np.minimum(width_arr[order], capacity)
    cumulative = np.cumsum(w_sorted) - w_sorted / 2.0
    rows = np.minimum((cumulative / capacity).astype(np.int64), num_rows - 1)

    # Step 2: Tetris within each row.
    for r in range(rows.max() + 1 if rows.size else 0):
        members = order[rows == r]
        if members.size == 0:
            continue
        sub = members[np.argsort(x[members], kind="stable")]
        total_width = width_arr[sub].sum()
        scale = min(1.0, capacity / total_width) if total_width > 0 else 1.0

        cursor = 0.0
        lefts = np.empty(sub.size)
        for k, cell in enumerate(sub):
            w = width_arr[cell] * scale
            desired_left = x[cell] - w / 2.0
            cursor = max(cursor, desired_left)
            lefts[k] = cursor
            cursor += w
        overflow = cursor - capacity
        if overflow > 0:
            cursor = capacity
            for k in range(sub.size - 1, -1, -1):
                w = width_arr[sub[k]] * scale
                lefts[k] = min(lefts[k], cursor - w)
                cursor = lefts[k]
            # Rounding in the scaled widths can overfill the row by a few
            # ulp, so the pull-back may drive the packed prefix past the
            # left die edge.  Clamping each cell at 0 individually would
            # reintroduce exactly the overlaps the pull-back resolved;
            # shifting the whole row right preserves every gap (lefts is
            # non-decreasing after the pull-back, so lefts[0] is the
            # leftmost edge).
            if lefts[0] < 0.0:
                lefts -= lefts[0]
        for k, cell in enumerate(sub):
            w = width_arr[cell] * scale
            x[cell] = lefts[k] + w / 2.0
        y[sub] = (r + 0.5) * row_pitch
    return x, y
