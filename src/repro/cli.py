"""Command-line interface.

Subcommands:

* ``find-gtl``     — run the tangled-logic finder on a Bookshelf / hgr /
  edge-list design and print the report.
* ``generate``     — synthesize a workload (planted graph, ISPD-like,
  industrial-like) and write it to disk.
* ``experiment``   — run one of the paper's table/figure harnesses.
* ``batch``        — run a manifest of detection jobs through the batch
  service (shared worker pool, persistent result cache).
* ``sweep``        — expand a parameter grid over a set of designs,
  deduplicate identical jobs, and run them through the batch service;
  ``--shards N`` splits the plan across parallel worker processes with
  per-shard result stores (``--via-daemon`` dispatches the shards to a
  running daemon as priority-class-``sweep`` jobs instead), and
  ``--aggregate`` publishes per-axis/per-shard statistics as JSON.
* ``store merge``  — fold result stores into one (e.g. per-shard sweep
  stores into the main cache), reconciling rows by fingerprint, schema
  revision and use-count.
* ``flow run``     — execute a declared multi-stage flow manifest
  (detect / partition / place / congestion / soft_blocks / resynthesis)
  over one or more designs, with per-stage fingerprint caching.
* ``diff``         — structural diff of two designs; prints (and
  optionally writes) the :class:`~repro.incremental.NetlistDelta`.
* ``detect``       — detection with incremental reuse: patch a cached
  base run through the dirty region of the edit instead of recomputing
  (``--base`` names a base design or fingerprint; defaults to the
  per-config head pointer in the cache).
* ``cache``        — result-cache maintenance: ``stats`` (entries per
  artifact kind) and ``prune --keep N`` (LRU eviction).
* ``pack``         — convert a text design file to the binary pack format
  (``.nla``), which loads zero-copy via mmap; with ``--out-dir`` pack a
  whole manifest of designs into an indexed corpus the daemon can mmap.
* ``serve``        — start the long-lived detection daemon: one warm
  worker pool + result store + design LRU behind a local Unix socket.
* ``submit``       — submit one detection job to a running daemon and
  stream its lifecycle events; ``--delta BASE`` ships only the edit
  against an already-known base design.
* ``status``       — query a running daemon (server stats or one job).

Examples::

    tangled-logic find-gtl design.aux --seeds 100 --metric gtl_sd
    tangled-logic generate ispd --scale 0.25 --out bench/
    tangled-logic experiment table1 --scale 0.1
    tangled-logic batch jobs.json --workers 4 --cache-dir .repro-cache
    tangled-logic sweep sweep.json --jsonl points.jsonl
    tangled-logic sweep sweep.json --shards 4 --aggregate stats.json
    tangled-logic store merge .repro-cache .repro-cache/shards/shard-*
    tangled-logic flow run flow.json --cache-dir .repro-cache --workers 4
    tangled-logic flow run flow.json --trace trace.jsonl --profile
    tangled-logic --log-level info batch jobs.json
    tangled-logic pack jobs.json --out-dir packed/
    tangled-logic serve --socket /tmp/repro.sock --workers 4 --pack-index packed/
    tangled-logic submit design.hgr --seed 1 --priority interactive
    tangled-logic status --socket /tmp/repro.sock

Batch manifest (JSON; design paths are relative to the manifest)::

    {"defaults": {"num_seeds": 16, "seed": 1},
     "jobs": [{"design": "bench/a.hgr", "label": "a", "num_seeds": 32},
              {"design": "bench/b.aux"}]}

Sweep manifest::

    {"designs": ["bench/a.hgr", "bench/b.hgr"],
     "base": {"num_seeds": 16, "seed": 1},
     "grid": {"lambda_skip": [0, 20], "metric": ["gtl_sd", "ngtl_s"]}}

Flow manifest::

    {"designs": ["bench/a.hgr"],
     "stages": [{"stage": "detect", "num_seeds": 32, "seed": 1},
                {"stage": "partition"},
                {"stage": "place", "utilization": 0.6},
                {"stage": "congestion", "grid": [32, 32]}]}
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.finder import FinderConfig, find_tangled_logic
from repro.io import load_design as _load_design


def _cmd_find_gtl(args: argparse.Namespace) -> int:
    netlist = _load_design(args.design)
    config = FinderConfig(
        num_seeds=args.seeds,
        metric=args.metric,
        max_order_length=args.max_order_length,
        min_gtl_size=args.min_size,
        workers=args.workers,
        seed=args.seed,
    )
    report = find_tangled_logic(netlist, config)
    print(report.summary())
    if args.out:
        with open(args.out, "w") as handle:
            for index, gtl in enumerate(report.gtls):
                names = " ".join(netlist.cell_name(c) for c in sorted(gtl.cells))
                handle.write(f"GTL {index + 1} size={gtl.size} cut={gtl.cut} "
                             f"ngtl={gtl.ngtl_score:.4f} gtl_sd={gtl.gtl_sd_score:.4f}\n")
                handle.write(names + "\n")
        print(f"wrote {report.num_gtls} GTL(s) to {args.out}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.io.bookshelf import write_bookshelf

    if args.kind == "planted":
        from repro.generators.random_gtl import planted_gtl_graph

        netlist, truth = planted_gtl_graph(
            args.cells, args.gtl_sizes or [max(50, args.cells // 20)], seed=args.seed
        )
        print(f"planted blocks: {[len(t) for t in truth]}")
    elif args.kind == "ispd":
        from repro.generators.ispd_like import default_bigblue1_like, generate_ispd_like

        netlist, truth = generate_ispd_like(
            default_bigblue1_like(args.scale), seed=args.seed
        )
        print(f"embedded structures: {{name: size}} = "
              f"{ {k: len(v) for k, v in truth.items()} }")
    elif args.kind == "industrial":
        from repro.generators.industrial import IndustrialSpec, generate_industrial

        netlist, truth = generate_industrial(IndustrialSpec(), seed=args.seed)
        print(f"dissolved ROM blocks: {[len(t) for t in truth]}")
    else:
        raise ReproError(f"unknown workload kind {args.kind!r}")

    aux = write_bookshelf(netlist, args.out, args.kind)
    print(f"{netlist} -> {aux}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as experiments

    runner = getattr(experiments, f"run_{args.which}", None)
    if runner is None:
        raise ReproError(f"unknown experiment {args.which!r}")
    kwargs = {}
    if args.scale is not None and args.which in ("table1", "table2", "fig4", "fig5"):
        kwargs["scale"] = args.scale
    if args.seeds is not None and args.which not in ("fig2", "fig3", "fig5"):
        kwargs["num_seeds"] = args.seeds
    result = runner(**kwargs)
    print(result.render())
    if args.csv:
        result.write_series_csv(args.csv)
        print(f"series written to {args.csv}")
    return 0


def _manifest_config(data, context: str):
    """Build a :class:`FinderConfig` from a manifest dict."""
    from repro.errors import ServiceError
    from repro.service.codec import config_from_dict

    if not isinstance(data, dict):
        raise ServiceError(f"{context} must be a JSON object of FinderConfig fields")
    try:
        return config_from_dict(data)
    except ReproError:
        raise
    except TypeError as error:
        raise ServiceError(f"bad {context}: {error}") from error


def _make_runner(args: argparse.Namespace, store):
    from repro.service.jobs import BatchProgress, BatchRunner

    def _progress(event: BatchProgress) -> None:
        result = event.result
        status = "cached" if result.cached else ("ok" if result.ok else "FAILED")
        label = result.job.label or result.job.fingerprint[:12]
        print(
            f"[{event.done}/{event.total}] {label}: {status} "
            f"({result.runtime_seconds:.2f}s)",
            file=sys.stderr,
        )

    return BatchRunner(
        workers=args.workers,
        store=store,
        use_cache=not args.no_cache,
        progress=_progress if not args.quiet else None,
    )


def _open_store(args: argparse.Namespace):
    from repro.service.store import ResultStore

    if args.no_cache:
        return None
    return ResultStore(args.cache_dir or ".repro-cache")


class _ObsSession:
    """Tracing lifecycle of one CLI command (``--trace`` / ``--profile``).

    Enables the global tracer around the command's work, wraps it in a root
    span, then renders the collected :class:`~repro.obs.report.RunReport`
    (trace-file note, profile tree) after the command's own output.
    """

    def __init__(self, args: argparse.Namespace, root: str) -> None:
        self.trace_path = getattr(args, "trace", "") or ""
        self.profile = bool(getattr(args, "profile", False))
        self.root = root
        self.report = None
        self._span = None

    @property
    def active(self) -> bool:
        return bool(self.trace_path or self.profile)

    def __enter__(self) -> "_ObsSession":
        if self.active:
            from repro.obs import trace

            trace.enable(jsonl_path=self.trace_path or None)
            self._span = trace.span(self.root)
            self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.active:
            from repro.obs import trace
            from repro.obs.report import RunReport

            self._span.__exit__(exc_type, exc, tb)
            self.report = RunReport.from_tracer()
            trace.disable()
        return False

    def emit(self) -> None:
        """Print the run-report epilogue (after the command's own output)."""
        if self.report is None:
            return
        if self.trace_path:
            print(
                f"trace: wrote {len(self.report.spans)} span(s) "
                f"to {self.trace_path}"
            )
        if self.profile:
            print(self.report.summary())


def _report_row(label, result):
    report = result.report
    if report is None:
        return [label, "-", "-", "-", "-", "error", result.error or ""]
    best = report.gtls[0] if report.gtls else None
    return [
        label,
        report.num_gtls,
        best.size if best else "-",
        f"{best.score:.4f}" if best else "-",
        f"{report.rent_exponent:.3f}",
        "hit" if result.cached else "run",
        f"{result.runtime_seconds:.2f}s",
    ]


def _resolve_design(design: str, base_dir: str) -> str:
    return design if os.path.isabs(design) else os.path.join(base_dir, design)


def _run_service_command(args: argparse.Namespace, execute) -> int:
    """Shared store/runner lifecycle and output epilogue of batch and sweep.

    ``execute(runner)`` returns ``(headers, rows, summary_line, jsonl_rows,
    results)``; the exit code is 0 only when every result is ok.
    """
    from repro.utils.jsonio import write_jsonl
    from repro.utils.tables import format_table

    store = _open_store(args)
    obs = _ObsSession(args, f"cli.{args.command}")
    try:
        with obs, _make_runner(args, store) as runner:
            headers, rows, summary_line, jsonl_rows, results = execute(runner)
    finally:
        cache_line = store.stats.summary() if store else "cache disabled"
        if store:
            store.close()

    print(format_table(headers, rows))
    print(summary_line)
    print(f"cache: {cache_line}")
    obs.emit()
    if args.jsonl:
        written = write_jsonl(args.jsonl, jsonl_rows)
        print(f"wrote {written} row(s) to {args.jsonl}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.codec import report_to_dict
    from repro.service.jobs import DetectionJob, summarize_results
    from repro.utils.jsonio import read_json_file

    manifest = read_json_file(args.manifest)
    if not isinstance(manifest, dict) or not isinstance(manifest.get("jobs"), list):
        raise ServiceError('batch manifest must be {"defaults": {...}, "jobs": [...]}')
    if not manifest["jobs"]:
        raise ServiceError("batch manifest has no jobs")
    defaults = manifest.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ServiceError('batch manifest "defaults" must be a JSON object')
    base_dir = os.path.dirname(os.path.abspath(args.manifest))

    from repro.service.fingerprint import fingerprint_netlist

    jobs = []
    # Many jobs routinely target the same design with different configs:
    # parse and content-hash each file once, not once per job entry.
    netlists_by_path = {}
    for index, entry in enumerate(manifest["jobs"]):
        if not isinstance(entry, dict) or not isinstance(entry.get("design"), str):
            raise ServiceError(
                f'job #{index} must be an object with a string "design" key'
            )
        overrides = {
            k: v for k, v in entry.items() if k not in ("design", "label")
        }
        config = _manifest_config({**defaults, **overrides}, f"job #{index} config")
        design = entry["design"]
        path = _resolve_design(design, base_dir)
        if path not in netlists_by_path:
            netlist = _load_design(path)
            netlists_by_path[path] = (netlist, fingerprint_netlist(netlist))
        netlist, netlist_fp = netlists_by_path[path]
        jobs.append(
            DetectionJob.with_netlist_fingerprint(
                netlist, config, entry.get("label", design), netlist_fp
            )
        )

    def execute(runner):
        results = runner.run(jobs)
        headers = ["job", "gtls", "best size", "best score", "rent p", "cache", "time"]
        rows = [_report_row(r.job.label, r) for r in results]
        jsonl_rows = [
            {
                "label": r.job.label,
                "fingerprint": r.job.fingerprint,
                "cached": r.cached,
                "runtime_seconds": r.runtime_seconds,
                "error": r.error,
                "report": report_to_dict(r.report) if r.report else None,
            }
            for r in results
        ]
        return headers, rows, summarize_results(results), jsonl_rows, results

    return _run_service_command(args, execute)


def _sweep_table(outcome):
    """Table headers + rows of one sweep outcome (sharded or not)."""
    headers = [
        "design", "point", "gtls", "best size", "best score", "rent p", "cache", "time",
    ]
    rows = []
    for point, result in outcome.point_results():
        overrides = ", ".join(f"{k}={v}" for k, v in point.overrides)
        row = _report_row(point.design, result)
        rows.append([row[0], overrides] + row[1:])
    return headers, rows


def _sweep_summary(outcome) -> str:
    from repro.service.jobs import summarize_results

    return (
        f"{len(outcome.plan.points)} grid point(s) -> "
        f"{len(outcome.plan.jobs)} distinct job(s) "
        f"({outcome.plan.num_deduplicated} deduplicated); "
        + summarize_results(outcome.job_results)
    )


def _publish_aggregate(args: argparse.Namespace, outcome) -> None:
    if not getattr(args, "aggregate", ""):
        return
    from repro.service.aggregate import aggregate_sweep, write_aggregate

    write_aggregate(args.aggregate, aggregate_sweep(outcome))
    print(f"wrote aggregate stats to {args.aggregate}")


def _parse_sweep_manifest(args: argparse.Namespace):
    """Load a sweep manifest: ``(designs, base, grid, design_paths)``."""
    from repro.errors import ServiceError
    from repro.utils.jsonio import read_json_file

    manifest = read_json_file(args.manifest)
    if not isinstance(manifest, dict) or not isinstance(manifest.get("designs"), list):
        raise ServiceError(
            'sweep manifest must be {"designs": [...], "base": {...}, "grid": {...}}'
        )
    if not isinstance(manifest.get("grid"), dict) or not manifest["grid"]:
        raise ServiceError('sweep manifest needs a non-empty "grid" object')
    base = _manifest_config(manifest.get("base", {}), "sweep base config")
    base_dir = os.path.dirname(os.path.abspath(args.manifest))

    designs = []
    design_paths = {}
    for index, design in enumerate(manifest["designs"]):
        if not isinstance(design, str):
            raise ServiceError(f'sweep manifest "designs" entry #{index} must be a string')
        path = _resolve_design(design, base_dir)
        designs.append((design, _load_design(path)))
        design_paths[design] = path
    return designs, base, manifest["grid"], design_paths


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.service.aggregate import point_rows
    from repro.service.sweep import run_sweep

    designs, base, grid, design_paths = _parse_sweep_manifest(args)
    if args.shards > 1 or args.via_daemon:
        return _cmd_sweep_sharded(args, designs, base, grid, design_paths)

    def execute(runner):
        outcome = run_sweep(designs, base, grid, runner)
        headers, rows = _sweep_table(outcome)
        _publish_aggregate(args, outcome)
        return headers, rows, _sweep_summary(outcome), point_rows(outcome), (
            outcome.job_results
        )

    return _run_service_command(args, execute)


def _cmd_sweep_sharded(args, designs, base, grid, design_paths) -> int:
    """The coordinator path of ``sweep``: ``--shards N`` / ``--via-daemon``."""
    from repro.service.aggregate import point_rows
    from repro.service.coordinator import SweepCoordinator
    from repro.utils.jsonio import write_jsonl
    from repro.utils.tables import format_table

    def progress(event) -> None:
        if event.kind == "shard-start":
            print(f"[shard {event.shard_id}] started "
                  f"({event.num_jobs} job(s))", file=sys.stderr)
        elif event.kind == "shard-done":
            status = f"FAILED: {event.error}" if event.error else "done"
            print(f"[shard {event.shard_id}] {status} "
                  f"({event.done_shards}/{event.total_shards} shard(s))",
                  file=sys.stderr)

    coordinator = SweepCoordinator(
        num_shards=args.shards,
        cache_dir=None if args.no_cache else (args.cache_dir or ".repro-cache"),
        use_cache=not args.no_cache,
        workers=args.workers,
        max_shard_attempts=args.shard_attempts,
        progress=None if args.quiet else progress,
        daemon_socket=args.socket if args.via_daemon else None,
    )
    obs = _ObsSession(args, "cli.sweep")
    with obs:
        outcome = coordinator.run(designs, base, grid, design_paths=design_paths)

    headers, rows = _sweep_table(outcome)
    print(format_table(headers, rows))
    print(_sweep_summary(outcome))
    for stats in outcome.shard_stats:
        status = "ok" if stats.ok else f"FAILED ({stats.error})"
        print(f"shard {stats.shard_id}: {stats.num_jobs} job(s), "
              f"{stats.attempts} attempt(s), {stats.wall_seconds:.2f}s, "
              f"{stats.cache_hits} hit(s), {status}")
    print(f"mode: {outcome.mode}, {outcome.wall_seconds:.2f}s wall"
          + (f"; merged shard stores: {outcome.merge_stats.summary()}"
             if outcome.merge_stats is not None else ""))
    _publish_aggregate(args, outcome)
    obs.emit()
    if args.jsonl:
        written = write_jsonl(args.jsonl, point_rows(outcome))
        print(f"wrote {written} row(s) to {args.jsonl}")
    return 0 if all(r.ok for r in outcome.job_results) else 1


def _cmd_store_merge(args: argparse.Namespace) -> int:
    from repro.service.store import MergeStats, ResultStore

    totals = MergeStats()
    with ResultStore(args.dest) as store:
        before = len(store)
        for source in args.sources:
            stats = store.merge_from(source)
            totals = totals.combined(stats)
            print(f"{source}: {stats.summary()}")
        after = len(store)
    print(f"merged {len(args.sources)} store(s) into {args.dest}: "
          f"{totals.summary()}; {before} -> {after} entr(ies)")
    return 0


def _cmd_flow_run(args: argparse.Namespace) -> int:
    from repro.flow import flow_from_manifest
    from repro.service.pool import WorkerPool
    from repro.utils.jsonio import read_json_file, write_jsonl
    from repro.utils.tables import format_table

    data = read_json_file(args.manifest)
    base_dir = os.path.dirname(os.path.abspath(args.manifest))
    manifest = flow_from_manifest(data, base_dir)

    store = _open_store(args)
    pool = WorkerPool(args.workers) if args.workers > 1 else None
    obs = _ObsSession(args, "cli.flow-run")
    headers = ["design", "stage", "kind", "cache", "time", "summary"]
    rows = []
    jsonl_rows = []
    try:
        with obs:
            for path in manifest.designs:
                netlist = _load_design(path)
                label = os.path.basename(path)

                def _progress(result) -> None:
                    print(
                        f"[{label}] {result.stage}: {result.cache_label} "
                        f"({result.runtime_seconds:.2f}s)",
                        file=sys.stderr,
                    )

                outcome = manifest.flow.run(
                    netlist,
                    store=store,
                    use_cache=not args.no_cache,
                    pool=pool,
                    progress=None if args.quiet else _progress,
                )
                for result in outcome.results:
                    rows.append(
                        [label, result.stage, result.kind, result.cache_label,
                         f"{result.runtime_seconds:.2f}s", result.metadata_summary()]
                    )
                    jsonl_rows.append({"design": label, **result.to_row()})
    finally:
        cache_line = store.stats.summary() if store else "cache disabled"
        if store:
            store.close()
        if pool is not None:
            pool.shutdown()

    print(format_table(headers, rows))
    print(f"cache: {cache_line}")
    obs.emit()
    if args.jsonl:
        written = write_jsonl(args.jsonl, jsonl_rows)
        print(f"wrote {written} row(s) to {args.jsonl}")
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.io import PACKED_EXTENSION, pack_design, read_header

    if args.out_dir:
        from repro.io.corpus import PACK_INDEX_NAME, pack_manifest

        entries = pack_manifest(args.design, args.out_dir)
        packed = sum(1 for entry in entries if entry.packed)
        for entry in entries:
            status = "packed" if entry.packed else "up-to-date"
            print(f"{status}: {entry.source} -> {entry.pack_path}")
        print(
            f"{len(entries)} design(s): {packed} packed, "
            f"{len(entries) - packed} reused; index at "
            f"{os.path.join(args.out_dir, PACK_INDEX_NAME)}"
        )
        return 0

    out = args.out
    if not out:
        out = os.path.splitext(args.design)[0] + PACKED_EXTENSION
    written = pack_design(args.design, out)
    header = read_header(out)
    print(
        f"packed {args.design} -> {out} ({written} bytes, "
        f"{header.num_cells} cells / {header.num_nets} nets / "
        f"{header.num_pins} pins)"
    )
    print(f"fingerprint: {header.fingerprint}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import ServerConfig, ServerDaemon

    config = ServerConfig(
        socket_path=args.socket,
        cache_dir=args.cache_dir or ".repro-cache",
        workers=args.workers,
        max_queue_depth=args.max_queue_depth,
        starvation_limit=args.starvation_limit,
        max_designs=args.max_designs,
        pack_index=args.pack_index,
    )
    daemon = ServerDaemon(config)
    obs = _ObsSession(args, "cli.serve")
    print(
        f"repro daemon: socket={config.socket_path} workers={config.workers} "
        f"cache={config.cache_dir}"
        + (f" pack-index={config.pack_index}" if config.pack_index else "")
    )
    print("serving; SIGTERM/Ctrl-C drains and stops", file=sys.stderr)
    with obs:
        daemon.serve_forever()
    print("daemon stopped")
    obs.emit()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.server import Client

    config = {
        key: value
        for key, value in (
            ("num_seeds", args.seeds),
            ("metric", args.metric),
            ("min_gtl_size", args.min_size),
            ("seed", args.seed),
        )
        if value is not None
    }
    client = Client(args.socket, busy_retries=args.busy_retries)

    design = args.design
    delta_payload = None
    if args.delta:
        # Delta submit: diff locally against the base design the daemon
        # already knows, and ship only the edit — "design" becomes the
        # base path; the edited netlist itself never crosses the socket.
        from repro.incremental import diff

        delta = diff(_load_design(args.delta), _load_design(args.design))
        delta_payload = delta.to_dict()
        design = args.delta
        if not args.quiet:
            print(f"delta vs {args.delta}: {delta.summary()}", file=sys.stderr)

    def on_event(event) -> None:
        if args.quiet:
            return
        name = event["event"]
        if name == "queued":
            print(f"queued: job {event['job_id']} "
                  f"(position {event.get('position', '?')})", file=sys.stderr)
        elif name == "started":
            print(f"started after {event.get('wait_s', 0.0):.2f}s in queue",
                  file=sys.stderr)
        elif name == "progress":
            print(f"progress: {event.get('stage')} ({event.get('cache')})",
                  file=sys.stderr)

    result = client.submit(
        design,
        config=config,
        priority=args.priority,
        label=args.label or os.path.basename(args.design),
        wait=not args.no_wait,
        on_event=on_event,
        delta=delta_payload,
    )
    if result["event"] == "queued":
        print(f"job {result['job_id']} queued (poll with: "
              f"tangled-logic status --socket {args.socket} {result['job_id']})")
        return 0
    from repro.service.codec import report_from_dict

    report = report_from_dict(result["report"])
    origin = "cache" if result.get("cached") else "computed"
    print(report.summary())
    print(f"{origin} in {result.get('runtime_seconds', 0.0):.3f}s "
          f"(fingerprint {result.get('fingerprint', '')[:12]})")
    incremental = result.get("incremental")
    if incremental:
        print(f"incremental: mode={incremental.get('mode')} "
              f"seeds {incremental.get('seeds_recomputed')}/"
              f"{incremental.get('seeds_total')} re-run, "
              f"{incremental.get('dirty_cells')} dirty cell(s)")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.server import Client

    client = Client(args.socket)
    if args.shutdown:
        response = client.shutdown(drain=not args.no_drain)
        print(f"shutdown requested (drain={response.get('drain')})")
        return 0
    status = client.status(args.job_id or None, group=args.group)
    if args.json:
        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0
    if args.job_id:
        job = status["job"]
        print(
            f"job {job['job_id']}: {job['state']} ({job['kind']}, "
            f"{job['priority']}, label={job['label']!r})"
        )
        print(f"  wait {job['wait_s']:.2f}s, run {job['run_s']:.2f}s, "
              f"cached={job['cached']}")
        if job.get("error"):
            print(f"  error: {job['error']}")
        return 0
    queue = status["queue"]
    store = status["store"]
    print(f"daemon pid {status['pid']}, up {status['uptime_s']:.0f}s, "
          f"{status['workers']} worker(s)")
    depths = queue.get("depths", {})
    per_class = " ".join(
        f"{name}={depths.get(name, 0)}"
        for name in ("interactive", "batch", "sweep")
    )
    print(
        f"queue: {queue['depth']}/{queue['max_depth']} queued "
        f"({per_class}), {queue['submitted']} submitted, "
        f"{queue['rejected']} rejected, {queue['cancelled']} cancelled"
    )
    print(
        f"store: {store['entries']} entries, {store['hits']} hit(s) / "
        f"{store['misses']} miss(es) ({store['hit_rate']:.0%}), "
        f"{store['puts']} put(s)"
    )
    counters = status["counters"]
    print(
        f"served: {counters['done']} done, {counters['failed']} failed, "
        f"{counters['warm_hits']} warm hit(s), "
        f"{counters['requests']} request(s)"
    )
    designs = status["designs"]
    print(
        f"designs: {designs['loaded']}/{designs['max_designs']} loaded, "
        f"{designs['hits']} hit(s), {designs['pack_loads']} pack load(s)"
    )
    if status["jobs"]:
        print(f"recent jobs{f' (group {args.group})' if args.group else ''}:")
        for job in status["jobs"][:20 if args.group else 10]:
            tag = f" [{job['group']}]" if job.get("group") else ""
            print(f"  {job['job_id']} {job['state']:9s} {job['priority']:11s} "
                  f"{job['label']}{tag}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.incremental import delta_fingerprint, diff
    from repro.service.fingerprint import fingerprint_netlist

    old = _load_design(args.old)
    new = _load_design(args.new)
    delta = diff(old, new)
    base_fp = fingerprint_netlist(old)
    print(f"base: {args.old} ({old.num_cells} cells, {old.num_nets} nets, "
          f"fingerprint {base_fp[:12]})")
    print(f"new:  {args.new} ({new.num_cells} cells, {new.num_nets} nets, "
          f"fingerprint {fingerprint_netlist(new)[:12]})")
    print(f"delta: {delta.summary()}"
          + (" (netlists identical)" if delta.is_empty else ""))
    print(f"delta fingerprint: {delta_fingerprint(base_fp, delta)[:12]}")
    if args.json:
        import json as _json

        with open(args.json, "w") as handle:
            _json.dump(delta.to_dict(), handle)
        print(f"wrote delta ({delta.num_edits} edit(s)) to {args.json}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.incremental import detect_with_reuse

    netlist = _load_design(args.design)
    config = FinderConfig(
        num_seeds=args.seeds,
        metric=args.metric,
        max_order_length=args.max_order_length,
        min_gtl_size=args.min_size,
        workers=args.workers,
        seed=args.seed,
    )
    base_netlist = None
    base_fingerprint = ""
    if args.base:
        if os.path.exists(args.base):
            base_netlist = _load_design(args.base)
        else:
            base_fingerprint = args.base  # a netlist fingerprint from a prior run
    store = _open_store(args)
    obs = _ObsSession(args, "cli.detect")
    try:
        with obs:
            result = detect_with_reuse(
                netlist,
                config,
                store,
                base=base_netlist,
                base_fingerprint=base_fingerprint,
                halo=args.halo,
                full_threshold=args.full_threshold,
            )
    finally:
        cache_line = store.stats.summary() if store else "cache disabled"
        if store:
            store.close()
    print(result.report.summary())
    print(result.summary())
    if result.base_fingerprint:
        print(f"base fingerprint: {result.base_fingerprint[:12]}, "
              f"delta fingerprint: {result.delta_fingerprint[:12]}")
    print(f"cache: {cache_line}")
    obs.emit()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore

    store = ResultStore(args.cache_dir or ".repro-cache")
    try:
        if args.cache_command == "stats":
            entries = store.entries()
            total_runtime = sum(runtime for _, _, runtime in entries)
            print(f"cache dir: {store.cache_dir}")
            print(f"{len(entries)} entr(ies), "
                  f"{total_runtime:.1f}s of saved compute")
            for kind, count in store.kind_counts().items():
                print(f"  {kind}: {count}")
            return 0
        evicted = store.evict_lru(args.keep)
        print(f"pruned {evicted} entr(ies); {len(store)} kept "
              f"(LRU, --keep {args.keep})")
        return 0
    finally:
        store.close()


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.netlist.stats import netlist_stats

    netlist = _load_design(args.design)
    print(netlist_stats(netlist).render())
    if args.rent:
        from repro.finder.candidate import scan_ordering
        from repro.finder.ordering import grow_linear_ordering
        from repro.metrics.rent import estimate_rent_exponent_from_prefixes
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(args.seed)
        movable = netlist.movable_cells()
        estimates = []
        for _ in range(min(4, len(movable))):
            seed_cell = rng.choice(movable)
            ordering = grow_linear_ordering(
                netlist, seed_cell, min(5000, max(64, netlist.num_cells // 4))
            )
            estimates.append(
                estimate_rent_exponent_from_prefixes(scan_ordering(netlist, ordering))
            )
        print(
            f"\nRent exponent (ordering estimator, {len(estimates)} seeds): "
            f"{sum(estimates) / len(estimates):.3f}"
        )
    return 0


def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by batch/sweep/flow-run."""
    sub.add_argument("--trace", default="", metavar="PATH",
                     help="write a JSONL span trace of the run here")
    sub.add_argument("--profile", action="store_true",
                     help="print a span/counter profile after the run")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="tangled-logic",
        description="Detecting tangled logic structures in VLSI netlists "
        "(DAC 2010 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="logging level (DEBUG/INFO/WARNING/ERROR; also $REPRO_LOG_LEVEL)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    find = sub.add_parser("find-gtl", help="run the finder on a design file")
    find.add_argument("design", help=".aux (Bookshelf), .hgr, or edge-list file")
    find.add_argument("--seeds", type=int, default=100)
    find.add_argument("--metric", choices=("gtl_s", "ngtl_s", "gtl_sd"), default="gtl_sd")
    find.add_argument("--max-order-length", type=int, default=0)
    find.add_argument("--min-size", type=int, default=30)
    find.add_argument("--workers", type=int, default=1)
    find.add_argument("--seed", type=int, default=None)
    find.add_argument("--out", default="", help="write found GTL membership here")
    find.set_defaults(func=_cmd_find_gtl)

    gen = sub.add_parser("generate", help="synthesize a workload")
    gen.add_argument("kind", choices=("planted", "ispd", "industrial"))
    gen.add_argument("--cells", type=int, default=10_000)
    gen.add_argument("--gtl-sizes", type=int, nargs="*", default=None)
    gen.add_argument("--scale", type=float, default=0.25)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", default="generated")
    gen.set_defaults(func=_cmd_generate)

    exp = sub.add_parser("experiment", help="run a paper table/figure harness")
    exp.add_argument(
        "which",
        choices=(
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
        ),
    )
    exp.add_argument("--scale", type=float, default=None)
    exp.add_argument("--seeds", type=int, default=None)
    exp.add_argument("--csv", default="", help="write figure series to CSV")
    exp.set_defaults(func=_cmd_experiment)

    # Mirrors repro.server.daemon.DEFAULT_SOCKET without importing the
    # server stack just to build the parser.
    DEFAULT_SOCKET = "/tmp/repro-server.sock"

    service_parsers = {}
    for name, func, help_text in (
        ("batch", _cmd_batch, "run a manifest of detection jobs via the service"),
        ("sweep", _cmd_sweep, "run a parameter sweep with job deduplication"),
    ):
        svc = sub.add_parser(name, help=help_text)
        svc.add_argument("manifest", help="JSON manifest file")
        svc.add_argument("--workers", type=int, default=1,
                         help="parallel seed trials per job")
        svc.add_argument("--cache-dir", default="",
                         help="result cache directory (default .repro-cache)")
        svc.add_argument("--no-cache", action="store_true",
                         help="bypass the result cache entirely")
        svc.add_argument("--jsonl", default="", help="write per-job results here")
        svc.add_argument("--quiet", action="store_true",
                         help="suppress per-job progress on stderr")
        _add_obs_args(svc)
        svc.set_defaults(func=func)
        service_parsers[name] = svc

    sweep_p = service_parsers["sweep"]
    sweep_p.add_argument("--shards", type=int, default=1,
                         help="split the deduplicated plan into N shards "
                         "executed by parallel worker processes over "
                         "per-shard stores (merged back afterwards)")
    sweep_p.add_argument("--shard-attempts", type=int, default=2,
                         help="dispatch attempts per shard before its jobs "
                         "are reported failed")
    sweep_p.add_argument("--via-daemon", action="store_true",
                         help="dispatch shards as priority-class-sweep jobs "
                         "to a running daemon instead of local processes")
    sweep_p.add_argument("--socket", default=DEFAULT_SOCKET,
                         help="daemon socket for --via-daemon")
    sweep_p.add_argument("--aggregate", default="",
                         help="write aggregate sweep stats (per-axis "
                         "summaries, per-shard wall-clock) as JSON here")

    store_p = sub.add_parser("store", help="result-store maintenance")
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    store_merge = store_sub.add_parser(
        "merge",
        help="merge result stores row-by-row (e.g. shard stores into the "
        "main store): new rows copied, identical rows' usage combined, "
        "conflicts resolved by use-count then recency",
    )
    store_merge.add_argument("dest", help="destination cache directory")
    store_merge.add_argument("sources", nargs="+",
                             help="source cache directories (read-only)")
    store_merge.set_defaults(func=_cmd_store_merge)

    flow = sub.add_parser("flow", help="declared multi-stage flows")
    flow_sub = flow.add_subparsers(dest="flow_command", required=True)
    flow_run = flow_sub.add_parser(
        "run", help="execute a flow manifest with per-stage caching"
    )
    flow_run.add_argument("manifest", help="JSON flow manifest file")
    flow_run.add_argument("--workers", type=int, default=1,
                          help="parallel seed trials inside detection stages")
    flow_run.add_argument("--cache-dir", default="",
                          help="result cache directory (default .repro-cache)")
    flow_run.add_argument("--no-cache", action="store_true",
                          help="bypass the result cache entirely")
    flow_run.add_argument("--jsonl", default="", help="write per-stage results here")
    flow_run.add_argument("--quiet", action="store_true",
                          help="suppress per-stage progress on stderr")
    _add_obs_args(flow_run)
    flow_run.set_defaults(func=_cmd_flow_run)

    diff = sub.add_parser(
        "diff", help="structural diff of two designs (netlist delta)"
    )
    diff.add_argument("old", help="base design file (.aux, .hgr, .nla, ...)")
    diff.add_argument("new", help="edited design file")
    diff.add_argument("--json", default="",
                      help="write the delta (NetlistDelta JSON) here")
    diff.set_defaults(func=_cmd_diff)

    detect = sub.add_parser(
        "detect",
        help="detection with incremental reuse (patch a cached base run)",
    )
    detect.add_argument("design", help=".aux (Bookshelf), .hgr, or edge-list file")
    detect.add_argument("--base", default="",
                        help="base to patch from: a design file, or the "
                        "netlist fingerprint of a prior cached run "
                        "(default: the per-config head pointer)")
    detect.add_argument("--halo", type=int, default=0,
                        help="extra dirty-region hops (conservatism knob; "
                        "never changes results)")
    detect.add_argument("--full-threshold", type=float, default=0.25,
                        help="dirty fraction above which a full recompute "
                        "is cheaper than patching")
    detect.add_argument("--seeds", type=int, default=100, dest="seeds")
    detect.add_argument("--metric", choices=("gtl_s", "ngtl_s", "gtl_sd"),
                        default="gtl_sd")
    detect.add_argument("--max-order-length", type=int, default=0)
    detect.add_argument("--min-size", type=int, default=30)
    detect.add_argument("--workers", type=int, default=1)
    detect.add_argument("--seed", type=int, default=0,
                        help="RNG seed (incremental reuse requires one)")
    detect.add_argument("--cache-dir", default="",
                        help="result cache directory (default .repro-cache)")
    detect.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache (forces a full run)")
    _add_obs_args(detect)
    detect.set_defaults(func=_cmd_detect)

    cache = sub.add_parser("cache", help="inspect or prune the result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry counts per artifact kind"
    )
    cache_stats.add_argument("--cache-dir", default="",
                             help="result cache directory (default .repro-cache)")
    cache_stats.set_defaults(func=_cmd_cache)
    cache_prune = cache_sub.add_parser(
        "prune", help="evict all but the N most recently used entries"
    )
    cache_prune.add_argument("--keep", type=int, required=True,
                             help="entries to keep (LRU order)")
    cache_prune.add_argument("--cache-dir", default="",
                             help="result cache directory (default .repro-cache)")
    cache_prune.set_defaults(func=_cmd_cache)

    pack = sub.add_parser(
        "pack", help="convert a design file to the binary pack format (.nla)"
    )
    pack.add_argument(
        "design",
        help=".aux (Bookshelf), .hgr, or edge-list file — or, with "
        "--out-dir, a JSON manifest naming the designs to pack",
    )
    pack.add_argument(
        "--out",
        default="",
        help="output pack file (default: design path with .nla extension)",
    )
    pack.add_argument(
        "--out-dir",
        default="",
        help="pack every design named by the manifest into this corpus "
        "directory and write an index the daemon can serve from",
    )
    pack.set_defaults(func=_cmd_pack)

    serve = sub.add_parser(
        "serve", help="start the long-lived detection daemon"
    )
    serve.add_argument("--socket", default=DEFAULT_SOCKET,
                       help="Unix socket to listen on")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes in the shared pool")
    serve.add_argument("--cache-dir", default="",
                       help="result cache directory (default .repro-cache)")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="queued jobs admitted before backpressure")
    serve.add_argument("--starvation-limit", type=int, default=8,
                       help="dispatches a priority class may be passed over")
    serve.add_argument("--max-designs", type=int, default=8,
                       help="designs kept loaded in the LRU")
    serve.add_argument("--pack-index", default="",
                       help="pre-packed corpus directory (see `pack --out-dir`)")
    _add_obs_args(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a detection job to a running daemon"
    )
    submit.add_argument("design", help=".aux (Bookshelf), .hgr, or edge-list file")
    submit.add_argument("--socket", default=DEFAULT_SOCKET,
                        help="daemon socket to connect to")
    submit.add_argument("--seeds", type=int, default=None, dest="seeds",
                        help="finder num_seeds")
    submit.add_argument("--metric", choices=("gtl_s", "ngtl_s", "gtl_sd"),
                        default=None)
    submit.add_argument("--min-size", type=int, default=None)
    submit.add_argument("--seed", type=int, default=None,
                        help="RNG seed (pinned seeds make the job cacheable)")
    submit.add_argument("--priority", choices=("interactive", "batch", "sweep"),
                        default="batch")
    submit.add_argument("--label", default="")
    submit.add_argument("--delta", default="", metavar="BASE",
                        help="delta submit: diff the design against this "
                        "base file and ship only the edit (the daemon "
                        "reconstructs and detects server-side)")
    submit.add_argument("--no-wait", action="store_true",
                        help="enqueue and print the job id instead of streaming")
    submit.add_argument("--busy-retries", type=int, default=3,
                        help="automatic retries after a backpressure rejection")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress lifecycle events on stderr")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="query a running daemon")
    status.add_argument("job_id", nargs="?", default="",
                        help="job id to inspect (default: server-level stats)")
    status.add_argument("--socket", default=DEFAULT_SOCKET,
                        help="daemon socket to connect to")
    status.add_argument("--json", action="store_true",
                        help="print the raw status response as JSON")
    status.add_argument("--group", default="",
                        help="only list jobs of this job group "
                        "(e.g. a sharded sweep's sweep/shard-3)")
    status.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to drain and stop")
    status.add_argument("--no-drain", action="store_true",
                        help="with --shutdown: cancel the backlog instead "
                        "of draining it")
    status.set_defaults(func=_cmd_status)

    stats = sub.add_parser("stats", help="profile a design file")
    stats.add_argument("design", help=".aux (Bookshelf), .hgr, or edge-list file")
    stats.add_argument("--rent", action="store_true", help="estimate the Rent exponent")
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    from repro.obs import configure_logging

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        configure_logging(args.log_level)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
