"""Command-line interface.

Subcommands:

* ``find-gtl``     — run the tangled-logic finder on a Bookshelf / hgr /
  edge-list design and print the report.
* ``generate``     — synthesize a workload (planted graph, ISPD-like,
  industrial-like) and write it to disk.
* ``experiment``   — run one of the paper's table/figure harnesses.

Examples::

    tangled-logic find-gtl design.aux --seeds 100 --metric gtl_sd
    tangled-logic generate ispd --scale 0.25 --out bench/
    tangled-logic experiment table1 --scale 0.1
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.finder import FinderConfig, find_tangled_logic
from repro.netlist.hypergraph import Netlist


def _load_design(path: str) -> Netlist:
    lower = path.lower()
    if lower.endswith(".aux"):
        from repro.io.bookshelf import read_bookshelf

        netlist, _ = read_bookshelf(path)
        return netlist
    if lower.endswith(".hgr"):
        from repro.io.hgr import read_hgr

        return read_hgr(path)
    from repro.io.edgelist import read_edgelist

    return read_edgelist(path)


def _cmd_find_gtl(args: argparse.Namespace) -> int:
    netlist = _load_design(args.design)
    config = FinderConfig(
        num_seeds=args.seeds,
        metric=args.metric,
        max_order_length=args.max_order_length,
        min_gtl_size=args.min_size,
        workers=args.workers,
        seed=args.seed,
    )
    report = find_tangled_logic(netlist, config)
    print(report.summary())
    if args.out:
        with open(args.out, "w") as handle:
            for index, gtl in enumerate(report.gtls):
                names = " ".join(netlist.cell_name(c) for c in sorted(gtl.cells))
                handle.write(f"GTL {index + 1} size={gtl.size} cut={gtl.cut} "
                             f"ngtl={gtl.ngtl_score:.4f} gtl_sd={gtl.gtl_sd_score:.4f}\n")
                handle.write(names + "\n")
        print(f"wrote {report.num_gtls} GTL(s) to {args.out}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.io.bookshelf import write_bookshelf

    if args.kind == "planted":
        from repro.generators.random_gtl import planted_gtl_graph

        netlist, truth = planted_gtl_graph(
            args.cells, args.gtl_sizes or [max(50, args.cells // 20)], seed=args.seed
        )
        print(f"planted blocks: {[len(t) for t in truth]}")
    elif args.kind == "ispd":
        from repro.generators.ispd_like import default_bigblue1_like, generate_ispd_like

        netlist, truth = generate_ispd_like(
            default_bigblue1_like(args.scale), seed=args.seed
        )
        print(f"embedded structures: {{name: size}} = "
              f"{ {k: len(v) for k, v in truth.items()} }")
    elif args.kind == "industrial":
        from repro.generators.industrial import IndustrialSpec, generate_industrial

        netlist, truth = generate_industrial(IndustrialSpec(), seed=args.seed)
        print(f"dissolved ROM blocks: {[len(t) for t in truth]}")
    else:
        raise ReproError(f"unknown workload kind {args.kind!r}")

    aux = write_bookshelf(netlist, args.out, args.kind)
    print(f"{netlist} -> {aux}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as experiments

    runner = getattr(experiments, f"run_{args.which}", None)
    if runner is None:
        raise ReproError(f"unknown experiment {args.which!r}")
    kwargs = {}
    if args.scale is not None and args.which in ("table1", "table2", "fig4", "fig5"):
        kwargs["scale"] = args.scale
    if args.seeds is not None and args.which not in ("fig2", "fig3", "fig5"):
        kwargs["num_seeds"] = args.seeds
    result = runner(**kwargs)
    print(result.render())
    if args.csv:
        result.write_series_csv(args.csv)
        print(f"series written to {args.csv}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.netlist.stats import netlist_stats

    netlist = _load_design(args.design)
    print(netlist_stats(netlist).render())
    if args.rent:
        from repro.finder.candidate import scan_ordering
        from repro.finder.ordering import grow_linear_ordering
        from repro.metrics.rent import estimate_rent_exponent_from_prefixes
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(args.seed)
        movable = netlist.movable_cells()
        estimates = []
        for _ in range(min(4, len(movable))):
            seed_cell = rng.choice(movable)
            ordering = grow_linear_ordering(
                netlist, seed_cell, min(5000, max(64, netlist.num_cells // 4))
            )
            estimates.append(
                estimate_rent_exponent_from_prefixes(scan_ordering(netlist, ordering))
            )
        print(
            f"\nRent exponent (ordering estimator, {len(estimates)} seeds): "
            f"{sum(estimates) / len(estimates):.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="tangled-logic",
        description="Detecting tangled logic structures in VLSI netlists "
        "(DAC 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    find = sub.add_parser("find-gtl", help="run the finder on a design file")
    find.add_argument("design", help=".aux (Bookshelf), .hgr, or edge-list file")
    find.add_argument("--seeds", type=int, default=100)
    find.add_argument("--metric", choices=("gtl_s", "ngtl_s", "gtl_sd"), default="gtl_sd")
    find.add_argument("--max-order-length", type=int, default=0)
    find.add_argument("--min-size", type=int, default=30)
    find.add_argument("--workers", type=int, default=1)
    find.add_argument("--seed", type=int, default=None)
    find.add_argument("--out", default="", help="write found GTL membership here")
    find.set_defaults(func=_cmd_find_gtl)

    gen = sub.add_parser("generate", help="synthesize a workload")
    gen.add_argument("kind", choices=("planted", "ispd", "industrial"))
    gen.add_argument("--cells", type=int, default=10_000)
    gen.add_argument("--gtl-sizes", type=int, nargs="*", default=None)
    gen.add_argument("--scale", type=float, default=0.25)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--out", default="generated")
    gen.set_defaults(func=_cmd_generate)

    exp = sub.add_parser("experiment", help="run a paper table/figure harness")
    exp.add_argument(
        "which",
        choices=(
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
        ),
    )
    exp.add_argument("--scale", type=float, default=None)
    exp.add_argument("--seeds", type=int, default=None)
    exp.add_argument("--csv", default="", help="write figure series to CSV")
    exp.set_defaults(func=_cmd_experiment)

    stats = sub.add_parser("stats", help="profile a design file")
    stats.add_argument("design", help=".aux (Bookshelf), .hgr, or edge-list file")
    stats.add_argument("--rent", action="store_true", help="estimate the Rent exponent")
    stats.add_argument("--seed", type=int, default=0)
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
