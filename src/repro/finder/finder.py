"""The full tangled-logic finder pipeline (Algorithm, Chapter IV).

Each random seed runs Phases I-III independently — the paper exploits this
with 8 pthreads; here seed runs are distributed over a
:class:`repro.service.pool.WorkerPool` when ``config.workers > 1`` (default
serial, which is deterministic and has no pickling overhead for small
designs).  Batch drivers (:class:`repro.service.jobs.BatchRunner`) pass a
persistent pool into :meth:`TangledLogicFinder.run` so many detections share
one set of worker processes.

Rent-exponent handling: Phase II estimates a Rent exponent per ordering (the
paper's estimator).  The finder averages those into a netlist-level exponent
and re-scores every refined candidate with it before pruning, so overlapping
candidates from different seeds are compared on one consistent scale.
"""

from __future__ import annotations

import logging
import math
from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Tuple

from repro.errors import FinderError
from repro.finder.candidate import CandidateGTL, extract_candidate
from repro.finder.config import DEFAULT_RENT_EXPONENT, FinderConfig
from repro.finder.ordering import grow_linear_ordering
from repro.finder.prune import prune_overlapping
from repro.finder.refine import refine_candidate
from repro.finder.result import GTL, FinderReport
from repro.metrics.gtl_score import ScoreContext
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer

if TYPE_CHECKING:  # import cycle: service.pool executes this module's seeds
    from repro.service.pool import WorkerPool

logger = logging.getLogger(__name__)

# One seed's outcome: (refined candidate or None, ordering Rent estimate,
# number of orderings grown, footprint).  The footprint is the sorted tuple
# of every cell absorbed by any ordering this seed grew (Phase I plus the
# refinement re-growths); it is the seed's read-set over the netlist, so an
# edit whose dirty region (see :mod:`repro.incremental.dirty`) misses the
# footprint cannot change the outcome — the invariant incremental
# detection's reuse rests on.
_SeedOutcome = Tuple[Optional[CandidateGTL], float, int, Tuple[int, ...]]


def _process_seed(
    netlist: Netlist, config: FinderConfig, seed_cell: int, rng_seed: int
) -> _SeedOutcome:
    """Run Phases I-III for one seed cell (independent unit of work).

    The kernel backend (CSR arrays vs scalar reference, see
    :mod:`repro.netlist.backend`) is resolved here once per seed; both
    backends produce identical outcomes.
    """
    from repro.netlist.backend import resolve_backend

    backend = resolve_backend()
    max_length = config.resolve_order_length(netlist.num_cells)
    with trace.span("finder.seed", seed=seed_cell, backend=backend):
        trace.counter("finder.seeds").add(1)
        with trace.span("finder.phase1"):
            ordering = grow_linear_ordering(
                netlist,
                seed_cell,
                max_length,
                lambda_skip=config.lambda_skip,
                exclude_fixed=config.exclude_fixed,
                backend=backend,
            )
        touched: Set[int] = set(ordering)
        orderings_grown = 1
        with trace.span("finder.phase2"):
            candidate = extract_candidate(
                netlist, ordering, config, seed=seed_cell, backend=backend
            )
            if candidate is None:
                # Still recover the ordering's Rent estimate for the global
                # average.  NaN marks an ordering with no usable prefix so it
                # is *excluded* from the average instead of dragging it toward
                # the assumed 0.6; when every ordering is unusable the finder
                # flags rent_fallback.
                footprint = tuple(sorted(touched))
                if backend == "numpy":
                    from repro.finder.candidate import ordering_curves_and_rent

                    _, rent = ordering_curves_and_rent(
                        netlist, ordering, config.rent_min_prefix,
                        fallback=float("nan"),
                    )
                    return None, rent, orderings_grown, footprint
                from repro.finder.candidate import scan_ordering
                from repro.metrics.rent import estimate_rent_exponent_from_prefixes

                prefix_stats = scan_ordering(netlist, ordering, backend=backend)
                rent = estimate_rent_exponent_from_prefixes(
                    prefix_stats, min_size=config.rent_min_prefix,
                    fallback=float("nan"),
                )
                return None, rent, orderings_grown, footprint
        trace.counter("finder.candidates").add(1)

        with trace.span("finder.phase3"):
            refined = refine_candidate(
                netlist,
                candidate,
                config,
                rent_exponent=candidate.rent_exponent,
                rng=rng_seed,
                backend=backend,
                touched=touched,
            )
        orderings_grown += config.refine_count
        return refined, candidate.rent_exponent, orderings_grown, tuple(
            sorted(touched)
        )


def _process_batch(
    netlist: Netlist, config: FinderConfig, jobs: Sequence[Tuple[int, int]]
) -> List[_SeedOutcome]:
    """Process several ``(seed_cell, rng_seed)`` jobs in one worker."""
    return [_process_seed(netlist, config, cell, rng) for cell, rng in jobs]


def _draw_seed_cells(netlist: Netlist, config: FinderConfig) -> List[int]:
    from repro.finder.seeding import draw_seeds

    if config.exclude_fixed:
        eligible = netlist.movable_cells()
    else:
        eligible = list(range(netlist.num_cells))
    if not eligible:
        raise FinderError("no eligible seed cells (all cells fixed?)")
    return draw_seeds(
        netlist,
        eligible,
        config.num_seeds,
        strategy=config.seed_strategy,
        rng=ensure_rng(config.seed),
    )


def plan_seed_jobs(
    netlist: Netlist, config: FinderConfig
) -> List[Tuple[int, int]]:
    """The ``(seed_cell, rng_seed)`` job list one :meth:`run` would execute.

    Deterministic for a pinned ``config.seed``.  Exposed so incremental
    detection can re-plan the jobs on an edited netlist and match them
    index-by-index against a recorded trace.
    """
    seed_cells = _draw_seed_cells(netlist, config)
    rng = ensure_rng(config.seed)
    return [(cell, rng.randrange(2**63)) for cell in seed_cells]


def _rescore(
    netlist: Netlist, config: FinderConfig, candidate: CandidateGTL, rent: float
) -> CandidateGTL:
    context = ScoreContext.for_netlist(netlist, rent, metric=config.metric)
    stats = candidate.stats
    return CandidateGTL(
        cells=candidate.cells,
        score=context.score(stats),
        stats=stats,
        rent_exponent=rent,
        seed=candidate.seed,
    )


def _to_gtl(netlist: Netlist, candidate: CandidateGTL) -> GTL:
    # The candidate comes out of _rescore, whose stats already describe
    # exactly candidate.cells — no need to recompute them per kept group.
    stats = candidate.stats
    rent = candidate.rent_exponent
    ngtl = ScoreContext.for_netlist(netlist, rent, metric="ngtl_s")
    gtl_sd = ScoreContext.for_netlist(netlist, rent, metric="gtl_sd")
    return GTL(
        cells=candidate.cells,
        size=stats.size,
        cut=stats.cut,
        ngtl_score=ngtl.score(stats),
        gtl_sd_score=gtl_sd.score(stats),
        score=candidate.score,
        seed=candidate.seed,
        rent_exponent=rent,
    )


def reduce_outcomes(
    netlist: Netlist, config: FinderConfig, outcomes: Sequence[_SeedOutcome]
) -> Tuple[Tuple[GTL, ...], float, int, int, bool]:
    """The finder's reduce step over per-seed outcomes.

    Returns ``(gtls, global_rent, num_candidates, num_orderings,
    rent_fallback)``.  Pure in its inputs: incremental detection replays it
    over a merge of reused and recomputed outcomes and obtains the same
    report a cold run would.
    """
    with trace.span("finder.reduce"):
        candidates = [c for c, _, _, _ in outcomes if c is not None]
        rents = [p for _, p, _, _ in outcomes if math.isfinite(p)]
        orderings = sum(n for _, _, n, _ in outcomes)
        rent_fallback = not rents
        if rent_fallback:
            global_rent = DEFAULT_RENT_EXPONENT
            logger.warning(
                "no ordering yielded a usable Rent estimate; assuming "
                "default exponent p=%.2f",
                DEFAULT_RENT_EXPONENT,
            )
        else:
            global_rent = sum(rents) / len(rents)

        rescored = [_rescore(netlist, config, c, global_rent) for c in candidates]
        kept = prune_overlapping(rescored, netlist=netlist)
        gtls = tuple(_to_gtl(netlist, c) for c in kept)
    return gtls, global_rent, len(candidates), orderings, rent_fallback


class TangledLogicFinder:
    """Finds all groups of tangled logic in a netlist.

    >>> from repro.generators import planted_gtl_graph
    >>> netlist, truth = planted_gtl_graph(2000, [200], seed=1)
    >>> report = TangledLogicFinder(netlist, FinderConfig(num_seeds=8, seed=1)).run()
    >>> report.num_gtls >= 1
    True
    """

    def __init__(self, netlist: Netlist, config: Optional[FinderConfig] = None):
        if netlist.num_cells < 2:
            raise FinderError("netlist too small for GTL detection")
        self.netlist = netlist
        self.config = config or FinderConfig()
        #: Jobs and per-seed outcomes of the most recent :meth:`run` —
        #: the raw material of a :class:`repro.incremental.engine.SeedTrace`.
        self.last_jobs: List[Tuple[int, int]] = []
        self.last_outcomes: List[_SeedOutcome] = []

    # ------------------------------------------------------------------
    def run(
        self,
        pool: Optional["WorkerPool"] = None,
        pool_key: Optional[str] = None,
    ) -> FinderReport:
        """Execute Phases I-III for all seeds and return the report.

        Args:
            pool: a persistent :class:`repro.service.pool.WorkerPool` to run
                the seed trials on; ``None`` executes serially or, when
                ``config.workers > 1``, on an ephemeral pool.
            pool_key: context key identifying ``(netlist, config)`` inside
                ``pool`` (batch drivers pass the job fingerprint so the
                netlist is shipped to the workers only once).
        """
        config = self.config
        with Timer() as timer, trace.span(
            "finder.run", seeds=config.num_seeds
        ):
            jobs = plan_seed_jobs(self.netlist, config)

            if pool is not None:
                outcomes = pool.run_seed_jobs(
                    self.netlist, config, jobs, key=pool_key
                )
            elif config.workers > 1 and len(jobs) > 1:
                outcomes = self._run_parallel(jobs)
            else:
                outcomes = _process_batch(self.netlist, config, jobs)

            self.last_jobs = list(jobs)
            self.last_outcomes = list(outcomes)
            gtls, global_rent, num_candidates, orderings, rent_fallback = (
                reduce_outcomes(self.netlist, config, outcomes)
            )

        return FinderReport(
            gtls=gtls,
            config=config,
            rent_exponent=global_rent,
            num_orderings=orderings,
            num_candidates=num_candidates,
            runtime_seconds=timer.elapsed,
            rent_fallback=rent_fallback,
        )

    # ------------------------------------------------------------------
    def _run_parallel(self, jobs: List[Tuple[int, int]]) -> List[_SeedOutcome]:
        """One-shot parallel run on an ephemeral service pool.

        The fixed key skips content hashing: the pool lives for exactly one
        ``(netlist, config)`` context, so no collision is possible.
        """
        from repro.service.pool import WorkerPool

        workers = min(self.config.workers, len(jobs))
        with WorkerPool(workers) as pool:
            return pool.run_seed_jobs(
                self.netlist, self.config, jobs, key="single-run"
            )


def find_tangled_logic(
    netlist: Netlist, config: Optional[FinderConfig] = None, **overrides
) -> FinderReport:
    """One-call convenience API.

    ``overrides`` are applied on top of ``config`` (or the defaults), e.g.
    ``find_tangled_logic(netlist, num_seeds=100, seed=42)``.
    """
    base = config or FinderConfig()
    if overrides:
        base = base.with_overrides(**overrides)
    return TangledLogicFinder(netlist, base).run()
