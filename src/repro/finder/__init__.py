"""The tangled-logic finder (Chapters III-IV of the paper).

Three phases per random seed, seeds independent:

* **Phase I** (:mod:`repro.finder.ordering`) — grow a linear ordering from a
  seed by repeatedly absorbing the most strongly connected outside cell.
* **Phase II** (:mod:`repro.finder.candidate`) — score every ordering prefix
  with a GTL metric and extract the prefix at the clear minimum.
* **Phase III** (:mod:`repro.finder.refine` / :mod:`repro.finder.prune`) —
  genetic refinement around each candidate, then greedy disjoint pruning.

:func:`find_tangled_logic` runs the whole pipeline.
"""

from repro.finder.config import FinderConfig
from repro.finder.result import GTL, FinderReport
from repro.finder.kernel import ArrayOrderingGrower
from repro.finder.ordering import LinearOrderingGrower, grow_linear_ordering, make_grower
from repro.finder.candidate import CandidateGTL, extract_candidate
from repro.finder.refine import refine_candidate
from repro.finder.prune import prune_overlapping
from repro.finder.finder import TangledLogicFinder, find_tangled_logic
from repro.finder.hierarchy import GTLNode, find_hierarchical_gtls
from repro.finder.seeding import draw_seeds

__all__ = [
    "FinderConfig",
    "GTL",
    "FinderReport",
    "ArrayOrderingGrower",
    "LinearOrderingGrower",
    "grow_linear_ordering",
    "make_grower",
    "CandidateGTL",
    "extract_candidate",
    "refine_candidate",
    "prune_overlapping",
    "TangledLogicFinder",
    "find_tangled_logic",
    "GTLNode",
    "find_hierarchical_gtls",
    "draw_seeds",
]
