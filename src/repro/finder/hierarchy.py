"""Hierarchical GTL detection — structures within structures.

Chapter I: "When searching for GTLs one might find structures within
structures, especially as the logic is repeated.  We must be able to
distinguish between them...  Our metrics and algorithm are able to decide
whether we should choose several smaller GTLs or a much larger GTL which
encompasses all the smaller ones."

The flat finder makes that decision once, via pruning.  This module makes
the nesting explicit: after the flat pass, each found GTL's *induced*
sub-netlist is searched again, recursively, yielding a tree of nested
structures each scored in its own context.  Nested children are reported
only when their score inside the parent beats the parent's own score —
i.e. the sub-structure is even more tangled than the structure containing
it (a repeated sub-block of a large dissolved ROM, for instance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.finder.config import FinderConfig
from repro.finder.finder import TangledLogicFinder
from repro.finder.result import GTL
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import induced_netlist


@dataclass
class GTLNode:
    """One node of the nested-GTL tree.

    Attributes:
        gtl: the structure, with cell indices in the *root* netlist.
        depth: 0 for top-level structures.
        children: nested sub-structures (possibly empty).
    """

    gtl: GTL
    depth: int
    children: List["GTLNode"] = field(default_factory=list)

    def walk(self):
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def summary(self, indent: str = "") -> str:
        """Indented tree rendering."""
        line = (
            f"{indent}size={self.gtl.size} cut={self.gtl.cut} "
            f"score={self.gtl.score:.4f}"
        )
        parts = [line]
        for child in self.children:
            parts.append(child.summary(indent + "  "))
        return "\n".join(parts)


def find_hierarchical_gtls(
    netlist: Netlist,
    config: Optional[FinderConfig] = None,
    max_depth: int = 2,
    min_child_fraction: float = 0.05,
) -> List[GTLNode]:
    """Find GTLs, then recursively search inside each one.

    Args:
        netlist: the design.
        config: finder configuration (reused at every level; seed counts
            shrink with the sub-problem size).
        max_depth: recursion limit (0 = flat).
        min_child_fraction: a child must hold at least this fraction of its
            parent's cells (tiny fragments are noise).

    Returns the top-level :class:`GTLNode` forest.
    """
    base = config or FinderConfig()
    report = TangledLogicFinder(netlist, base).run()
    forest = [GTLNode(gtl=gtl, depth=0) for gtl in report.gtls]
    for node in forest:
        _descend(netlist, node, base, max_depth, min_child_fraction)
    return forest


def _descend(
    root_netlist: Netlist,
    node: GTLNode,
    config: FinderConfig,
    max_depth: int,
    min_child_fraction: float,
) -> None:
    if node.depth >= max_depth:
        return
    cells = sorted(node.gtl.cells)
    min_size = max(config.min_gtl_size, int(min_child_fraction * len(cells)))
    if len(cells) < 2 * min_size:
        return

    sub_netlist, mapping = induced_netlist(root_netlist, cells)
    reverse = {new: old for old, new in mapping.items()}
    sub_seeds = max(8, config.num_seeds // 4)
    sub_config = config.with_overrides(
        num_seeds=min(sub_seeds, max(2, sub_netlist.num_cells - 1)),
        max_order_length=max(min_size + 1, sub_netlist.num_cells // 2),
        min_gtl_size=min_size,
        workers=1,
    )
    sub_report = TangledLogicFinder(sub_netlist, sub_config).run()

    for sub_gtl in sub_report.gtls:
        if sub_gtl.size >= len(cells):
            continue  # the whole parent again
        if sub_gtl.score >= node.gtl.score:
            continue  # not more tangled than its parent
        lifted = GTL(
            cells=frozenset(reverse[c] for c in sub_gtl.cells),
            size=sub_gtl.size,
            cut=sub_gtl.cut,
            ngtl_score=sub_gtl.ngtl_score,
            gtl_sd_score=sub_gtl.gtl_sd_score,
            score=sub_gtl.score,
            seed=reverse.get(sub_gtl.seed, sub_gtl.seed),
            rent_exponent=sub_gtl.rent_exponent,
        )
        child = GTLNode(gtl=lifted, depth=node.depth + 1)
        node.children.append(child)
        _descend(root_netlist, child, config, max_depth, min_child_fraction)
