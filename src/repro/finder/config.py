"""Configuration of the tangled-logic finder."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FinderError
from repro.metrics.gtl_score import ScoreContext
from repro.utils.configs import replace_checked

#: Netlist-level Rent exponent assumed when no ordering yields a usable
#: estimate (0.6 is a typical logic Rent exponent).  Reports produced with
#: this fallback carry ``rent_fallback=True``.
DEFAULT_RENT_EXPONENT = 0.6


@dataclass(frozen=True)
class FinderConfig:
    """All knobs of :class:`repro.finder.finder.TangledLogicFinder`.

    Attributes:
        num_seeds: ``m``, number of independent random seed runs (the paper
            uses 100 for every experiment).
        max_order_length: ``Z``, maximum linear-ordering length.  ``0``
            selects ``min(100_000, max(64, |V| // 4))`` at run time (the
            paper caps Z at 100K cells).
        metric: prefix-scoring metric — ``"ngtl_s"`` or ``"gtl_sd"``
            (``"gtl_s"`` also accepted); the paper uses either in Phase II
            and reports both.
        min_gtl_size: smallest prefix admitted as a candidate.  The paper
            targets structures of hundreds to thousands of cells and
            explicitly ignores tiny clusters.
        clear_min_threshold: a prefix minimum qualifies as a *clear* minimum
            only if its score is below this value (average-quality groups
            score ~1, strong GTLs < 0.1).
        boundary_fraction: the minimum must occur before this fraction of
            the ordering, otherwise the curve is still descending at the
            right end (ratio-cut-like behaviour) and no GTL is declared.
        lambda_skip: during incremental weight updates, nets with at least
            this many outside pins are skipped (the paper's ``>= 20``
            constant-factor optimization).  ``0`` disables skipping.
        refine_count: number of interior re-seeds per candidate in Phase III
            (the paper uses 3).
        refine_length_factor: orderings grown during refinement are capped
            at ``factor * |B_i|`` (and never above ``max_order_length``);
            2.0 comfortably brackets the candidate's minimum.
        exclude_fixed: do not let fixed cells (IO pads) seed or join
            orderings; GTLs are logic structures.
        rent_min_prefix: smallest prefix size used by the Rent-exponent
            estimator.
        workers: process-parallel seed runs (1 = serial; the paper uses 8
            pthreads).
        seed_strategy: how seed cells are drawn — ``"uniform"`` (the
            paper), ``"pin_density"``, ``"clustering"`` or ``"stratified"``
            (see :mod:`repro.finder.seeding`).
        seed: RNG seed for reproducible runs (``None`` = nondeterministic).
    """

    num_seeds: int = 32
    max_order_length: int = 0
    metric: str = "gtl_sd"
    min_gtl_size: int = 30
    clear_min_threshold: float = 0.5
    boundary_fraction: float = 0.95
    lambda_skip: int = 20
    refine_count: int = 3
    refine_length_factor: float = 2.0
    exclude_fixed: bool = True
    rent_min_prefix: int = 8
    workers: int = 1
    seed_strategy: str = "uniform"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_seeds < 1:
            raise FinderError("num_seeds must be >= 1")
        if self.max_order_length < 0:
            raise FinderError("max_order_length must be >= 0 (0 = auto)")
        if self.metric not in ScoreContext.VALID_METRICS:
            raise FinderError(
                f"unknown metric {self.metric!r}; "
                f"expected one of {ScoreContext.VALID_METRICS}"
            )
        if self.min_gtl_size < 2:
            raise FinderError("min_gtl_size must be >= 2")
        if not 0 < self.boundary_fraction <= 1:
            raise FinderError("boundary_fraction must be in (0, 1]")
        if self.clear_min_threshold <= 0:
            raise FinderError("clear_min_threshold must be positive")
        if self.lambda_skip < 0:
            raise FinderError("lambda_skip must be >= 0")
        if self.refine_count < 0:
            raise FinderError("refine_count must be >= 0")
        if self.refine_length_factor < 1.0:
            raise FinderError("refine_length_factor must be >= 1")
        if self.workers < 1:
            raise FinderError("workers must be >= 1")
        from repro.finder.seeding import STRATEGIES

        if self.seed_strategy not in STRATEGIES:
            raise FinderError(
                f"unknown seed_strategy {self.seed_strategy!r}; expected one "
                f"of {sorted(STRATEGIES)}"
            )

    def resolve_order_length(self, num_cells: int) -> int:
        """Effective ``Z`` for a netlist with ``num_cells`` cells."""
        if self.max_order_length:
            return min(self.max_order_length, max(num_cells - 1, 1))
        return min(100_000, max(64, num_cells // 4))

    def with_overrides(self, **kwargs) -> "FinderConfig":
        """Copy of this config with some fields replaced.

        Unknown keys raise :class:`~repro.errors.FinderError` listing the
        valid field names (instead of a bare ``dataclasses.replace``
        ``TypeError``).
        """
        return replace_checked(self, FinderError, **kwargs)
