"""Flat-array Phase I kernel: linear-ordering growth on the CSR netlist view.

:class:`ArrayOrderingGrower` is the drop-in counterpart of the scalar
reference :class:`~repro.finder.ordering.LinearOrderingGrower`.  Instead of
per-neighbor dicts it works on flat state indexed by cell id, laid out once
per netlist from the CSR :class:`~repro.netlist.arrays.NetlistArrays` view:

* ``weight`` / ``cutstate`` — connection weight and folded cut-delta
  counters per cell (``cutstate`` is the sum of the reference's ``touched``
  and ``absorbable`` counters; only their sum enters the cut delta);
* ``degree2`` — per cell, the number of incident nets with >= 2 pins (the
  constant term of the cut delta, precomputed in :class:`KernelTables` so a
  heap push is O(1) instead of the reference's O(cell degree) recount);
* an *update CSR* — ``net_ptr``/``net_cells`` with fixed pins pre-dropped
  when ``exclude_fixed`` is set, so the absorb loop never re-tests pins.

Heap bookkeeping is value-validated: an entry ``(-weight, cut_delta,
counter, cell)`` is live iff the cell is still outside the group and its
recorded weight equals the current state.  Connection weights strictly
increase with every update, so the live entry per cell is always its most
recent push — exactly the tie-breaking the reference's lazy heap implements
with a shadow dict, without paying for the dict.  Updates are applied pin
by pin in CSR slice order, the reference's exact float accumulation order,
so orderings, weights and cut deltas are all bit-identical.

The per-cell state lives in flat Python lists rather than numpy arrays: one
absorb touches only a handful of pins, and list indexing beats numpy scalar
indexing several times over at that grain.  The vectorized numpy kernels
take over where whole curves or groups are processed at once
(:func:`~repro.netlist.ops.scan_ordering_curves`,
:func:`~repro.netlist.ops.group_stats`, CSR BFS connectivity), and the
static tables here are themselves built by vectorized passes over the CSR
arrays.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional

import numpy as np

from repro.errors import FinderError
from repro.netlist.hypergraph import Netlist

#: Key of the shared static tables inside ``netlist.derived_cache``.
_TABLES_KEY = "finder_kernel_tables"


class KernelTables:
    """Immutable per-netlist lookup tables shared by all growers.

    Built once per netlist (cached on its derived-object cache) with
    vectorized passes over the CSR view, then kept as flat Python lists for
    cheap scalar indexing in the absorb loop.
    """

    def __init__(self, netlist: Netlist) -> None:
        arrays = netlist.arrays
        self.arrays = arrays
        self.num_cells = arrays.num_cells
        multi = (arrays.net_degrees[arrays.cell_nets] > 1).astype(np.int64)
        running = np.zeros(len(multi) + 1, dtype=np.int64)
        np.cumsum(multi, out=running[1:])
        degree2 = running[arrays.cell_ptr[1:]] - running[arrays.cell_ptr[:-1]]
        self.degree2: List[int] = degree2.tolist()
        self.net_degrees: List[int] = arrays.net_degrees.tolist()
        self.cell_ptr: List[int] = arrays.cell_ptr.tolist()
        self.cell_nets: List[int] = arrays.cell_nets.tolist()
        # Update CSRs keyed by exclude_fixed: the absorb loop never updates
        # fixed pins, so pre-dropping them removes the per-pin check.  Net
        # *degrees* for the weight formula always use the full CSR.
        self._update_csr = {}

    def update_csr(self, exclude_fixed: bool):
        """``(ptr_list, flat_list)`` of the pin-update CSR."""
        entry = self._update_csr.get(exclude_fixed)
        if entry is None:
            arrays = self.arrays
            if exclude_fixed and arrays.fixed_mask.any():
                keep = ~arrays.fixed_mask[arrays.net_cells]
                flat = arrays.net_cells[keep]
                running = np.zeros(len(keep) + 1, dtype=np.int64)
                np.cumsum(keep, out=running[1:])
                ptr = running[arrays.net_ptr]
            else:
                flat = arrays.net_cells
                ptr = arrays.net_ptr
            entry = (ptr.tolist(), flat.tolist())
            self._update_csr[exclude_fixed] = entry
        return entry

    @classmethod
    def for_netlist(cls, netlist: Netlist) -> "KernelTables":
        """The netlist's cached tables (built on first use)."""
        tables = netlist.derived_cache.get(_TABLES_KEY)
        if tables is None:
            tables = cls(netlist)
            netlist.derived_cache[_TABLES_KEY] = tables
        return tables


class ArrayOrderingGrower:
    """Flat-CSR implementation of Phase I; API-compatible with
    :class:`~repro.finder.ordering.LinearOrderingGrower` and bit-identical
    to it in every observable (ordering, weights, cut deltas)."""

    def __init__(
        self,
        netlist: Netlist,
        seed: int,
        lambda_skip: int = 20,
        exclude_fixed: bool = True,
    ) -> None:
        if not 0 <= seed < netlist.num_cells:
            raise FinderError(f"seed cell {seed} out of range")
        if exclude_fixed and netlist.cell_is_fixed(seed):
            raise FinderError(f"seed cell {seed} is fixed and exclude_fixed is set")
        tables = KernelTables.for_netlist(netlist)
        self._tables = tables
        self._lambda_skip = lambda_skip
        self._update_ptr, self._update_flat = tables.update_csr(exclude_fixed)
        # Heap entries are (-weight, cut_delta, counter << bits | cell):
        # packing the insertion counter and the cell id into one int keeps
        # entries at three slots and comparisons cheap; counter order is
        # preserved because the cell id occupies the low bits.
        self._cell_bits = max(1, (tables.num_cells - 1).bit_length())
        self._cell_mask = (1 << self._cell_bits) - 1
        # Private flat state; a fresh zero list is memset-cheap even for
        # 100K-cell designs, so growers never share mutable scratch.
        self._weight: List[float] = [0.0] * tables.num_cells
        self._cutstate: List[int] = [0] * tables.num_cells
        self._inside_count = {}  # net -> pins inside the group
        self._in_group = set()
        self._frontier_count = 0
        self._heap: List[tuple] = []
        self._counter = 0
        self._compactions = 0
        self._ordering: List[int] = []
        self._absorb(seed)

    # ------------------------------------------------------------------
    @property
    def ordering(self) -> List[int]:
        """Cells in the order they were absorbed (seed first)."""
        return list(self._ordering)

    @property
    def frontier_size(self) -> int:
        """Number of candidate cells currently adjacent to the group."""
        return self._frontier_count

    def connection_weight(self, cell: int) -> float:
        """Current connection weight of frontier cell ``cell`` (0 if absent)."""
        if cell in self._in_group:
            return 0.0
        return self._weight[cell]

    def cut_delta(self, cell: int) -> int:
        """Net-cut change if frontier cell ``cell`` were absorbed now."""
        state = 0 if cell in self._in_group else self._cutstate[cell]
        return self._tables.degree2[cell] - state

    # ------------------------------------------------------------------
    def step(self) -> Optional[int]:
        """Absorb the best frontier cell; return it, or ``None`` if stuck."""
        heap = self._heap
        weight = self._weight
        in_group = self._in_group
        mask = self._cell_mask
        while heap:
            neg_weight, _, packed = heappop(heap)
            cell = packed & mask
            # Live iff still outside the group and the recorded weight is
            # current (weights strictly increase, so stale entries always
            # record a smaller weight).
            if cell in in_group or -neg_weight != weight[cell]:
                continue
            self._absorb(cell)
            return cell
        return None

    def grow(self, max_length: int) -> List[int]:
        """Grow until ``max_length`` cells or the frontier empties."""
        heap = self._heap
        weight = self._weight
        in_group = self._in_group
        ordering = self._ordering
        absorb = self._absorb
        compact = self._compact
        mask = self._cell_mask
        while len(ordering) < max_length and heap:
            neg_weight, _, packed = heappop(heap)
            cell = packed & mask
            if cell in in_group or -neg_weight != weight[cell]:
                continue
            absorb(cell)
            if len(heap) > 8192 and len(heap) > 4 * self._frontier_count:
                compact()
        return self.ordering

    def _compact(self) -> None:
        """Drop stale heap entries, keeping exactly the live ones.

        A cell's live entry is the unique one recording its current weight
        (weights strictly increase), so filtering by value keeps one entry
        per frontier cell with its original counter — pop order, including
        insertion-order tie-breaking, is unchanged.  Without compaction the
        heap accumulates every superseded push and each push/pop sifts
        through the garbage; the scalar reference pays exactly that cost.
        """
        weight = self._weight
        in_group = self._in_group
        mask = self._cell_mask
        live = [
            entry
            for entry in self._heap
            if (cell := entry[2] & mask) not in in_group
            and -entry[0] == weight[cell]
        ]
        heapify(live)
        self._heap[:] = live  # in place: callers hold references to the list
        self._compactions += 1

    def telemetry(self) -> Dict[str, int]:
        """Work counters of this grower (same keys as the scalar grower).

        The heap counter advances by ``1 << _cell_bits`` per push, so the
        lifetime push count falls out of a shift — no hot-loop cost.
        """
        return {
            "heap_pushes": self._counter >> self._cell_bits,
            "heap_compactions": self._compactions,
        }

    # ------------------------------------------------------------------
    def _absorb(self, cell: int) -> None:
        tables = self._tables
        in_group = self._in_group
        weight = self._weight
        in_group.add(cell)
        if weight[cell] != 0.0:
            self._frontier_count -= 1
        self._ordering.append(cell)

        inside_count = self._inside_count
        net_degrees = tables.net_degrees
        cutstate = self._cutstate
        degree2 = tables.degree2
        update_ptr = self._update_ptr
        update_flat = self._update_flat
        heap = self._heap
        # The counter lives pre-shifted: bumping by ``counter_step`` leaves
        # the low bits free for the cell id, so a push is one add + one or.
        counter_step = 1 << self._cell_bits
        counter = self._counter
        frontier_count = self._frontier_count
        lambda_skip = self._lambda_skip

        cell_ptr = tables.cell_ptr
        for net in tables.cell_nets[cell_ptr[cell] : cell_ptr[cell + 1]]:
            old_inside = inside_count.get(net, 0)
            new_inside = old_inside + 1
            inside_count[net] = new_inside
            degree = net_degrees[net]
            outside = degree - new_inside
            if outside == 0:
                continue  # net fully absorbed; no outside pins to update

            first_touch = old_inside == 0
            if not first_touch and lambda_skip and outside >= lambda_skip:
                # Paper's optimization: weight change 1/(lambda+1) - 1/(lambda+2)
                # is negligible for large lambda; skip the O(|e|) update.
                continue

            span = update_flat[update_ptr[net] : update_ptr[net + 1]]
            # Per-pin updates in CSR slice order — the reference's exact
            # accumulation and push order (stale lower-weight entries are
            # discarded by value validation at pop time).
            if first_touch:
                delta = 1.0 / (outside + 1)
                cut_increment = 2 if outside == 1 else 1
                for other in span:
                    if other in in_group:
                        continue
                    old_weight = weight[other]
                    if old_weight == 0.0:
                        frontier_count += 1
                    new_weight = old_weight + delta
                    weight[other] = new_weight
                    state = cutstate[other] + cut_increment
                    cutstate[other] = state
                    counter += counter_step
                    heappush(
                        heap, (-new_weight, degree2[other] - state, counter | other)
                    )
            else:
                # Re-touched net: every outside pin was updated at first
                # touch (in-group membership never reverts), so it already
                # carries a positive weight — no frontier accounting here.
                delta = 1.0 / (outside + 1) - 1.0 / (degree - old_inside + 1)
                if outside == 1:
                    for other in span:
                        if other in in_group:
                            continue
                        new_weight = weight[other] + delta
                        weight[other] = new_weight
                        state = cutstate[other] + 1
                        cutstate[other] = state
                        counter += counter_step
                        heappush(
                            heap,
                            (-new_weight, degree2[other] - state, counter | other),
                        )
                else:
                    for other in span:
                        if other in in_group:
                            continue
                        new_weight = weight[other] + delta
                        weight[other] = new_weight
                        counter += counter_step
                        heappush(
                            heap,
                            (
                                -new_weight,
                                degree2[other] - cutstate[other],
                                counter | other,
                            ),
                        )
        self._counter = counter
        self._frontier_count = frontier_count


__all__ = ["ArrayOrderingGrower", "KernelTables"]
