"""Phase III (first half) — GTL refinement (Section 3.2.3 / III.1-III.13).

A candidate grown from a random seed can be slightly off (e.g. the seed sat
on the boundary of the true structure).  For each initial candidate ``B_i``
we re-grow ``refine_count`` orderings from random cells *inside* ``B_i``,
collect the resulting candidates, and build a genetic family from all pairs:
unions, intersections and both set differences.  The family member with the
best (lowest) score becomes the refined candidate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.finder.candidate import CandidateGTL, extract_candidate
from repro.finder.config import FinderConfig
from repro.finder.ordering import grow_linear_ordering
from repro.metrics.gtl_score import ScoreContext
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import group_connected, group_stats
from repro.utils.rng import RngLike, ensure_rng


def score_group(
    netlist: Netlist,
    cells: Iterable[int],
    context: ScoreContext,
    backend: Optional[str] = None,
) -> Optional[float]:
    """Score an arbitrary cell set; ``None`` for empty sets.

    Group statistics are integers in both backends, so the score is
    bit-identical regardless of ``backend``.
    """
    members = cells if isinstance(cells, (set, frozenset)) else set(cells)
    if not members:
        return None
    return context.score(group_stats(netlist, members, backend=backend))


def is_connected_group(
    netlist: Netlist, cells: Iterable[int], backend: Optional[str] = None
) -> bool:
    """True when ``cells`` induce one connected hypergraph component.

    A GTL is a single logic structure; set operations in the genetic family
    can glue together unrelated tangled blocks (whose union may score even
    better under the density-aware metric) or tear a candidate apart, so
    disconnected family members are rejected.  Delegates to
    :func:`repro.netlist.ops.group_connected` (CSR frontier BFS on the
    array backend).
    """
    return group_connected(netlist, cells, backend=backend)


def genetic_family(sets: List[frozenset]) -> List[frozenset]:
    """All unions / intersections / differences of the pairs in ``sets``.

    Mirrors steps III.4-III.12: the family contains the originals plus, for
    every unordered pair (Zi, Zj): their union, intersection and the two
    differences.  Empty and duplicate members are dropped.
    """
    family: List[frozenset] = []
    seen: Set[frozenset] = set()

    def admit(member: frozenset) -> None:
        if member and member not in seen:
            seen.add(member)
            family.append(member)

    for member in sets:
        admit(frozenset(member))
    for i, zi in enumerate(sets):
        for zj in sets[i + 1 :]:
            intersection = zi & zj
            admit(zi | zj)
            admit(intersection)
            admit(zi - intersection)
            admit(zj - intersection)
    return family


def refine_candidate(
    netlist: Netlist,
    candidate: CandidateGTL,
    config: FinderConfig,
    rent_exponent: float,
    rng: RngLike = None,
    backend: Optional[str] = None,
    touched: Optional[Set[int]] = None,
) -> CandidateGTL:
    """Refine one candidate; returns the best family member as a candidate.

    Args:
        netlist: host netlist.
        candidate: the Phase II candidate ``B_i``.
        config: finder configuration.
        rent_exponent: netlist-level Rent exponent used to score the whole
            family consistently (candidates from different orderings carry
            slightly different local estimates).
        rng: randomness for the interior re-seeds.
        backend: array kernel or scalar reference for the re-grown
            orderings, family scoring and connectivity checks.
        touched: when given, every cell absorbed by a re-grown ordering is
            added to this set — the caller's footprint accounting (family
            members are subsets of the orderings, so the orderings alone
            bound the refinement's read-set).
    """
    generator = ensure_rng(rng)
    context = ScoreContext.for_netlist(netlist, rent_exponent, metric=config.metric)

    members = sorted(candidate.cells)
    reseed_count = min(config.refine_count, len(members))
    reseeds = generator.sample(members, reseed_count) if reseed_count else []

    max_length = min(
        config.resolve_order_length(netlist.num_cells),
        max(
            int(config.refine_length_factor * candidate.size),
            config.min_gtl_size + 1,
        ),
    )

    sets: List[frozenset] = [candidate.cells]
    for reseed in reseeds:
        ordering = grow_linear_ordering(
            netlist,
            reseed,
            max_length,
            lambda_skip=config.lambda_skip,
            exclude_fixed=config.exclude_fixed,
            backend=backend,
        )
        if touched is not None:
            touched.update(ordering)
        regrown = extract_candidate(
            netlist,
            ordering,
            config,
            seed=reseed,
            rent_exponent=rent_exponent,
            backend=backend,
        )
        if regrown is not None:
            sets.append(regrown.cells)

    best_cells = candidate.cells
    best_score = score_group(netlist, candidate.cells, context, backend=backend)
    for member in genetic_family(sets):
        if len(member) < config.min_gtl_size:
            continue
        score = score_group(netlist, member, context, backend=backend)
        if score is None or (best_score is not None and score >= best_score):
            continue
        if member != candidate.cells and not is_connected_group(
            netlist, member, backend=backend
        ):
            continue
        best_score = score
        best_cells = member

    stats = group_stats(netlist, best_cells, backend=backend)
    return CandidateGTL(
        cells=frozenset(best_cells),
        score=float(best_score),
        stats=stats,
        rent_exponent=rent_exponent,
        seed=candidate.seed,
    )
