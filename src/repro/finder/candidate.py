"""Phase II — initial candidate GTL generation (Section 3.2.2 / II.1-II.4).

Every prefix ``C_k`` of a linear ordering is scored with a GTL metric; the
prefix at the *clear minimum* of the score-versus-k curve becomes the
candidate.  The Rent exponent used by the scores is estimated from the same
ordering by averaging the per-prefix estimate
``(ln T(C) - ln A_C) / ln |C|`` (the paper's estimator).

A minimum qualifies as *clear* when (i) the prefix is at least
``min_gtl_size`` cells, (ii) its score is below ``clear_min_threshold``
(average groups score ~1) and (iii) it occurs before ``boundary_fraction``
of the ordering — a minimum at the right end means the curve was still
descending, which is the ratio-cut failure mode, not a GTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FinderError
from repro.finder.config import FinderConfig
from repro.metrics.gtl_score import ScoreContext
from repro.metrics.rent import (
    estimate_rent_exponent_from_curves,
    estimate_rent_exponent_from_prefixes,
)
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import GroupStats, PrefixScanner, scan_ordering_curves


@dataclass(frozen=True)
class CandidateGTL:
    """A candidate produced by Phase II.

    Attributes:
        cells: the member cells (frozen).
        score: value of the configured metric at the minimum.
        stats: group statistics at the minimum.
        rent_exponent: the ordering-local Rent exponent used for scoring.
        seed: the seed cell the ordering was grown from.
    """

    cells: frozenset
    score: float
    stats: GroupStats
    rent_exponent: float
    seed: int

    @property
    def size(self) -> int:
        """|C| of the candidate."""
        return len(self.cells)


def ordering_curves_and_rent(
    netlist: Netlist,
    ordering: Sequence[int],
    min_size: int,
    rent_exponent: Optional[float] = None,
    fallback: float = 0.6,
):
    """Array-backend prefix curves plus the ordering's Rent estimate.

    The shared entry of every numpy-backend Phase II path (curve scoring,
    candidate extraction, the finder's candidate-less rent recovery):
    estimating from the same curves in one place keeps the backends'
    parity contract in one spot.  ``rent_exponent`` skips the estimate
    when the caller already fixed one.
    """
    curves = scan_ordering_curves(netlist, ordering)
    if rent_exponent is None:
        rent_exponent = estimate_rent_exponent_from_curves(
            curves, min_size=min_size, fallback=fallback
        )
    return curves, rent_exponent


def scan_ordering(
    netlist: Netlist, ordering: Sequence[int], backend: Optional[str] = None
) -> List[GroupStats]:
    """Per-prefix :class:`GroupStats` for ``ordering`` (linear total work)."""
    if resolve_backend(backend) == "numpy":
        return scan_ordering_curves(netlist, ordering).stats_list()
    scanner = PrefixScanner(netlist)
    stats: List[GroupStats] = []
    for cell in ordering:
        scanner.add(cell)
        stats.append(scanner.stats())
    return stats


def score_curve(
    netlist: Netlist,
    ordering: Sequence[int],
    metric: str,
    rent_exponent: Optional[float] = None,
    rent_min_prefix: int = 8,
    backend: Optional[str] = None,
) -> Tuple[List[float], float]:
    """Score every prefix of ``ordering``.

    Returns ``(scores, rent_exponent)`` where the exponent is estimated from
    the ordering itself when not supplied.
    """
    if resolve_backend(backend) == "numpy":
        curves, rent_exponent = ordering_curves_and_rent(
            netlist, ordering, rent_min_prefix, rent_exponent
        )
        context = ScoreContext.for_netlist(netlist, rent_exponent, metric=metric)
        return context.score_curves(curves).tolist(), rent_exponent
    prefix_stats = scan_ordering(netlist, ordering, backend="python")
    if rent_exponent is None:
        rent_exponent = estimate_rent_exponent_from_prefixes(
            prefix_stats, min_size=rent_min_prefix
        )
    context = ScoreContext.for_netlist(netlist, rent_exponent, metric=metric)
    return context.score_all(prefix_stats), rent_exponent


def extract_candidate(
    netlist: Netlist,
    ordering: Sequence[int],
    config: FinderConfig,
    seed: Optional[int] = None,
    rent_exponent: Optional[float] = None,
    backend: Optional[str] = None,
) -> Optional[CandidateGTL]:
    """Run Phase II on one ordering; ``None`` when no clear minimum exists.

    Args:
        netlist: host netlist.
        ordering: Phase I linear ordering (seed first).
        config: finder configuration (metric, thresholds).
        seed: seed cell recorded on the candidate (defaults to
            ``ordering[0]``).
        rent_exponent: force a Rent exponent instead of estimating it from
            the ordering (used by Phase III so a candidate family is scored
            consistently).
        backend: array kernel or scalar reference (both select the same
            prefix; scores agree to float64 rounding).
    """
    if not ordering:
        raise FinderError("extract_candidate on an empty ordering")
    if seed is None:
        seed = ordering[0]
    if len(ordering) < config.min_gtl_size:
        return None

    if resolve_backend(backend) == "numpy":
        curves, rent_exponent = ordering_curves_and_rent(
            netlist, ordering, config.rent_min_prefix, rent_exponent
        )
        context = ScoreContext.for_netlist(
            netlist, rent_exponent, metric=config.metric
        )
        scores = context.score_curves(curves)
        lower = config.min_gtl_size - 1
        # np.argmin takes the first occurrence of the minimum — the same
        # prefix the scalar strict-< scan selects.
        best_index = lower + int(np.argmin(scores[lower:]))
        best_score = float(scores[best_index])
        stats_at_best = curves.stats_at(best_index)
    else:
        prefix_stats = scan_ordering(netlist, ordering, backend="python")
        if rent_exponent is None:
            rent_exponent = estimate_rent_exponent_from_prefixes(
                prefix_stats, min_size=config.rent_min_prefix
            )
        context = ScoreContext.for_netlist(
            netlist, rent_exponent, metric=config.metric
        )
        best_index = -1
        best_score = float("inf")
        for index in range(config.min_gtl_size - 1, len(ordering)):
            score = context.score(prefix_stats[index])
            if score < best_score:
                best_score = score
                best_index = index
        if best_index < 0:
            return None
        stats_at_best = prefix_stats[best_index]

    if best_score >= config.clear_min_threshold:
        return None  # no clear minimum: curve never dips below threshold
    boundary = int(config.boundary_fraction * len(ordering))
    if best_index + 1 > boundary:
        return None  # minimum at the right end: still descending

    return CandidateGTL(
        cells=frozenset(ordering[: best_index + 1]),
        score=best_score,
        stats=stats_at_best,
        rent_exponent=rent_exponent,
        seed=seed,
    )
