"""Seed-selection strategies for the finder.

The paper draws seeds uniformly at random and compensates with many seeds
("if the number of searches is large enough, most of the GTLs can be
captured").  Uniform seeding needs O(|V| / |smallest GTL|) seeds to hit
every structure; biasing the draw toward cells that *look* tangled —
pin-dense cells, or cells whose neighborhoods are dense — finds the same
structures with fewer seeds.  These strategies are drop-in replacements
evaluated by ``bench_ablation_seeding``.

Strategies:

* ``uniform`` — the paper's choice.
* ``pin_density`` — probability proportional to ``pin_count^2`` (complex
  gates live in tangled logic; the density-aware metric's own premise).
* ``clustering`` — probability proportional to the cell's local clustering
  surrogate: the number of nets shared with neighbors beyond a tree-like
  baseline.
* ``stratified`` — the cell id space is split into equal strata with one
  uniform seed per stratum; guarantees coverage spread without bias
  (useful when GTL sizes are unknown and generators lay out structures in
  contiguous id ranges).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.errors import FinderError
from repro.netlist.hypergraph import Netlist
from repro.utils.rng import RngLike, ensure_rng

SeedStrategy = Callable[[Netlist, Sequence[int], int, RngLike], List[int]]


def uniform_seeds(
    netlist: Netlist, eligible: Sequence[int], count: int, rng: RngLike = None
) -> List[int]:
    """The paper's strategy: uniform without replacement (when possible)."""
    generator = ensure_rng(rng)
    eligible = list(eligible)
    if count <= len(eligible):
        return generator.sample(eligible, count)
    return [generator.choice(eligible) for _ in range(count)]


def pin_density_seeds(
    netlist: Netlist, eligible: Sequence[int], count: int, rng: RngLike = None
) -> List[int]:
    """Weighted draw: P(cell) proportional to pin_count squared."""
    generator = ensure_rng(rng)
    eligible = list(eligible)
    weights = [float(netlist.cell_pin_count(c)) ** 2 for c in eligible]
    if not any(weights):
        return uniform_seeds(netlist, eligible, count, generator)
    return generator.choices(eligible, weights=weights, k=count)


def clustering_seeds(
    netlist: Netlist, eligible: Sequence[int], count: int, rng: RngLike = None
) -> List[int]:
    """Weighted draw toward locally dense neighborhoods.

    Surrogate for clustering coefficient on hypergraphs: the number of
    (cell, net) incidences among the cell's neighbors, divided by the
    neighbor count — tree-like logic scores ~1, meshes score higher.
    """
    generator = ensure_rng(rng)
    eligible = list(eligible)
    weights: List[float] = []
    for cell in eligible:
        neighbors = netlist.neighbors(cell)
        if not neighbors:
            weights.append(0.0)
            continue
        incidences = sum(netlist.cell_degree(n) for n in neighbors)
        weights.append(max(0.0, incidences / len(neighbors) - 1.0))
    if not any(weights):
        return uniform_seeds(netlist, eligible, count, generator)
    return generator.choices(eligible, weights=weights, k=count)


def stratified_seeds(
    netlist: Netlist, eligible: Sequence[int], count: int, rng: RngLike = None
) -> List[int]:
    """One uniform seed per contiguous stratum of the eligible list."""
    generator = ensure_rng(rng)
    eligible = sorted(eligible)
    if count >= len(eligible):
        return uniform_seeds(netlist, eligible, count, generator)
    seeds: List[int] = []
    stride = len(eligible) / count
    for index in range(count):
        low = int(index * stride)
        high = max(low + 1, int((index + 1) * stride))
        seeds.append(eligible[generator.randrange(low, min(high, len(eligible)))])
    return seeds


STRATEGIES: Dict[str, SeedStrategy] = {
    "uniform": uniform_seeds,
    "pin_density": pin_density_seeds,
    "clustering": clustering_seeds,
    "stratified": stratified_seeds,
}


def draw_seeds(
    netlist: Netlist,
    eligible: Sequence[int],
    count: int,
    strategy: str = "uniform",
    rng: RngLike = None,
) -> List[int]:
    """Draw ``count`` seed cells with the named strategy."""
    if strategy not in STRATEGIES:
        raise FinderError(
            f"unknown seed strategy {strategy!r}; expected one of "
            f"{sorted(STRATEGIES)}"
        )
    if not eligible:
        raise FinderError("no eligible seed cells")
    if count < 1:
        raise FinderError("count must be >= 1")
    return STRATEGIES[strategy](netlist, eligible, count, rng)
