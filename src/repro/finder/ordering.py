"""Phase I — linear ordering generation (Section 3.2.1 / Algorithm I.1-I.11).

Starting from a seed cell, the group grows one cell at a time.  Candidates
are the outside cells with a direct net connection to the group; the one
with the largest *connection weight*

    w(v) = sum over nets e with v in e and e touching the group of
           1 / (|e| - |e intersect S| + 1)

is added next (a net counts more when most of its pins are already inside).
Ties are broken by favoring the candidate whose addition increases the net
cut least ("min cut" secondary criterion).  The paper argues weight-first
selection pulls true-GTL cells into the group before outside cells.

Implementation notes
--------------------
* A :class:`~repro.utils.lazyheap.LazyMaxHeap` holds the frontier keyed by
  ``(weight, -cut_delta)``; each addition updates only the neighbors reached
  through the added cell's nets, giving the paper's ``O(Z log |V|)`` bound.
* Following the paper's constant-factor optimization, incremental weight
  updates skip nets that still have at least ``lambda_skip`` (default 20)
  pins outside the group — their per-pin weight contribution is below
  1/21 and barely changes.  The *first* touch of a net is never skipped so
  every reachable cell enters the frontier.
* :class:`LinearOrderingGrower` is the scalar reference; the default
  backend is its CSR-array port
  :class:`~repro.finder.kernel.ArrayOrderingGrower`, which grows
  bit-identical orderings (see :mod:`repro.netlist.backend`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.errors import FinderError
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.utils.lazyheap import LazyMaxHeap


class LinearOrderingGrower:
    """Grows one linear ordering; exposes incremental state for testing."""

    def __init__(
        self,
        netlist: Netlist,
        seed: int,
        lambda_skip: int = 20,
        exclude_fixed: bool = True,
    ) -> None:
        if not 0 <= seed < netlist.num_cells:
            raise FinderError(f"seed cell {seed} out of range")
        if exclude_fixed and netlist.cell_is_fixed(seed):
            raise FinderError(f"seed cell {seed} is fixed and exclude_fixed is set")
        self._netlist = netlist
        self._lambda_skip = lambda_skip
        self._exclude_fixed = exclude_fixed
        self._in_group: Set[int] = set()
        self._inside_count: Dict[int, int] = {}
        # Frontier bookkeeping: connection weight and cut-delta components.
        self._weight: Dict[int, float] = {}
        self._touched: Dict[int, int] = {}  # nets (>=2 pins) of v touching S
        self._absorbable: Dict[int, int] = {}  # nets of v where v is last outside pin
        self._heap = LazyMaxHeap()
        self._ordering: List[int] = []
        self._absorb(seed)

    # ------------------------------------------------------------------
    @property
    def ordering(self) -> List[int]:
        """Cells in the order they were absorbed (seed first)."""
        return list(self._ordering)

    @property
    def frontier_size(self) -> int:
        """Number of candidate cells currently adjacent to the group."""
        return len(self._heap)

    def connection_weight(self, cell: int) -> float:
        """Current connection weight of frontier cell ``cell`` (0 if absent)."""
        return self._weight.get(cell, 0.0)

    def cut_delta(self, cell: int) -> int:
        """Net-cut change if frontier cell ``cell`` were absorbed now."""
        degree2 = sum(
            1 for e in self._netlist.nets_of_cell(cell) if self._netlist.net_degree(e) > 1
        )
        newly_cut = degree2 - self._touched.get(cell, 0)
        return newly_cut - self._absorbable.get(cell, 0)

    # ------------------------------------------------------------------
    def step(self) -> Optional[int]:
        """Absorb the best frontier cell; return it, or ``None`` if stuck."""
        try:
            cell, _, _ = self._heap.pop()
        except KeyError:
            return None
        self._absorb(cell)
        return cell

    def grow(self, max_length: int) -> List[int]:
        """Grow until ``max_length`` cells or the frontier empties."""
        while len(self._ordering) < max_length:
            if self.step() is None:
                break
        return self.ordering

    def telemetry(self) -> Dict[str, int]:
        """Work counters of this grower (same keys as the array kernel)."""
        return {"heap_pushes": self._heap.pushes, "heap_compactions": 0}

    # ------------------------------------------------------------------
    def _absorb(self, cell: int) -> None:
        netlist = self._netlist
        self._in_group.add(cell)
        self._ordering.append(cell)
        self._weight.pop(cell, None)
        self._touched.pop(cell, None)
        self._absorbable.pop(cell, None)
        self._heap.discard(cell)

        for net in netlist.nets_of_cell(cell):
            degree = netlist.net_degree(net)
            old_inside = self._inside_count.get(net, 0)
            new_inside = old_inside + 1
            self._inside_count[net] = new_inside
            outside = degree - new_inside
            if outside == 0:
                continue  # net fully absorbed; no outside pins to update

            first_touch = old_inside == 0
            if not first_touch and self._lambda_skip and outside >= self._lambda_skip:
                # Paper's optimization: weight change 1/(lambda+1) - 1/(lambda+2)
                # is negligible for large lambda; skip the O(|e|) update.
                continue

            old_contribution = 0.0 if first_touch else 1.0 / (degree - old_inside + 1)
            new_contribution = 1.0 / (outside + 1)
            delta = new_contribution - old_contribution
            becomes_absorbable = outside == 1

            for other in netlist.cells_of_net(net):
                if other in self._in_group:
                    continue
                if self._exclude_fixed and netlist.cell_is_fixed(other):
                    continue
                self._weight[other] = self._weight.get(other, 0.0) + delta
                if first_touch:
                    self._touched[other] = self._touched.get(other, 0) + 1
                if becomes_absorbable:
                    self._absorbable[other] = self._absorbable.get(other, 0) + 1
                self._push(other)

    def _push(self, cell: int) -> None:
        # Secondary priority favors min cut: larger -cut_delta wins ties.
        self._heap.push(cell, self._weight[cell], float(-self.cut_delta(cell)))


def make_grower(
    netlist: Netlist,
    seed: int,
    lambda_skip: int = 20,
    exclude_fixed: bool = True,
    backend: Optional[str] = None,
):
    """Instantiate the Phase I grower of the selected backend.

    Both growers expose the same API and produce bit-identical orderings;
    the array backend is typically much faster on large designs.
    """
    if resolve_backend(backend) == "numpy":
        from repro.finder.kernel import ArrayOrderingGrower

        return ArrayOrderingGrower(
            netlist, seed, lambda_skip=lambda_skip, exclude_fixed=exclude_fixed
        )
    return LinearOrderingGrower(
        netlist, seed, lambda_skip=lambda_skip, exclude_fixed=exclude_fixed
    )


def grow_linear_ordering(
    netlist: Netlist,
    seed: int,
    max_length: int,
    lambda_skip: int = 20,
    exclude_fixed: bool = True,
    backend: Optional[str] = None,
) -> List[int]:
    """Convenience wrapper: one Phase I ordering of at most ``max_length``."""
    grower = make_grower(
        netlist,
        seed,
        lambda_skip=lambda_skip,
        exclude_fixed=exclude_fixed,
        backend=backend,
    )
    ordering = grower.grow(max_length)
    if trace.enabled():
        trace.counter("finder.orderings").add(1)
        trace.counter("finder.absorb_steps").add(len(ordering))
        for name, value in grower.telemetry().items():
            trace.counter(f"finder.{name}").add(value)
    return ordering
