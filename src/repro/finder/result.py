"""Result types of the tangled-logic finder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.finder.config import FinderConfig
from repro.utils.tables import format_table


@dataclass(frozen=True)
class GTL:
    """One discovered group of tangled logic.

    Attributes:
        cells: member cell indices.
        size: |C|.
        cut: net cut T(C).
        ngtl_score: normalized GTL-Score of the group.
        gtl_sd_score: density-aware GTL-Score of the group.
        score: value of the metric the finder was configured with (one of
            the two above, or the unnormalized GTL-S).
        seed: the random seed cell whose run produced the group.
        rent_exponent: Rent exponent used for the final scoring.
    """

    cells: FrozenSet[int]
    size: int
    cut: int
    ngtl_score: float
    gtl_sd_score: float
    score: float
    seed: int
    rent_exponent: float

    def __contains__(self, cell: int) -> bool:
        return cell in self.cells


@dataclass(frozen=True)
class FinderReport:
    """Full output of one finder run.

    Attributes:
        gtls: disjoint GTLs, best score first.
        config: the configuration used.
        rent_exponent: netlist-level Rent exponent (average over orderings).
        num_orderings: Phase I orderings grown (seeds + refinement re-seeds).
        num_candidates: Phase II candidates before refinement/pruning.
        runtime_seconds: wall-clock time of the whole pipeline.
        rent_fallback: True when no ordering produced a usable Rent estimate
            and ``rent_exponent`` is the assumed
            :data:`~repro.finder.config.DEFAULT_RENT_EXPONENT`.
    """

    gtls: Tuple[GTL, ...]
    config: FinderConfig
    rent_exponent: float
    num_orderings: int
    num_candidates: int
    runtime_seconds: float
    rent_fallback: bool = False

    @property
    def num_gtls(self) -> int:
        """Number of disjoint GTLs found."""
        return len(self.gtls)

    def top(self, count: int) -> Tuple[GTL, ...]:
        """The ``count`` best-scoring GTLs."""
        return self.gtls[:count]

    def summary(self) -> str:
        """Human-readable table shaped like the paper's result tables."""
        headers = ["#", "size", "cut", "nGTL-S", "GTL-SD", "seed"]
        rows = [
            [i + 1, g.size, g.cut, g.ngtl_score, g.gtl_sd_score, g.seed]
            for i, g in enumerate(self.gtls)
        ]
        body = format_table(headers, rows) if rows else "(no GTLs found)"
        rent = f"p={self.rent_exponent:.3f}"
        if self.rent_fallback:
            rent += " (assumed default; no ordering yielded an estimate)"
        return (
            f"{self.num_gtls} GTL(s), Rent exponent {rent}, "
            f"{self.num_candidates} candidate(s) from {self.num_orderings} "
            f"ordering(s), {self.runtime_seconds:.2f}s\n{body}"
        )
