"""Phase III (second half) — overlap pruning (steps III.15-III.22).

Refined candidates from different seeds often describe the same structure.
Candidates are visited best-score-first; a candidate is kept only when it is
disjoint from everything already kept.  The survivors are the final,
mutually disjoint set of GTLs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from repro.finder.candidate import CandidateGTL
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist


def prune_overlapping(
    candidates: Sequence[CandidateGTL],
    netlist: Optional[Netlist] = None,
    backend: Optional[str] = None,
) -> List[CandidateGTL]:
    """Greedy best-first disjoint selection.

    Candidates with identical member sets are collapsed first; then the
    survivors are scanned in ascending score order (ties broken by larger
    size, then by seed for determinism) and kept when disjoint from all
    previously kept candidates.

    When ``netlist`` is given and the array backend is selected, occupancy
    is tracked in one boolean cell mask instead of a growing Python set;
    the kept candidates are identical either way.
    """
    unique = {}
    for candidate in candidates:
        existing = unique.get(candidate.cells)
        if existing is None or candidate.score < existing.score:
            unique[candidate.cells] = candidate

    ranked = sorted(
        unique.values(), key=lambda c: (c.score, -c.size, c.seed)
    )
    kept: List[CandidateGTL] = []
    if netlist is not None and resolve_backend(backend) == "numpy":
        occupied_mask = np.zeros(netlist.num_cells, dtype=bool)
        for candidate in ranked:
            members = np.fromiter(
                candidate.cells, dtype=np.int64, count=len(candidate.cells)
            )
            if not occupied_mask[members].any():
                kept.append(candidate)
                occupied_mask[members] = True
        return kept
    occupied: Set[int] = set()
    for candidate in ranked:
        if occupied.isdisjoint(candidate.cells):
            kept.append(candidate)
            occupied.update(candidate.cells)
    return kept
