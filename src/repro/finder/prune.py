"""Phase III (second half) — overlap pruning (steps III.15-III.22).

Refined candidates from different seeds often describe the same structure.
Candidates are visited best-score-first; a candidate is kept only when it is
disjoint from everything already kept.  The survivors are the final,
mutually disjoint set of GTLs.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.finder.candidate import CandidateGTL


def prune_overlapping(candidates: Sequence[CandidateGTL]) -> List[CandidateGTL]:
    """Greedy best-first disjoint selection.

    Candidates with identical member sets are collapsed first; then the
    survivors are scanned in ascending score order (ties broken by larger
    size, then by seed for determinism) and kept when disjoint from all
    previously kept candidates.
    """
    unique = {}
    for candidate in candidates:
        existing = unique.get(candidate.cells)
        if existing is None or candidate.score < existing.score:
            unique[candidate.cells] = candidate

    ranked = sorted(
        unique.values(), key=lambda c: (c.score, -c.size, c.seed)
    )
    kept: List[CandidateGTL] = []
    occupied: Set[int] = set()
    for candidate in ranked:
        if occupied.isdisjoint(candidate.cells):
            kept.append(candidate)
            occupied.update(candidate.cells)
    return kept
