"""Ground-truth comparison: miss and over rates (Table 1 columns 9-10).

The paper reports, per planted GTL, the percentage of nodes in the known
GTL missed by the found solution and the percentage of extra nodes included
by the solution (relative to the known GTL's size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.finder.result import GTL


def miss_rate(truth: FrozenSet[int], found: Iterable[int]) -> float:
    """Fraction of ``truth`` cells absent from ``found``."""
    found_set = set(found)
    if not truth:
        return 0.0
    return len(truth - found_set) / len(truth)


def over_rate(truth: FrozenSet[int], found: Iterable[int]) -> float:
    """Extra cells in ``found`` as a fraction of the truth size."""
    found_set = set(found)
    if not truth:
        return 0.0
    return len(found_set - truth) / len(truth)


@dataclass(frozen=True)
class GTLMatch:
    """Best found GTL for one ground-truth block.

    Attributes:
        truth: the planted block.
        found: the matched GTL (None when nothing overlapped).
        miss: miss rate (1.0 when unmatched).
        over: over-inclusion rate (0.0 when unmatched).
    """

    truth: FrozenSet[int]
    found: Optional[GTL]
    miss: float
    over: float

    @property
    def detected(self) -> bool:
        """True when a found GTL covers at least half the block."""
        return self.found is not None and self.miss < 0.5


def match_to_ground_truth(
    ground_truth: Sequence[FrozenSet[int]], gtls: Sequence[GTL]
) -> List[GTLMatch]:
    """Greedily match found GTLs to planted blocks by overlap size.

    Each found GTL is assigned to at most one block and vice versa; blocks
    are processed in descending best-overlap order so large, unambiguous
    matches win first.
    """
    pairs = []
    for t_index, truth in enumerate(ground_truth):
        for g_index, gtl in enumerate(gtls):
            overlap = len(truth & gtl.cells)
            if overlap:
                pairs.append((overlap, t_index, g_index))
    pairs.sort(reverse=True)

    matched_truth = {}
    used_gtls = set()
    for overlap, t_index, g_index in pairs:
        if t_index in matched_truth or g_index in used_gtls:
            continue
        matched_truth[t_index] = g_index
        used_gtls.add(g_index)

    result: List[GTLMatch] = []
    for t_index, truth in enumerate(ground_truth):
        g_index = matched_truth.get(t_index)
        if g_index is None:
            result.append(GTLMatch(truth=truth, found=None, miss=1.0, over=0.0))
        else:
            gtl = gtls[g_index]
            result.append(
                GTLMatch(
                    truth=truth,
                    found=gtl,
                    miss=miss_rate(truth, gtl.cells),
                    over=over_rate(truth, gtl.cells),
                )
            )
    return result
