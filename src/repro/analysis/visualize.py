"""Image output without plotting dependencies: PPM heat maps.

Writes binary PPM (P6) images — readable by any image viewer / converter —
for the two visual artifacts the paper prints:

* congestion heat maps (Figures 1 and 7): blue -> green -> yellow -> red,
  with >=100% occupancy saturating to red;
* placement maps with highlighted GTLs (Figures 4 and 6): background cells
  gray, each GTL in a distinct color.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.placement.placer import Placement
from repro.routing.congestion import CongestionMap

#: Distinct GTL highlight colors (RGB).
GTL_COLORS: Tuple[Tuple[int, int, int], ...] = (
    (220, 40, 40),
    (40, 90, 220),
    (30, 170, 60),
    (230, 160, 20),
    (160, 40, 200),
    (0, 180, 180),
    (240, 90, 160),
    (130, 130, 20),
)


def write_ppm(path: str, pixels: np.ndarray) -> None:
    """Write an ``(height, width, 3)`` uint8 array as binary PPM."""
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise ValueError("pixels must be (height, width, 3)")
    height, width, _ = pixels.shape
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode())
        handle.write(pixels.astype(np.uint8).tobytes())


def _heat_color(value: float) -> Tuple[int, int, int]:
    """0 -> dark blue, 0.5 -> green, 0.9 -> yellow, >=1 -> red."""
    v = max(0.0, float(value))
    if v >= 1.0:
        return (255, 30, 30)
    if v >= 0.9:
        return (255, 200, 40)
    if v >= 0.5:
        t = (v - 0.5) / 0.4
        return (int(60 + 180 * t), 200, 60)
    t = v / 0.5
    return (int(20 + 40 * t), int(40 + 160 * t), int(120 - 40 * t))


def congestion_image(cmap: CongestionMap, pixels_per_tile: int = 12) -> np.ndarray:
    """Render a congestion map as an RGB array (Figure 1/7 style)."""
    occupancy = cmap.occupancy
    nx, ny = occupancy.shape
    image = np.zeros((ny * pixels_per_tile, nx * pixels_per_tile, 3), dtype=np.uint8)
    for i in range(nx):
        for j in range(ny):
            color = _heat_color(occupancy[i, j])
            y0 = (ny - 1 - j) * pixels_per_tile
            x0 = i * pixels_per_tile
            image[y0 : y0 + pixels_per_tile, x0 : x0 + pixels_per_tile] = color
    return image


def placement_image(
    placement: Placement,
    groups: Sequence[Iterable[int]] = (),
    size: int = 512,
) -> np.ndarray:
    """Render a placement as an RGB array (Figure 4/6 style).

    Background cells paint gray; each group in ``groups`` paints in a
    distinct color from :data:`GTL_COLORS`.
    """
    die = placement.die
    image = np.full((size, size, 3), 245, dtype=np.uint8)
    scale_x = (size - 1) / die.width
    scale_y = (size - 1) / die.height

    def paint(cells: Iterable[int], color: Tuple[int, int, int]) -> None:
        for cell in cells:
            px = int(placement.x[cell] * scale_x)
            py = size - 1 - int(placement.y[cell] * scale_y)
            image[max(0, py - 1) : py + 2, max(0, px - 1) : px + 2] = color

    grouped = set()
    for group in groups:
        grouped.update(group)
    background = [
        c for c in placement.netlist.movable_cells() if c not in grouped
    ]
    paint(background, (170, 170, 170))
    for index, group in enumerate(groups):
        paint(group, GTL_COLORS[index % len(GTL_COLORS)])
    return image


def save_congestion_ppm(cmap: CongestionMap, path: str) -> None:
    """Write the congestion heat map to ``path`` (binary PPM)."""
    write_ppm(path, congestion_image(cmap))


def save_placement_ppm(
    placement: Placement, path: str, groups: Sequence[Iterable[int]] = ()
) -> None:
    """Write the placement map (with highlighted groups) to ``path``."""
    write_ppm(path, placement_image(placement, groups))
