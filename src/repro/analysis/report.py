"""CSV output for experiment series (figures are emitted as data files)."""

from __future__ import annotations

import csv
from typing import Iterable, Sequence


def write_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Write ``rows`` under ``headers`` to ``path`` as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
