"""Score-versus-group-size curves (Figures 2, 3 and 5).

The paper illustrates its metrics by growing a cell agglomeration from a
seed and plotting the metric of every prefix against the prefix size.  A
seed inside a GTL produces a deep minimum at the GTL boundary; a seed
outside produces a flat curve that approaches ~1 (nGTL-Score) — while ratio
cut decreases monotonically, which is Fig 5's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.finder.candidate import scan_ordering
from repro.finder.ordering import grow_linear_ordering
from repro.metrics.gtl_score import ScoreContext
from repro.metrics.rent import estimate_rent_exponent_from_prefixes
from repro.netlist.hypergraph import Netlist


@dataclass(frozen=True)
class MetricCurve:
    """One metric-versus-prefix-size series.

    Attributes:
        label: series name (e.g. ``"nGTL-S (seed inside GTL)"``).
        sizes: prefix sizes |C_k|.
        values: metric values at each size.
        rent_exponent: exponent used for GTL scores (0 for ratio cut).
    """

    label: str
    sizes: Tuple[int, ...]
    values: Tuple[float, ...]
    rent_exponent: float = 0.0

    @property
    def minimum(self) -> Tuple[int, float]:
        """``(size, value)`` at the global minimum of the curve."""
        index = min(range(len(self.values)), key=lambda i: self.values[i])
        return self.sizes[index], self.values[index]


def agglomeration_curve(
    netlist: Netlist,
    seed_cell: int,
    max_length: int,
    metric: str = "ngtl_s",
    label: Optional[str] = None,
    rent_exponent: Optional[float] = None,
    min_prefix: int = 2,
) -> MetricCurve:
    """Grow an ordering from ``seed_cell`` and score every prefix.

    Reproduces one curve of Figure 2 (``metric="ngtl_s"``) or Figure 3
    (``metric="gtl_sd"``).
    """
    ordering = grow_linear_ordering(netlist, seed_cell, max_length)
    prefix_stats = scan_ordering(netlist, ordering)
    if rent_exponent is None:
        rent_exponent = estimate_rent_exponent_from_prefixes(prefix_stats)
    context = ScoreContext.for_netlist(netlist, rent_exponent, metric=metric)
    sizes = []
    values = []
    for stats in prefix_stats:
        if stats.size < min_prefix:
            continue
        sizes.append(stats.size)
        values.append(context.score(stats))
    return MetricCurve(
        label=label or metric,
        sizes=tuple(sizes),
        values=tuple(values),
        rent_exponent=rent_exponent,
    )


def metric_comparison_curves(
    netlist: Netlist,
    seed_cell: int,
    max_length: int,
    min_prefix: int = 2,
) -> List[MetricCurve]:
    """nGTL-S, GTL-SD and ratio-cut curves over one ordering (Figure 5).

    All three series share a single Phase I linear ordering, exactly as the
    paper extracts them.
    """
    ordering = grow_linear_ordering(netlist, seed_cell, max_length)
    prefix_stats = scan_ordering(netlist, ordering)
    rent = estimate_rent_exponent_from_prefixes(prefix_stats)
    ngtl = ScoreContext.for_netlist(netlist, rent, metric="ngtl_s")
    gtl_sd = ScoreContext.for_netlist(netlist, rent, metric="gtl_sd")

    sizes: List[int] = []
    ngtl_values: List[float] = []
    sd_values: List[float] = []
    rc_values: List[float] = []
    for stats in prefix_stats:
        if stats.size < min_prefix:
            continue
        sizes.append(stats.size)
        ngtl_values.append(ngtl.score(stats))
        sd_values.append(gtl_sd.score(stats))
        rc_values.append(stats.cut / stats.size)
    return [
        MetricCurve("nGTL-S", tuple(sizes), tuple(ngtl_values), rent),
        MetricCurve("GTL-SD", tuple(sizes), tuple(sd_values), rent),
        MetricCurve("ratio-cut", tuple(sizes), tuple(rc_values), 0.0),
    ]
