"""Analysis utilities: metric curves, ground-truth overlap, CSV output."""

from repro.analysis.curves import MetricCurve, agglomeration_curve, metric_comparison_curves
from repro.analysis.overlap import GTLMatch, match_to_ground_truth, miss_rate, over_rate
from repro.analysis.report import write_csv
from repro.analysis.visualize import (
    congestion_image,
    placement_image,
    save_congestion_ppm,
    save_placement_ppm,
    write_ppm,
)

__all__ = [
    "MetricCurve",
    "agglomeration_curve",
    "metric_comparison_curves",
    "GTLMatch",
    "match_to_ground_truth",
    "miss_rate",
    "over_rate",
    "write_csv",
    "congestion_image",
    "placement_image",
    "save_congestion_ppm",
    "save_placement_ppm",
    "write_ppm",
]
