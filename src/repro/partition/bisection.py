"""Recursive bisection: orderings and Rent-exponent estimation.

Recursive min-cut bisection yields (a) a linear ordering (the leaf order
of the bisection tree), which is the classic alternative to the paper's
agglomerative Phase I, and (b) the textbook Rent-exponent measurement: at
every bisection node, the block size |C| and its external cut T(C) give a
point on the ``T = A·|C|^p`` law; a log-log fit over all nodes estimates p.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.metrics.rent import fit_rent_exponent
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import cut_size
from repro.partition.fm import FMPartitioner
from repro.utils.rng import RngLike, ensure_rng


def recursive_bisection(
    netlist: Netlist,
    cells: Optional[Sequence[int]] = None,
    min_block: int = 8,
    balance_tolerance: float = 0.1,
    rng: RngLike = 0,
) -> List[List[int]]:
    """Recursively bisect ``cells``; returns the blocks in leaf order.

    Args:
        netlist: the design.
        cells: cells to partition (default: all movable cells).
        min_block: blocks at or below this size become leaves.
        balance_tolerance: FM area balance slack.
        rng: seed for FM initial partitions (split deterministically).
    """
    if cells is None:
        cells = netlist.movable_cells()
    cells = sorted(set(cells))
    if not cells:
        raise ReproError("recursive_bisection needs at least one cell")
    generator = ensure_rng(rng)

    leaves: List[List[int]] = []

    def recurse(block: List[int]) -> None:
        if len(block) <= min_block:
            leaves.append(block)
            return
        partitioner = FMPartitioner(
            netlist,
            cells=block,
            balance_tolerance=balance_tolerance,
            rng=generator.randrange(2**31),
        )
        result = partitioner.run()
        left = result.side_cells(0)
        right = result.side_cells(1)
        if not left or not right:
            leaves.append(block)  # degenerate split: stop here
            return
        recurse(left)
        recurse(right)

    recurse(cells)
    return leaves


def bisection_ordering(
    netlist: Netlist,
    cells: Optional[Sequence[int]] = None,
    min_block: int = 8,
    rng: RngLike = 0,
) -> List[int]:
    """Linear ordering from the recursive-bisection leaf order.

    An alternative Phase I: feed this ordering to
    :func:`repro.finder.candidate.extract_candidate` to run the paper's
    Phase II on partitioning-derived orderings.
    """
    leaves = recursive_bisection(netlist, cells=cells, min_block=min_block, rng=rng)
    ordering: List[int] = []
    for block in leaves:
        ordering.extend(block)
    return ordering


def estimate_rent_exponent_bisection(
    netlist: Netlist,
    cells: Optional[Sequence[int]] = None,
    min_block: int = 16,
    rng: RngLike = 0,
) -> Tuple[float, float]:
    """Rent exponent via recursive bisection (returns ``(p, A)``).

    Collects ``(|C|, T(C))`` at every bisection node and fits
    ``ln T = ln A + p ln |C|``.  This is the classical measurement the
    paper's ordering-based estimator approximates; the two should agree to
    within ~0.15 on ordinary logic.
    """
    if cells is None:
        cells = netlist.movable_cells()
    cells = sorted(set(cells))
    generator = ensure_rng(rng)

    sizes: List[int] = []
    cuts: List[int] = []

    def recurse(block: List[int]) -> None:
        if len(block) < 2:
            return
        cut = cut_size(netlist, block)
        if cut > 0 and len(block) < len(cells):
            sizes.append(len(block))
            cuts.append(cut)
        if len(block) <= min_block:
            return
        partitioner = FMPartitioner(
            netlist, cells=block, rng=generator.randrange(2**31)
        )
        result = partitioner.run()
        left = result.side_cells(0)
        right = result.side_cells(1)
        if not left or not right:
            return
        recurse(left)
        recurse(right)

    recurse(cells)
    if len(sizes) < 2:
        raise ReproError("not enough bisection nodes to fit a Rent exponent")
    return fit_rent_exponent(sizes, cuts, min_size=2)
