"""Recursive bisection: orderings and Rent-exponent estimation.

Recursive min-cut bisection yields (a) a linear ordering (the leaf order
of the bisection tree), which is the classic alternative to the paper's
agglomerative Phase I, and (b) the textbook Rent-exponent measurement: at
every bisection node, the block size |C| and its external cut T(C) give a
point on the ``T = A·|C|^p`` law; a log-log fit over all nodes estimates p.

Both drivers dispatch through :func:`repro.netlist.backend.resolve_backend`.
The default array backend shares one
:class:`~repro.partition.kernel.SubsetCSR` restriction down the tree: each
node's hypergraph view is derived from its parent's in one vectorized pass
over the parent's pins (a net with >= 2 pins on a child side already has
>= 2 pins in the parent), instead of re-deriving net membership from the
full netlist at every node the way the scalar reference does.  Results are
bit-identical across backends — same FM move sequences, same leaves in the
same order, same ``(|C|, T(C))`` samples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.metrics.rent import fit_rent_exponent
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import cut_size
from repro.partition.fm import FMPartitioner
from repro.utils.rng import RngLike, ensure_rng


def recursive_bisection(
    netlist: Netlist,
    cells: Optional[Sequence[int]] = None,
    min_block: int = 8,
    balance_tolerance: float = 0.1,
    rng: RngLike = 0,
    backend: Optional[str] = None,
) -> List[List[int]]:
    """Recursively bisect ``cells``; returns the blocks in leaf order.

    Args:
        netlist: the design.
        cells: cells to partition (default: all movable cells).
        min_block: blocks at or below this size become leaves.
        balance_tolerance: FM area balance slack.
        rng: seed for FM initial partitions (split deterministically).
        backend: compute backend (see
            :func:`repro.netlist.backend.resolve_backend`).
    """
    if cells is None:
        cells = netlist.movable_cells()
    cells = sorted(set(cells))
    if not cells:
        raise ReproError("recursive_bisection needs at least one cell")
    generator = ensure_rng(rng)

    leaves: List[List[int]] = []

    if resolve_backend(backend) == "numpy":
        from repro.partition.kernel import ArrayFMPartitioner, SubsetCSR

        def recurse_array(subset: "SubsetCSR", block: List[int]) -> None:
            # Invariant: len(block) > min_block and subset covers block.
            partitioner = ArrayFMPartitioner(
                balance_tolerance=balance_tolerance,
                rng=generator.randrange(2**31),
                subset=subset,
            )
            result = partitioner.run()
            left = result.side_cells(0)
            right = result.side_cells(1)
            if not left or not right:
                leaves.append(block)  # degenerate split: stop here
                return
            for part in (left, right):
                if len(part) <= min_block:
                    leaves.append(part)
                else:
                    recurse_array(subset.restrict(subset.member_mask(part)), part)

        if len(cells) <= min_block:
            leaves.append(cells)
        else:
            recurse_array(SubsetCSR.from_netlist(netlist, cells), cells)
        return leaves

    def recurse(block: List[int]) -> None:
        if len(block) <= min_block:
            leaves.append(block)
            return
        partitioner = FMPartitioner(
            netlist,
            cells=block,
            balance_tolerance=balance_tolerance,
            rng=generator.randrange(2**31),
        )
        result = partitioner.run()
        left = result.side_cells(0)
        right = result.side_cells(1)
        if not left or not right:
            leaves.append(block)  # degenerate split: stop here
            return
        recurse(left)
        recurse(right)

    recurse(cells)
    return leaves


def bisection_ordering(
    netlist: Netlist,
    cells: Optional[Sequence[int]] = None,
    min_block: int = 8,
    rng: RngLike = 0,
    backend: Optional[str] = None,
) -> List[int]:
    """Linear ordering from the recursive-bisection leaf order.

    An alternative Phase I: feed this ordering to
    :func:`repro.finder.candidate.extract_candidate` to run the paper's
    Phase II on partitioning-derived orderings.
    """
    leaves = recursive_bisection(
        netlist, cells=cells, min_block=min_block, rng=rng, backend=backend
    )
    ordering: List[int] = []
    for block in leaves:
        ordering.extend(block)
    return ordering


def estimate_rent_exponent_bisection(
    netlist: Netlist,
    cells: Optional[Sequence[int]] = None,
    min_block: int = 16,
    rng: RngLike = 0,
    backend: Optional[str] = None,
) -> Tuple[float, float]:
    """Rent exponent via recursive bisection (returns ``(p, A)``).

    Collects ``(|C|, T(C))`` at every bisection node and fits
    ``ln T = ln A + p ln |C|``.  This is the classical measurement the
    paper's ordering-based estimator approximates; the two should agree to
    within ~0.15 on ordinary logic.
    """
    if cells is None:
        cells = netlist.movable_cells()
    cells = sorted(set(cells))
    generator = ensure_rng(rng)

    sizes: List[int] = []
    cuts: List[int] = []

    def sample(block: List[int]) -> None:
        cut = cut_size(netlist, block)
        if cut > 0 and len(block) < len(cells):
            sizes.append(len(block))
            cuts.append(cut)

    if resolve_backend(backend) == "numpy":
        from repro.partition.kernel import ArrayFMPartitioner, SubsetCSR

        def recurse_array(subset: "SubsetCSR", block: List[int]) -> None:
            # Invariant: len(block) > min_block (>= 2) and subset covers it.
            partitioner = ArrayFMPartitioner(
                rng=generator.randrange(2**31), subset=subset
            )
            result = partitioner.run()
            left = result.side_cells(0)
            right = result.side_cells(1)
            if not left or not right:
                return
            for part in (left, right):
                if len(part) < 2:
                    continue
                sample(part)
                if len(part) > min_block:
                    recurse_array(subset.restrict(subset.member_mask(part)), part)

        if len(cells) >= 2:
            sample(cells)
            if len(cells) > min_block:
                recurse_array(SubsetCSR.from_netlist(netlist, cells), cells)
    else:

        def recurse(block: List[int]) -> None:
            if len(block) < 2:
                return
            sample(block)
            if len(block) <= min_block:
                return
            partitioner = FMPartitioner(
                netlist, cells=block, rng=generator.randrange(2**31)
            )
            result = partitioner.run()
            left = result.side_cells(0)
            right = result.side_cells(1)
            if not left or not right:
                return
            recurse(left)
            recurse(right)

        recurse(cells)
    if len(sizes) < 2:
        raise ReproError("not enough bisection nodes to fit a Rent exponent")
    return fit_rent_exponent(sizes, cuts, min_size=2)
