"""Fiduccia-Mattheyses (FM) min-cut bisection.

The classic linear-time-per-pass move-based heuristic: cells move between
two sides to reduce the number of cut nets, under an area balance
constraint.  Gains are kept in bucket lists indexed by gain value; each
pass tentatively moves every cell once (locking it) and the best prefix of
the move sequence is committed.  Passes repeat until no improvement.

This implementation supports hypergraphs directly (gain updates follow the
standard critical-net conditions) and weighted cell areas.

:class:`FMPartitioner` is the pure-Python *scalar reference*; the flat-array
counterpart lives in :mod:`repro.partition.kernel` and is selected by
default through :func:`repro.netlist.backend.resolve_backend` (set
``REPRO_SCALAR_BACKEND=1`` to force this implementation everywhere).  The
two are bit-identical in every observable: move sequences, sides, cut and
pass counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one bisection.

    Attributes:
        sides: per-cell side (0 or 1) for the partitioned cells.
        cut: number of nets with pins on both sides.
        passes: FM passes executed.
    """

    sides: Dict[int, int]
    cut: int
    passes: int

    def side_cells(self, side: int) -> List[int]:
        """Cells assigned to ``side``."""
        return sorted(c for c, s in self.sides.items() if s == side)


def random_balanced_start(
    cells: Sequence[int],
    areas: Mapping[int, float],
    total_area: float,
    max_area: float,
    tolerance: float,
    rng,
) -> Dict[int, int]:
    """Shuffled greedy fill of side 0 up to half the total area.

    Shared by both FM backends so the same seed produces the same start
    everywhere.  The cell whose addition crosses the half-area mark goes to
    whichever side leaves side 0 closer to half — assigning it to side 0
    unconditionally (the old behavior) overshoots by up to its full area,
    which for a large cell violates the balance tolerance before FM even
    starts.  With the tie resolved greedily the final imbalance is at most
    ``max_area / 2``, which always satisfies the balance slack
    ``max(tolerance * total_area, max_area)``; that invariant is asserted
    here so a regression can never hand FM an infeasible start.
    """
    order = list(cells)
    rng.shuffle(order)
    sides: Dict[int, int] = {}
    half = total_area / 2
    area0 = 0.0
    for cell in order:
        if area0 < half:
            area = areas[cell]
            if area0 + area - half > half - area0:
                # Crossing cell overshoots more than it currently fills:
                # side 0 stays lighter without it.
                sides[cell] = 1
            else:
                sides[cell] = 0
                area0 += area
        else:
            sides[cell] = 1
    slack = max(tolerance * total_area, max_area)
    if abs(area0 - half) > slack:
        raise ReproError(
            f"random balanced start violates the balance slack: "
            f"|{area0} - {half}| > {slack}"
        )
    return sides


def _emit_fm_telemetry(passes: int, moves: int) -> None:
    """Fold one FM run's work counters into the obs layer (both backends
    call this from ``run()``, so recursive bisection is covered too)."""
    if trace.enabled():
        trace.counter("fm.runs").add(1)
        trace.counter("fm.passes").add(passes)
        trace.counter("fm.moves").add(moves)


class FMPartitioner:
    """FM bisection over a subset of a netlist's cells.

    Nets are restricted to the given cell subset; pins outside the subset
    are ignored (free boundary), which is what recursive bisection needs.
    """

    def __init__(
        self,
        netlist: Netlist,
        cells: Optional[Sequence[int]] = None,
        balance_tolerance: float = 0.1,
        rng: RngLike = 0,
    ) -> None:
        if not 0 <= balance_tolerance < 1:
            raise ReproError("balance_tolerance must be in [0, 1)")
        self._netlist = netlist
        self._cells = sorted(set(cells if cells is not None else range(netlist.num_cells)))
        if len(self._cells) < 2:
            raise ReproError("FM needs at least two cells")
        self._cell_set = set(self._cells)
        self._tolerance = balance_tolerance
        self._rng = ensure_rng(rng)

        # Restrict nets to the subset once.
        self._nets: List[List[int]] = []
        seen: Set[int] = set()
        for cell in self._cells:
            for net in netlist.nets_of_cell(cell):
                if net in seen:
                    continue
                seen.add(net)
                members = [c for c in netlist.cells_of_net(net) if c in self._cell_set]
                if len(members) >= 2:
                    self._nets.append(members)
        self._cell_nets: Dict[int, List[int]] = {c: [] for c in self._cells}
        for index, members in enumerate(self._nets):
            for cell in members:
                self._cell_nets[cell].append(index)

        self._areas = {c: netlist.cell_area(c) for c in self._cells}
        self._total_area = sum(self._areas.values())
        # Hoisted out of _balance_ok: recomputing the max per candidate
        # probe made every pass quadratic in the subset size.
        self._max_area = max(self._areas.values())
        #: Lifetime tally of tentative moves across passes — telemetry.
        self.moves = 0

    # ------------------------------------------------------------------
    def run(
        self,
        initial: Optional[Dict[int, int]] = None,
        max_passes: int = 12,
    ) -> PartitionResult:
        """Run FM passes until convergence; returns the best partition."""
        sides = dict(initial) if initial else self._random_balanced_start()
        for cell in self._cells:
            if cell not in sides:
                raise ReproError(f"initial partition misses cell {cell}")

        passes = 0
        best_cut = self._cut(sides)
        # A pass always commits at least one move, so a pass where every
        # move worsens the cut returns sides strictly worse than its input;
        # snapshot the best sides so the reported (sides, cut) pair always
        # matches.
        best_sides = dict(sides)
        moves_before = self.moves
        improved = True
        while improved and passes < max_passes:
            passes += 1
            sides, pass_cut = self._one_pass(sides)
            improved = pass_cut < best_cut
            if improved:
                best_cut = pass_cut
                best_sides = dict(sides)
        _emit_fm_telemetry(passes, self.moves - moves_before)
        return PartitionResult(sides=best_sides, cut=best_cut, passes=passes)

    # ------------------------------------------------------------------
    def _random_balanced_start(self) -> Dict[int, int]:
        return random_balanced_start(
            self._cells,
            self._areas,
            self._total_area,
            self._max_area,
            self._tolerance,
            self._rng,
        )

    def _cut(self, sides: Dict[int, int]) -> int:
        cut = 0
        for members in self._nets:
            first = sides[members[0]]
            if any(sides[c] != first for c in members[1:]):
                cut += 1
        return cut

    def _balance_ok(self, area0: float, moving_area: float, from_side: int) -> bool:
        half = self._total_area / 2
        slack = max(self._tolerance * self._total_area, self._max_area)
        new_area0 = area0 - moving_area if from_side == 0 else area0 + moving_area
        return abs(new_area0 - half) <= slack

    def _one_pass(self, sides: Dict[int, int]) -> Tuple[Dict[int, int], int]:
        sides = dict(sides)
        # Per-net side counts.
        counts = [[0, 0] for _ in self._nets]
        for index, members in enumerate(self._nets):
            for cell in members:
                counts[index][sides[cell]] += 1

        # Initial gains.
        gains: Dict[int, int] = {}
        for cell in self._cells:
            gain = 0
            side = sides[cell]
            for net in self._cell_nets[cell]:
                if counts[net][side] == 1:
                    gain += 1  # moving removes the net from the cut
                if counts[net][1 - side] == 0:
                    gain -= 1  # moving puts the net into the cut
            gains[cell] = gain

        # Gain buckets (dict of gain -> set of free cells).
        buckets: Dict[int, Set[int]] = {}
        for cell, gain in gains.items():
            buckets.setdefault(gain, set()).add(cell)

        def bucket_remove(cell: int) -> None:
            bucket = buckets.get(gains[cell])
            if bucket is not None:
                bucket.discard(cell)
                if not bucket:
                    buckets.pop(gains[cell], None)

        def bucket_update(cell: int, delta: int) -> None:
            bucket_remove(cell)
            gains[cell] += delta
            buckets.setdefault(gains[cell], set()).add(cell)

        area0 = sum(self._areas[c] for c in self._cells if sides[c] == 0)
        locked: Set[int] = set()
        sequence: List[int] = []
        cut_trace: List[int] = []
        current_cut = self._cut(sides)

        for _ in range(len(self._cells)):
            chosen = None
            for gain in sorted(buckets, reverse=True):
                # Deterministic tie-break: smallest cell id that fits balance.
                for cell in sorted(buckets[gain]):
                    if self._balance_ok(area0, self._areas[cell], sides[cell]):
                        chosen = cell
                        break
                if chosen is not None:
                    break
            if chosen is None:
                break

            from_side = sides[chosen]
            to_side = 1 - from_side
            bucket_remove(chosen)
            locked.add(chosen)
            current_cut -= gains[chosen]
            sequence.append(chosen)
            cut_trace.append(current_cut)

            # Standard FM gain updates on critical nets.
            for net in self._cell_nets[chosen]:
                count_to = counts[net][to_side]
                count_from = counts[net][from_side]
                members = self._nets[net]
                if count_to == 0:
                    for other in members:
                        if other != chosen and other not in locked:
                            bucket_update(other, +1)
                elif count_to == 1:
                    for other in members:
                        if other != chosen and other not in locked and sides[other] == to_side:
                            bucket_update(other, -1)
                counts[net][from_side] -= 1
                counts[net][to_side] += 1
                if counts[net][from_side] == 0:
                    for other in members:
                        if other != chosen and other not in locked:
                            bucket_update(other, -1)
                elif counts[net][from_side] == 1:
                    for other in members:
                        if other != chosen and other not in locked and sides[other] == from_side:
                            bucket_update(other, +1)

            sides[chosen] = to_side
            area0 += self._areas[chosen] if to_side == 0 else -self._areas[chosen]

        self.moves += len(sequence)
        if not cut_trace:
            return sides, self._cut(sides)

        best_index = min(range(len(cut_trace)), key=cut_trace.__getitem__)
        # Roll back moves after the best prefix.
        for cell in sequence[best_index + 1 :]:
            side = sides[cell]
            sides[cell] = 1 - side
        return sides, cut_trace[best_index]


def make_partitioner(
    netlist: Netlist,
    cells: Optional[Sequence[int]] = None,
    balance_tolerance: float = 0.1,
    rng: RngLike = 0,
    backend: Optional[str] = None,
):
    """An FM partitioner on the resolved compute backend.

    ``"numpy"`` (the default unless ``REPRO_SCALAR_BACKEND=1``) builds the
    flat-array :class:`~repro.partition.kernel.ArrayFMPartitioner`;
    ``"python"`` builds the scalar reference :class:`FMPartitioner`.  Both
    produce bit-identical results (same move sequences, sides, cut and pass
    counts) — see ``tests/test_partition_kernel.py``.
    """
    if resolve_backend(backend) == "numpy":
        from repro.partition.kernel import ArrayFMPartitioner

        return ArrayFMPartitioner(
            netlist, cells=cells, balance_tolerance=balance_tolerance, rng=rng
        )
    return FMPartitioner(
        netlist, cells=cells, balance_tolerance=balance_tolerance, rng=rng
    )


def fm_bisect(
    netlist: Netlist,
    cells: Optional[Sequence[int]] = None,
    balance_tolerance: float = 0.1,
    rng: RngLike = 0,
    max_passes: int = 12,
    backend: Optional[str] = None,
) -> PartitionResult:
    """Convenience wrapper: one FM bisection of ``cells`` (default: all)."""
    partitioner = make_partitioner(
        netlist,
        cells=cells,
        balance_tolerance=balance_tolerance,
        rng=rng,
        backend=backend,
    )
    with trace.span(
        "partition.fm_bisect",
        cells=len(cells) if cells is not None else netlist.num_cells,
    ):
        return partitioner.run(max_passes=max_passes)
