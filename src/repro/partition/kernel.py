"""Flat-array FM bisection on the CSR netlist view.

:class:`ArrayFMPartitioner` is the drop-in counterpart of the scalar
reference :class:`~repro.partition.fm.FMPartitioner`.  Instead of per-cell
Python set scans it works on flat state indexed by *local* cell id over a
:class:`SubsetCSR` — the restriction of the hypergraph to the partitioned
cell subset, built with vectorized passes over the shared
:class:`~repro.netlist.arrays.NetlistArrays` view:

* ``side`` / ``gain`` / ``locked`` — per-cell move state in flat Python
  lists (one FM probe touches a handful of entries; list indexing beats
  numpy scalar indexing at that grain, exactly as in
  :mod:`repro.finder.kernel`);
* per-net side counts as two flat lists, initialized per pass with one
  ``bincount`` over the restricted pin array;
* gain buckets as a value-validated lazy heap: an entry ``(-gain, cell)``
  is live iff the cell is free and its recorded gain is current.  Pop
  order is (gain descending, cell id ascending) — the scalar reference's
  exact ``sorted(buckets)`` selection — and entries that fail the balance
  check are pushed back, mirroring the reference's skip-and-continue scan.
  Duplicate live entries (a gain that dipped and returned) are harmless:
  they pop the same ``(gain, cell)`` pair.  Periodic compaction drops
  superseded entries, like the detection kernel's heap.

Every floating-point decision accumulates in the scalar reference's exact
order (total area, side-0 area, balance slack), so move sequences, sides,
cuts and pass counts are bit-identical across backends — the invariant
that lets :class:`~repro.flow.stages.PartitionStage` share one fingerprint
space between them.

:class:`SubsetCSR` can restrict itself further (:meth:`SubsetCSR.restrict`),
so recursive bisection derives each tree node's view from its parent in
one vectorized pass over the parent's pins instead of re-scanning the full
netlist per node — the restriction a node needs is exactly its parent's
nets with at least two pins on the node's side.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.netlist.hypergraph import Netlist
from repro.partition.fm import (
    PartitionResult,
    _emit_fm_telemetry,
    random_balanced_start,
)
from repro.utils.rng import RngLike, ensure_rng


class SubsetCSR:
    """Restriction of a netlist's hypergraph to a cell subset.

    Nets keep only their pins inside the subset and survive with >= 2 such
    pins (outside pins are a free boundary — the same restriction
    ``FMPartitioner.__init__`` builds cell by cell with Python sets).
    Cells are renumbered ``0..n-1`` in ascending global order.
    """

    __slots__ = ("cells", "net_ptr", "net_cells", "pin_net", "areas")

    def __init__(self, cells, net_ptr, net_cells, pin_net, areas) -> None:
        self.cells = cells  # (n,) int64, sorted global cell ids
        self.net_ptr = net_ptr  # (m + 1,) int64 segment pointers
        self.net_cells = net_cells  # flat local member ids, net-major
        self.pin_net = pin_net  # local net id owning each net_cells slot
        self.areas = areas  # (n,) float64 cell areas

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        return len(self.net_ptr) - 1

    @classmethod
    def from_netlist(
        cls, netlist: Netlist, cells: Optional[Sequence[int]] = None
    ) -> "SubsetCSR":
        """Build the restriction of ``netlist`` to ``cells`` (default: all)."""
        arrays = netlist.arrays
        if cells is None:
            subset = np.arange(arrays.num_cells, dtype=np.int64)
        else:
            subset = np.unique(np.fromiter(cells, dtype=np.int64))
        in_subset = np.zeros(arrays.num_cells, dtype=bool)
        in_subset[subset] = True
        local_of = np.full(arrays.num_cells, -1, dtype=np.int64)
        local_of[subset] = np.arange(len(subset), dtype=np.int64)
        return cls._restrict(
            subset,
            arrays.areas[subset],
            in_subset[arrays.net_cells],
            arrays.net_cells,
            arrays.pin_net,
            arrays.num_nets,
            local_of,
        )

    def restrict(self, member_mask: np.ndarray) -> "SubsetCSR":
        """The sub-restriction to the local cells where ``member_mask`` is True.

        Equivalent to ``SubsetCSR.from_netlist(netlist, kept_globals)`` —
        a net with >= 2 pins in the child necessarily has >= 2 pins here —
        but costs one vectorized pass over this subset's pins only.
        """
        kept = np.flatnonzero(member_mask)
        local_of = np.full(self.num_cells, -1, dtype=np.int64)
        local_of[kept] = np.arange(len(kept), dtype=np.int64)
        return type(self)._restrict(
            self.cells[kept],
            self.areas[kept],
            member_mask[self.net_cells],
            self.net_cells,
            self.pin_net,
            self.num_nets,
            local_of,
        )

    @classmethod
    def _restrict(cls, cells, areas, pin_in, net_cells, pin_net, num_nets, local_of):
        counts = np.bincount(pin_net[pin_in], minlength=num_nets)
        keep_net = counts >= 2
        keep_pin = pin_in & keep_net[pin_net]
        kept_counts = counts[keep_net]
        net_ptr = np.zeros(len(kept_counts) + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=net_ptr[1:])
        new_pin_net = np.repeat(
            np.arange(len(kept_counts), dtype=np.int64), kept_counts
        )
        return cls(
            cells=cells,
            net_ptr=net_ptr,
            net_cells=local_of[net_cells[keep_pin]],
            pin_net=new_pin_net,
            areas=areas,
        )

    def member_mask(self, global_cells: Sequence[int]) -> np.ndarray:
        """Local boolean mask of the global cell ids given.

        Raises :class:`~repro.errors.ReproError` when an id is not a member
        of this subset.
        """
        wanted = np.asarray(global_cells, dtype=np.int64)
        local = np.searchsorted(self.cells, wanted)
        found = self.cells[np.minimum(local, self.num_cells - 1)]
        valid = (local < self.num_cells) & (found == wanted)
        if not valid.all():
            missing = wanted[~valid]
            raise ReproError(f"cells not in subset: {missing[:5].tolist()}")
        mask = np.zeros(self.num_cells, dtype=bool)
        mask[local] = True
        return mask


class ArrayFMPartitioner:
    """Flat-array FM bisection; API-compatible with
    :class:`~repro.partition.fm.FMPartitioner` and bit-identical to it in
    every observable (move sequences, sides, cut, passes)."""

    #: Compact the gain heap when it exceeds this size and holds mostly
    #: superseded entries (same policy as the detection kernel).
    _COMPACT_THRESHOLD = 8192

    def __init__(
        self,
        netlist: Optional[Netlist] = None,
        cells: Optional[Sequence[int]] = None,
        balance_tolerance: float = 0.1,
        rng: RngLike = 0,
        subset: Optional[SubsetCSR] = None,
    ) -> None:
        if not 0 <= balance_tolerance < 1:
            raise ReproError("balance_tolerance must be in [0, 1)")
        if subset is None:
            if netlist is None:
                raise ReproError("ArrayFMPartitioner needs a netlist or a subset")
            subset = SubsetCSR.from_netlist(netlist, cells)
        if subset.num_cells < 2:
            raise ReproError("FM needs at least two cells")
        self._subset = subset
        self._tolerance = balance_tolerance
        self._rng = ensure_rng(rng)

        self._cells: List[int] = subset.cells.tolist()
        self._areas: List[float] = subset.areas.tolist()
        # Python sums in ascending-cell order: the reference's exact float
        # accumulation (it sums a dict built in sorted-cell order).
        self._total_area = sum(self._areas)
        self._max_area = max(self._areas)
        self._min_area = min(self._areas)
        self._local_of: Dict[int, int] = {
            cell: index for index, cell in enumerate(self._cells)
        }
        # Flat hot-loop state (see the module docstring for why lists).
        self._net_ptr: List[int] = subset.net_ptr.tolist()
        self._net_members: List[int] = subset.net_cells.tolist()
        self._net_degrees = np.diff(subset.net_ptr)
        cell_degrees = np.bincount(subset.net_cells, minlength=subset.num_cells)
        cell_ptr = np.zeros(subset.num_cells + 1, dtype=np.int64)
        np.cumsum(cell_degrees, out=cell_ptr[1:])
        order = np.argsort(subset.net_cells, kind="stable")
        self._cell_ptr: List[int] = cell_ptr.tolist()
        self._cell_nets: List[int] = subset.pin_net[order].tolist()
        #: Lifetime tally of tentative moves across passes — telemetry.
        self.moves = 0

    # ------------------------------------------------------------------
    def run(
        self,
        initial: Optional[Dict[int, int]] = None,
        max_passes: int = 12,
    ) -> PartitionResult:
        """Run FM passes until convergence; returns the best partition."""
        extra: Dict[int, int] = {}
        if initial:  # truthiness, as the reference: {} means a random start
            sides_map = dict(initial)
            # The reference passes unknown keys through untouched.
            extra = {
                cell: side
                for cell, side in sides_map.items()
                if cell not in self._local_of
            }
        else:
            area_of = dict(zip(self._cells, self._areas))
            sides_map = random_balanced_start(
                self._cells,
                area_of,
                self._total_area,
                self._max_area,
                self._tolerance,
                self._rng,
            )
        side: List[int] = [0] * len(self._cells)
        for index, cell in enumerate(self._cells):
            if cell not in sides_map:
                raise ReproError(f"initial partition misses cell {cell}")
            side[index] = 1 if sides_map[cell] else 0

        passes = 0
        best_cut = self._cut(side)
        best_side = list(side)
        moves_before = self.moves
        improved = True
        while improved and passes < max_passes:
            passes += 1
            side, pass_cut = self._one_pass(side)
            improved = pass_cut < best_cut
            if improved:
                best_cut = pass_cut
                best_side = list(side)
        _emit_fm_telemetry(passes, self.moves - moves_before)
        sides = dict(extra)
        for index, cell in enumerate(self._cells):
            sides[cell] = best_side[index]
        return PartitionResult(sides=sides, cut=best_cut, passes=passes)

    # ------------------------------------------------------------------
    def _side_counts(self, side: List[int]) -> np.ndarray:
        """Per-net side-0 pin counts (one bincount over the restricted pins)."""
        subset = self._subset
        member_sides = np.asarray(side, dtype=np.int64)[subset.net_cells]
        return np.bincount(
            subset.pin_net[member_sides == 0], minlength=subset.num_nets
        )

    def _cut(self, side: List[int]) -> int:
        counts0 = self._side_counts(side)
        return int(np.count_nonzero((counts0 > 0) & (counts0 < self._net_degrees)))

    def _initial_gains(self, side: List[int], counts0: np.ndarray) -> List[int]:
        """Vectorized FM gains: +1 per critical own-side net, -1 per net the
        move would newly cut."""
        subset = self._subset
        counts1 = self._net_degrees - counts0
        pin_side = np.asarray(side, dtype=np.int64)[subset.net_cells]
        own = np.where(pin_side == 0, counts0[subset.pin_net], counts1[subset.pin_net])
        other = np.where(
            pin_side == 0, counts1[subset.pin_net], counts0[subset.pin_net]
        )
        contrib = (own == 1).astype(np.int64) - (other == 0)
        gains = np.bincount(
            subset.net_cells, weights=contrib, minlength=subset.num_cells
        )
        return gains.astype(np.int64).tolist()

    def _one_pass(self, side: List[int]):
        side = list(side)
        n = len(side)
        counts0_arr = self._side_counts(side)
        gain = self._initial_gains(side, counts0_arr)
        counts = [counts0_arr.tolist(), (self._net_degrees - counts0_arr).tolist()]
        current_cut = int(
            np.count_nonzero((counts0_arr > 0) & (counts0_arr < self._net_degrees))
        )

        # One gain heap per side: a live entry sits in the heap of its
        # cell's current side (a moved cell is locked, so side membership
        # never goes stale for live entries).  Split heaps let a move skip
        # a side that the balance constraint blocks wholesale — the common
        # end-of-pass regime where the reference rescans every free cell of
        # the light side on every single move.
        heap0: List[tuple] = []
        heap1: List[tuple] = []
        for cell in range(n):
            (heap1 if side[cell] else heap0).append((-gain[cell], cell))
        heapify(heap0)
        heapify(heap1)
        heaps = (heap0, heap1)

        areas = self._areas
        area0 = 0.0
        for cell in range(n):
            if side[cell] == 0:
                area0 += areas[cell]

        # Hoisted balance constants: the reference recomputes these per
        # probe but they are pass-invariant floats.
        half = self._total_area / 2
        slack = max(self._tolerance * self._total_area, self._max_area)
        min_area = self._min_area
        max_area = self._max_area

        locked = bytearray(n)
        sequence: List[int] = []
        cut_trace: List[int] = []
        deferred: List[tuple] = []
        net_ptr = self._net_ptr
        net_members = self._net_members
        cell_ptr = self._cell_ptr
        cell_nets = self._cell_nets
        push = heappush
        pop = heappop
        compact_watermark = self._COMPACT_THRESHOLD

        for _ in range(n):
            # Side viability: the balance predicate is monotone in the
            # moving area, so the exact predicate evaluated at the extreme
            # areas (identical float expressions to the per-candidate
            # check) decides whether ANY cell of a side could pass.  A
            # blocked side is skipped without popping; its cells could
            # never be chosen this move.
            open0 = not (
                (area0 - min_area) - half < -slack
                or (area0 - max_area) - half > slack
            )
            open1 = not (
                (area0 + max_area) - half < -slack
                or (area0 + min_area) - half > slack
            )

            # Selection: merge-pop the side heaps in (gain desc, cell asc)
            # order; skip stale entries by value; hold balance-failing
            # candidates aside and re-push them after the move — exactly
            # the reference's bucket scan.
            chosen = -1
            best0 = best1 = None
            while True:
                if best0 is None and open0:
                    while heap0:
                        entry = pop(heap0)
                        cell = entry[1]
                        if not locked[cell] and -entry[0] == gain[cell]:
                            best0 = entry
                            break
                if best1 is None and open1:
                    while heap1:
                        entry = pop(heap1)
                        cell = entry[1]
                        if not locked[cell] and -entry[0] == gain[cell]:
                            best1 = entry
                            break
                if best0 is None and best1 is None:
                    break
                if best1 is None or (best0 is not None and best0 < best1):
                    entry, from_heap, best0 = best0, 0, None
                else:
                    entry, from_heap, best1 = best1, 1, None
                cell = entry[1]
                moving = areas[cell]
                new_area0 = area0 - moving if from_heap == 0 else area0 + moving
                if abs(new_area0 - half) <= slack:
                    chosen = cell
                    break
                deferred.append((entry, from_heap))
            if best0 is not None:
                push(heap0, best0)
            if best1 is not None:
                push(heap1, best1)
            if deferred:
                for entry, from_heap in deferred:
                    push(heaps[from_heap], entry)
                deferred.clear()
            if chosen < 0:
                break

            from_side = side[chosen]
            to_side = 1 - from_side
            locked[chosen] = 1
            current_cut -= gain[chosen]
            sequence.append(chosen)
            cut_trace.append(current_cut)

            counts_from = counts[from_side]
            counts_to = counts[to_side]
            heap_from = heaps[from_side]
            heap_to = heaps[to_side]
            # Standard FM gain updates on critical nets (identical branch
            # structure to the reference; integer gains make the member
            # iteration order irrelevant to the result).  Updated entries
            # are pushed onto the heap of the cell's current side.
            for net in cell_nets[cell_ptr[chosen] : cell_ptr[chosen + 1]]:
                count_to = counts_to[net]
                count_from = counts_from[net]
                counts_from[net] = count_from - 1
                counts_to[net] = count_to + 1
                if count_to > 1 and count_from > 2:
                    # No critical transition: gains are unaffected, so the
                    # member slice is never needed (the reference iterates
                    # the members here too, but its loop bodies no-op).
                    continue
                members = net_members[net_ptr[net] : net_ptr[net + 1]]
                if count_to == 0:
                    for other in members:
                        if other != chosen and not locked[other]:
                            updated = gain[other] + 1
                            gain[other] = updated
                            push(heap1 if side[other] else heap0, (-updated, other))
                elif count_to == 1:
                    for other in members:
                        if (
                            other != chosen
                            and not locked[other]
                            and side[other] == to_side
                        ):
                            updated = gain[other] - 1
                            gain[other] = updated
                            push(heap_to, (-updated, other))
                remaining = count_from - 1
                if remaining == 0:
                    for other in members:
                        if other != chosen and not locked[other]:
                            updated = gain[other] - 1
                            gain[other] = updated
                            push(heap1 if side[other] else heap0, (-updated, other))
                elif remaining == 1:
                    for other in members:
                        if (
                            other != chosen
                            and not locked[other]
                            and side[other] == from_side
                        ):
                            updated = gain[other] + 1
                            gain[other] = updated
                            push(heap_from, (-updated, other))

            side[chosen] = to_side
            area0 += areas[chosen] if to_side == 0 else -areas[chosen]

            if len(heap0) + len(heap1) > compact_watermark:
                free = n - len(sequence)
                if len(heap0) + len(heap1) > 4 * free:
                    for heap in heaps:
                        heap[:] = [
                            entry
                            for entry in heap
                            if not locked[entry[1]] and -entry[0] == gain[entry[1]]
                        ]
                        heapify(heap)
                    compact_watermark = max(
                        self._COMPACT_THRESHOLD, 2 * (len(heap0) + len(heap1))
                    )

        self.moves += len(sequence)
        if not cut_trace:
            # No move fit the balance constraint; counts are untouched so
            # current_cut is the reference's recount.
            return side, current_cut

        best_index = min(range(len(cut_trace)), key=cut_trace.__getitem__)
        for cell in sequence[best_index + 1 :]:
            side[cell] = 1 - side[cell]
        return side, cut_trace[best_index]


__all__ = ["ArrayFMPartitioner", "SubsetCSR"]
