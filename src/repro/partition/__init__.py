"""Hypergraph partitioning substrate.

The paper's Phase II/III "can be integrated with other linear ordering
generation methods [Alpert & Kahng 1996]"; the classic alternative source
of orderings is recursive min-cut bisection.  This package provides:

* :mod:`repro.partition.fm` — the Fiduccia-Mattheyses move-based min-cut
  bisection heuristic with gain buckets and balance constraints (the
  pure-Python scalar reference);
* :mod:`repro.partition.kernel` — the flat-array FM kernel on the CSR
  netlist view, bit-identical to the reference and selected by default
  (``REPRO_SCALAR_BACKEND=1`` forces the reference);
* :mod:`repro.partition.bisection` — recursive bisection, the derived
  linear ordering, and the classic bisection-based Rent-exponent estimator
  (a cross-check for the paper's ordering-based estimator).
"""

from repro.partition.fm import (
    FMPartitioner,
    PartitionResult,
    fm_bisect,
    make_partitioner,
)
from repro.partition.kernel import ArrayFMPartitioner, SubsetCSR
from repro.partition.bisection import (
    bisection_ordering,
    estimate_rent_exponent_bisection,
    recursive_bisection,
)

__all__ = [
    "ArrayFMPartitioner",
    "FMPartitioner",
    "PartitionResult",
    "SubsetCSR",
    "fm_bisect",
    "make_partitioner",
    "bisection_ordering",
    "estimate_rent_exponent_bisection",
    "recursive_bisection",
]
