"""Gate-level logic-structure generators.

These build the kinds of structures the paper says GTLs represent — "entire
logic structures like adders and decoders" — plus the dissolved ROM blocks
the industrial experiment traces its hotspots to.  Every generator works on
a shared :class:`~repro.generators.circuit_builder.CircuitBuilder` and
returns :class:`StructurePorts` (member cells + boundary wires) so composite
designs can stitch structures into surrounding glue logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import GenerationError
from repro.generators.circuit_builder import CircuitBuilder
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class StructurePorts:
    """Boundary description of one generated structure.

    Attributes:
        name: instance name of the structure.
        cells: member cell indices (the structure's ground-truth GTL set).
        inputs: wires the structure reads (created by the caller or fresh).
        outputs: wires the structure drives.
        internal_wires: all wires created inside the structure (gate
            outputs); populated by generators that expose their full wire
            pool for cross-module sampling.
    """

    name: str
    cells: List[int] = field(default_factory=list)
    inputs: List[int] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)
    internal_wires: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of member cells."""
        return len(self.cells)


def _resolve_inputs(
    circuit: CircuitBuilder, count: int, provided: Optional[Sequence[int]]
) -> List[int]:
    if provided is None:
        return circuit.new_wires(count)
    if len(provided) != count:
        raise GenerationError(f"expected {count} input wires, got {len(provided)}")
    return list(provided)


# ----------------------------------------------------------------------
# Adders
# ----------------------------------------------------------------------
def build_ripple_carry_adder(
    circuit: CircuitBuilder,
    bits: int,
    inputs: Optional[Sequence[int]] = None,
    name: str = "rca",
) -> StructurePorts:
    """Gate-level ripple-carry adder: per bit 2x XOR2, 2x AND2, 1x OR2.

    ``inputs`` holds ``a[0..bits-1], b[0..bits-1], cin`` (2*bits+1 wires).
    Outputs are ``sum[0..bits-1], cout``.
    """
    if bits < 1:
        raise GenerationError("adder needs >= 1 bit")
    wires = _resolve_inputs(circuit, 2 * bits + 1, inputs)
    a, b, carry = wires[:bits], wires[bits : 2 * bits], wires[2 * bits]
    ports = StructurePorts(name=name, inputs=list(wires))
    for i in range(bits):
        g1, (p,) = circuit.add_gate("XOR2", [a[i], b[i]], name=f"{name}_p{i}")
        g2, (s,) = circuit.add_gate("XOR2", [p, carry], name=f"{name}_s{i}")
        g3, (t1,) = circuit.add_gate("AND2", [a[i], b[i]], name=f"{name}_g{i}")
        g4, (t2,) = circuit.add_gate("AND2", [p, carry], name=f"{name}_h{i}")
        g5, (cout,) = circuit.add_gate("OR2", [t1, t2], name=f"{name}_c{i}")
        ports.cells += [g1, g2, g3, g4, g5]
        ports.outputs.append(s)
        carry = cout
    ports.outputs.append(carry)
    return ports


def build_carry_lookahead_adder(
    circuit: CircuitBuilder,
    bits: int,
    group: int = 4,
    inputs: Optional[Sequence[int]] = None,
    name: str = "cla",
) -> StructurePorts:
    """Carry-lookahead adder with ``group``-bit lookahead blocks.

    Denser than ripple-carry: inside each block every carry is computed from
    all lower p/g signals with wide AND/OR gates, so p/g wires fan out to
    many complex gates — a more tangled structure per the paper's
    motivation.
    """
    if bits < 1:
        raise GenerationError("adder needs >= 1 bit")
    if group < 2:
        raise GenerationError("lookahead group must be >= 2")
    wires = _resolve_inputs(circuit, 2 * bits + 1, inputs)
    a, b, cin = wires[:bits], wires[bits : 2 * bits], wires[2 * bits]
    ports = StructurePorts(name=name, inputs=list(wires))

    propagate: List[int] = []
    generate: List[int] = []
    for i in range(bits):
        gp, (p,) = circuit.add_gate("XOR2", [a[i], b[i]], name=f"{name}_p{i}")
        gg, (g,) = circuit.add_gate("AND2", [a[i], b[i]], name=f"{name}_g{i}")
        ports.cells += [gp, gg]
        propagate.append(p)
        generate.append(g)

    carry = cin
    for base in range(0, bits, group):
        width = min(group, bits - base)
        block_carry_in = carry
        for offset in range(width):
            i = base + offset
            # c_{i+1} = g_i + p_i g_{i-1} + ... + p_i..p_base * c_base
            terms = [generate[i]]
            for j in range(base, i):
                fanin = [propagate[k] for k in range(j + 1, i + 1)] + [generate[j]]
                gate = circuit.library.and_gate(len(fanin)) if len(fanin) > 1 else None
                if gate is None:
                    terms.append(generate[j])
                else:
                    cell, (t,) = circuit.add_gate(
                        gate.name, fanin, name=f"{name}_t{i}_{j}"
                    )
                    ports.cells.append(cell)
                    terms.append(t)
            fanin = [propagate[k] for k in range(base, i + 1)] + [block_carry_in]
            cell, (t,) = circuit.add_gate(
                circuit.library.and_gate(len(fanin)).name,
                fanin,
                name=f"{name}_tc{i}",
            )
            ports.cells.append(cell)
            terms.append(t)
            if len(terms) == 1:
                carry = terms[0]
            else:
                cell, (carry,) = circuit.add_gate(
                    circuit.library.or_gate(len(terms)).name,
                    terms,
                    name=f"{name}_c{i + 1}",
                )
                ports.cells.append(cell)
            gs, (s,) = circuit.add_gate(
                "XOR2",
                [propagate[i], block_carry_in if offset == 0 else prev_carry],
                name=f"{name}_s{i}",
            )
            ports.cells.append(gs)
            ports.outputs.append(s)
            prev_carry = carry
    ports.outputs.append(carry)
    return ports


# ----------------------------------------------------------------------
# Decoder / mux
# ----------------------------------------------------------------------
def build_decoder(
    circuit: CircuitBuilder,
    addr_bits: int,
    inputs: Optional[Sequence[int]] = None,
    name: str = "dec",
) -> StructurePorts:
    """``addr_bits``-to-``2**addr_bits`` line decoder.

    Every address wire (or its complement) fans out to half the output AND
    gates, producing the very-high-fanout nets that make decoders tangled.
    """
    if addr_bits < 1:
        raise GenerationError("decoder needs >= 1 address bit")
    addr = _resolve_inputs(circuit, addr_bits, inputs)
    ports = StructurePorts(name=name, inputs=list(addr))

    complements: List[int] = []
    for i, wire in enumerate(addr):
        cell, (neg,) = circuit.add_gate("INV", [wire], name=f"{name}_inv{i}")
        ports.cells.append(cell)
        complements.append(neg)

    if addr_bits == 1:
        # Outputs are just the wire and its complement buffered.
        for i, source in enumerate((complements[0], addr[0])):
            cell, (out,) = circuit.add_gate("BUF", [source], name=f"{name}_o{i}")
            ports.cells.append(cell)
            ports.outputs.append(out)
        return ports

    gate = circuit.library.and_gate(addr_bits)
    for code in range(2**addr_bits):
        fanin = [
            addr[bit] if (code >> bit) & 1 else complements[bit]
            for bit in range(addr_bits)
        ]
        cell, (out,) = circuit.add_gate(gate.name, fanin, name=f"{name}_o{code}")
        ports.cells.append(cell)
        ports.outputs.append(out)
    return ports


def build_mux_tree(
    circuit: CircuitBuilder,
    num_inputs: int,
    inputs: Optional[Sequence[int]] = None,
    name: str = "mux",
) -> StructurePorts:
    """Binary 2:1-mux reduction tree over ``num_inputs`` data wires.

    One select wire per level is shared by all muxes of the level, giving
    the select nets fanout ``num_inputs / 2**level``.
    """
    if num_inputs < 2:
        raise GenerationError("mux tree needs >= 2 inputs")
    data = _resolve_inputs(circuit, num_inputs, inputs)
    ports = StructurePorts(name=name, inputs=list(data))

    level = 0
    current = list(data)
    while len(current) > 1:
        select = circuit.new_wire(f"{name}_sel{level}")
        ports.inputs.append(select)
        nxt: List[int] = []
        for pair in range(0, len(current) - 1, 2):
            cell, (out,) = circuit.add_gate(
                "MUX2",
                [current[pair], current[pair + 1], select],
                name=f"{name}_m{level}_{pair // 2}",
            )
            ports.cells.append(cell)
            nxt.append(out)
        if len(current) % 2:
            nxt.append(current[-1])
        current = nxt
        level += 1
    ports.outputs = [current[0]]
    return ports


# ----------------------------------------------------------------------
# ROM (and its "dissolved" form)
# ----------------------------------------------------------------------
def build_dissolved_rom(
    circuit: CircuitBuilder,
    addr_bits: int,
    word_bits: int,
    sharing: float = 1.5,
    levels: int = 3,
    rng: RngLike = None,
    inputs: Optional[Sequence[int]] = None,
    name: str = "rom",
) -> StructurePorts:
    """A ROM dissolved into ordinary logic (the industrial GTL origin).

    A ``addr_bits`` decoder produces ``2**addr_bits`` word lines.  Synthesis
    does not build one OR tree per output bit — it factors shared
    subexpressions *across* bits, so the dissolved ROM is a mesh of complex
    gates (NOR4 / NAND4 / AOI / OAI) in which every intermediate signal fans
    out to several consumers.  We model that directly with ``levels`` layers
    of shared reduction gates: each layer holds
    ``sharing * max(previous_width, word_bits)`` gates, every gate combining
    four random signals of the previous layer, and
    every output bit finally combines four random top-layer signals.  Each
    intermediate wire therefore has expected fanout ~2-4 and every gate is
    pin-dense — exactly the tangled, high-pin-count clump the paper's
    designers describe after timing-driven ROM dissolution.
    """
    if word_bits < 1:
        raise GenerationError("ROM needs >= 1 output bit")
    if sharing <= 0:
        raise GenerationError("sharing must be positive")
    if levels < 1:
        raise GenerationError("levels must be >= 1")
    generator = ensure_rng(rng)
    decoder = build_decoder(circuit, addr_bits, inputs=inputs, name=f"{name}_dec")
    ports = StructurePorts(
        name=name, cells=list(decoder.cells), inputs=list(decoder.inputs)
    )

    layer_gates = (("NOR4", "NOR2"), ("NAND4", "NAND2"), ("AOI22", "AOI21"))
    current = list(decoder.outputs)
    for level in range(levels):
        width = max(4, int(round(sharing * max(len(current), word_bits))))
        wide, narrow = layer_gates[level % len(layer_gates)]
        nxt: List[int] = []
        for index in range(width):
            fanin_count = 4 if len(current) >= 4 else 2
            fanin = generator.sample(current, min(fanin_count, len(current)))
            gate_type = wide if len(fanin) > 2 else narrow
            cell, (out,) = circuit.add_gate(
                gate_type, fanin, name=f"{name}_l{level}_{index}"
            )
            ports.cells.append(cell)
            nxt.append(out)
        current = nxt

    for bit in range(word_bits):
        fanin = generator.sample(current, min(4, len(current)))
        gate_type = "OAI22" if len(fanin) > 2 else "OR2"
        cell, (out,) = circuit.add_gate(gate_type, fanin, name=f"{name}_b{bit}")
        ports.cells.append(cell)
        ports.outputs.append(out)
    return ports


# ----------------------------------------------------------------------
# Multiplier
# ----------------------------------------------------------------------
def build_multiplier(
    circuit: CircuitBuilder,
    bits: int,
    inputs: Optional[Sequence[int]] = None,
    name: str = "mul",
) -> StructurePorts:
    """Array multiplier: AND partial products + full-adder reduction array.

    ``bits**2`` AND2 gates plus ~``bits**2`` FA cells; operand wires fan out
    to ``bits`` partial-product gates each — a classic datapath GTL.
    """
    if bits < 2:
        raise GenerationError("multiplier needs >= 2 bits")
    wires = _resolve_inputs(circuit, 2 * bits, inputs)
    a, b = wires[:bits], wires[bits:]
    ports = StructurePorts(name=name, inputs=list(wires))

    # Partial products pp[i][j] = a[j] & b[i]
    pp: List[List[int]] = []
    for i in range(bits):
        row: List[int] = []
        for j in range(bits):
            cell, (w,) = circuit.add_gate("AND2", [a[j], b[i]], name=f"{name}_pp{i}_{j}")
            ports.cells.append(cell)
            row.append(w)
        pp.append(row)

    # Ripple-carry array reduction.
    acc = list(pp[0])  # bits wires, weight j
    ports.outputs.append(acc[0])
    for i in range(1, bits):
        carry: Optional[int] = None
        next_acc: List[int] = []
        for j in range(bits):
            addend = pp[i][j]
            prev = acc[j + 1] if j + 1 < len(acc) else None
            operands = [w for w in (prev, addend, carry) if w is not None]
            if len(operands) == 1:
                next_acc.append(operands[0])
                carry = None
            elif len(operands) == 2:
                cell, outs = circuit.add_gate("HA", operands, name=f"{name}_ha{i}_{j}")
                ports.cells.append(cell)
                next_acc.append(outs[0])
                carry = outs[1]
            else:
                cell, outs = circuit.add_gate("FA", operands, name=f"{name}_fa{i}_{j}")
                ports.cells.append(cell)
                next_acc.append(outs[0])
                carry = outs[1]
        if carry is not None:
            next_acc.append(carry)
        ports.outputs.append(next_acc[0])
        acc = next_acc
    ports.outputs.extend(acc[1:])
    return ports


# ----------------------------------------------------------------------
# Random glue logic
# ----------------------------------------------------------------------
_GLUE_GATES = (
    ("INV", 0.18),
    ("BUF", 0.05),
    ("NAND2", 0.22),
    ("NOR2", 0.12),
    ("AND2", 0.08),
    ("OR2", 0.08),
    ("XOR2", 0.05),
    ("NAND3", 0.07),
    ("AOI21", 0.05),
    ("OAI21", 0.04),
    ("DFF", 0.06),
)


def build_random_glue(
    circuit: CircuitBuilder,
    num_gates: int,
    rng: RngLike = None,
    locality: int = 200,
    num_primary_inputs: Optional[int] = None,
    name: str = "glue",
) -> StructurePorts:
    """Random control-logic DAG with a post-synthesis gate mix.

    Gates draw inputs from recently created wires within a ``locality``
    window (plus occasional long-range wires), which yields the mildly
    local connectivity and Rent exponents (~0.6-0.8) of real control logic
    rather than a fully random graph.
    """
    if num_gates < 1:
        raise GenerationError("glue needs >= 1 gate")
    generator = ensure_rng(rng)
    if num_primary_inputs is None:
        num_primary_inputs = max(4, num_gates // 20)
    ports = StructurePorts(name=name)
    ports.inputs = circuit.new_wires(num_primary_inputs, prefix=f"{name}_pi")

    pool: List[int] = list(ports.inputs)
    names = [g for g, _ in _GLUE_GATES]
    weights = [w for _, w in _GLUE_GATES]
    for index in range(num_gates):
        gate_type = generator.choices(names, weights)[0]
        fanin = circuit.library[gate_type].num_inputs
        inputs: List[int] = []
        for _ in range(fanin):
            if generator.random() < 0.9 and len(pool) > 1:
                low = max(0, len(pool) - locality)
                inputs.append(pool[generator.randrange(low, len(pool))])
            else:
                inputs.append(pool[generator.randrange(len(pool))])
        cell, outs = circuit.add_gate(gate_type, inputs, name=f"{name}_{index}")
        ports.cells.append(cell)
        pool.extend(outs)
    # The most recent wires are the block's outputs (undriven fanout).
    ports.outputs = pool[-max(1, num_gates // 25) :]
    return ports


def build_modular_glue(
    circuit: CircuitBuilder,
    total_gates: int,
    modules: int = 0,
    rng: RngLike = None,
    rent_coefficient: float = 1.8,
    rent_exponent: float = 0.65,
    name: str = "glue",
) -> List[StructurePorts]:
    """Background logic organized as Rent-typical connected modules.

    Real ASICs are hierarchies of functional units, not one homogeneous
    random graph: wiring demand is distributed over many mild module-level
    clusters instead of piling up at the die center.  Modules are built
    sequentially; module ``m`` reads ``rent_coefficient * size**rent_exponent``
    wires sampled from earlier modules (ring-biased), which gives every
    module an external cut at its Rent expectation — so ordinary modules do
    *not* register as GTLs, only genuinely tangled structures do.

    Returns one :class:`StructurePorts` per module.
    """
    if total_gates < 1:
        raise GenerationError("glue needs >= 1 gate")
    generator = ensure_rng(rng)
    if modules <= 0:
        modules = max(1, min(48, total_gates // 400))
    per_module = max(10, total_gates // modules)
    cross_inputs = max(8, int(round(rent_coefficient * per_module**rent_exponent)))

    blocks: List[StructurePorts] = []
    wire_pools: List[List[int]] = []
    for index in range(modules):
        if index == 0:
            inputs = None  # fresh primary inputs
        else:
            # Mostly the previous module (ring locality), some from any.
            inputs = []
            for _ in range(cross_inputs):
                if generator.random() < 0.7:
                    pool = wire_pools[index - 1]
                else:
                    pool = wire_pools[generator.randrange(index)]
                inputs.append(generator.choice(pool))
        block = _glue_module(
            circuit, per_module, generator, inputs, f"{name}_m{index}"
        )
        blocks.append(block)
        pool = block.internal_wires or (list(block.inputs) + list(block.outputs))
        wire_pools.append(pool)
    # Close the ring: module 0 consumes wires of the last module through
    # buffer gates counted in module 0.
    if modules > 1:
        for serial in range(min(cross_inputs, len(wire_pools[-1]))):
            wire = generator.choice(wire_pools[-1])
            cell, (out,) = circuit.add_gate("BUF", [wire], name=f"{name}_ring{serial}")
            blocks[0].cells.append(cell)
            blocks[0].outputs.append(out)
    return blocks


def _glue_module(
    circuit: CircuitBuilder,
    num_gates: int,
    generator,
    input_wires: Optional[List[int]],
    name: str,
) -> StructurePorts:
    """One glue module; like :func:`build_random_glue` but with externally
    supplied primary-input wires (cross-module connectivity)."""
    ports = StructurePorts(name=name)
    if input_wires is None:
        count = max(8, int(round(1.8 * num_gates**0.65)))
        ports.inputs = circuit.new_wires(count, prefix=f"{name}_pi")
    else:
        ports.inputs = list(input_wires)

    pool: List[int] = list(ports.inputs)
    names = [g for g, _ in _GLUE_GATES]
    weights = [w for _, w in _GLUE_GATES]
    locality = max(20, num_gates // 4)
    for index in range(num_gates):
        gate_type = generator.choices(names, weights)[0]
        fanin = circuit.library[gate_type].num_inputs
        inputs: List[int] = []
        for _ in range(fanin):
            if generator.random() < 0.9 and len(pool) > 1:
                low = max(0, len(pool) - locality)
                inputs.append(pool[generator.randrange(low, len(pool))])
            else:
                inputs.append(pool[generator.randrange(len(pool))])
        cell, outs = circuit.add_gate(gate_type, inputs, name=f"{name}_{index}")
        ports.cells.append(cell)
        pool.extend(outs)
    ports.outputs = pool[-max(1, num_gates // 25) :]
    ports.internal_wires = pool[len(ports.inputs) :]
    return ports
