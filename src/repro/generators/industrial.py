"""The "industrial circuit" substitute (Table 3, Figures 1/6/7).

The paper's industrial 65 nm ASIC contained five ROM blocks that were
dissolved into ordinary logic for timing closure; those dissolved ROMs are
exactly the GTLs its method finds (Table 3: four blocks of ~32K cells and
one of ~11K), and they show up as distinct congestion blobs in part of the
die (Fig 1).  This generator reproduces that situation at configurable
scale: modular background glue (a hierarchy of sparsely bridged functional
units, like a real ASIC floorplan), five dissolved-ROM blocks each serving a
specific *home module* (so placement anchors them at distinct locations),
and boundary IO pads.  Ground-truth ROM membership is retained so the
designed-vs-found comparison of Table 3 is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import GenerationError
from repro.generators.circuit_builder import CircuitBuilder
from repro.generators.structures import (
    StructurePorts,
    build_dissolved_rom,
    build_modular_glue,
)
from repro.netlist.hypergraph import Netlist
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class IndustrialSpec:
    """Parameters of the industrial-like design.

    Attributes:
        glue_gates: total background glue gate count.
        glue_modules: number of glue modules (0 = auto, ~1 per 400 gates).
        rom_blocks: ``(addr_bits, word_bits)`` per dissolved ROM block.  The
            default follows Table 3's shape — four equal large blocks plus
            one at roughly a third of their size.
        num_pads: boundary IO pads.
        tap_fraction: fraction of ROM outputs consumed by glue.
    """

    glue_gates: int = 12000
    glue_modules: int = 0
    rom_blocks: Tuple[Tuple[int, int], ...] = (
        (6, 64),
        (6, 64),
        (6, 64),
        (6, 64),
        (5, 24),
    )
    num_pads: int = 128
    tap_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.glue_gates < 100:
            raise GenerationError("glue_gates must be >= 100")
        if len(self.rom_blocks) < 1:
            raise GenerationError("need at least one ROM block")
        for addr, word in self.rom_blocks:
            if addr < 3 or word < 4:
                raise GenerationError(f"ROM block ({addr}, {word}) too small")
        if not 0 <= self.tap_fraction <= 1:
            raise GenerationError("tap_fraction must be in [0, 1]")


def generate_industrial(
    spec: IndustrialSpec = IndustrialSpec(), seed: RngLike = None
) -> Tuple[Netlist, List[frozenset]]:
    """Generate the industrial-like design.

    Returns ``(netlist, ground_truth)`` with one frozenset of cell indices
    per dissolved ROM block, in ``spec.rom_blocks`` order.
    """
    rng = ensure_rng(seed)
    circuit = CircuitBuilder()

    modules = build_modular_glue(
        circuit,
        spec.glue_gates,
        modules=spec.glue_modules,
        rng=rng,
        name="core",
    )

    ground_truth: List[frozenset] = []
    num_modules = len(modules)
    for index, (addr_bits, word_bits) in enumerate(spec.rom_blocks):
        # Each ROM serves a distinct home module, so placement anchors the
        # blocks at distinct spots on the die (Fig 1's separate blobs).
        home = (index * max(1, num_modules // max(1, len(spec.rom_blocks)))) % num_modules
        home_wires = list(modules[home].inputs) + list(modules[home].outputs)
        inputs = [rng.choice(home_wires) for _ in range(addr_bits)]
        ports = build_dissolved_rom(
            circuit,
            addr_bits,
            word_bits,
            rng=rng,
            inputs=inputs,
            name=f"rom{index}",
        )
        ground_truth.append(frozenset(ports.cells))
        neighbor_wires = home_wires + list(
            modules[(home + 1) % num_modules].inputs
        ) + list(modules[(home + 1) % num_modules].outputs)
        for serial, wire in enumerate(ports.outputs):
            if rng.random() > spec.tap_fraction:
                continue
            other = rng.choice(neighbor_wires)
            cell, _ = circuit.add_gate(
                "NAND2", [wire, other], name=f"rom{index}_tap{serial}"
            )
            modules[home].cells.append(cell)

    pad_candidates: List[int] = []
    for block in modules:
        pad_candidates.extend(block.inputs[:4])
    for index in range(spec.num_pads):
        wire = pad_candidates[index % len(pad_candidates)]
        circuit.add_pad(wire, name=f"pad{index}")

    return circuit.finish(), ground_truth
