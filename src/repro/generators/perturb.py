"""Netlist perturbation: controlled noise for robustness studies.

The finder's claims should survive netlist noise — ECO edits, slightly
different synthesis runs, or measurement error in the model.  This module
rewires a controlled fraction of pins to random cells, preserving sizes
and degrees-in-expectation, so robustness can be swept against noise rate
(``bench_robustness``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import GenerationError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist
from repro.utils.rng import RngLike, ensure_rng


def rewire_pins(
    netlist: Netlist, fraction: float, rng: RngLike = None
) -> Netlist:
    """Rewire ``fraction`` of all pin incidences to uniformly random cells.

    Each selected (net, pin) incidence is reattached to a random cell
    (fixed cells excluded as targets).  Net count, net degrees and cell
    count are preserved; nets degenerating to a single distinct cell are
    kept (and dropped at build time if singleton).

    Args:
        netlist: the design to perturb.
        fraction: pin rewire probability in [0, 1].
        rng: seed for reproducibility.
    """
    if not 0 <= fraction <= 1:
        raise GenerationError("fraction must be in [0, 1]")
    generator = ensure_rng(rng)
    targets = netlist.movable_cells() or list(range(netlist.num_cells))

    builder = NetlistBuilder()
    for cell in range(netlist.num_cells):
        view = netlist.cell(cell)
        builder.add_cell(
            name=view.name, area=view.area, pin_count=None, fixed=view.fixed
        )
    for net in range(netlist.num_nets):
        members: List[int] = []
        for cell in netlist.cells_of_net(net):
            if generator.random() < fraction:
                members.append(generator.choice(targets))
            else:
                members.append(cell)
        distinct = list(dict.fromkeys(members))
        if distinct:
            builder.add_net(netlist.net_name(net), distinct)
    return builder.build(drop_singleton_nets=True)
