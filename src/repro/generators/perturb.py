"""Netlist perturbation: controlled noise for robustness studies.

The finder's claims should survive netlist noise — ECO edits, slightly
different synthesis runs, or measurement error in the model.  This module
moves a controlled fraction of pins to random cells under a *moving-pin*
model: a rewired (net, slot) incidence detaches from its cell and
reattaches to a random movable target, carrying its pin with it (explicit
pin counts drop by one on the source and rise by one on the target).  Net
count, net degrees, cell count and the total pin count are all preserved
exactly, so perturbed netlists stay comparable across noise rates
(``bench_robustness``) and remain eligible for incremental re-detection
(the density-aware score exponent depends on total pins; see
:mod:`repro.incremental.engine`).

With ``return_delta=True`` the emitted :class:`NetlistDelta` is exactly
``diff(base, perturbed)`` — perturbation doubles as the delta-generator
fixture for incremental tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.errors import GenerationError
from repro.incremental.delta import CellEdit, NetEdit, NetlistDelta
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist
from repro.utils.rng import RngLike, ensure_rng


def rewire_pins(
    netlist: Netlist,
    fraction: float,
    rng: RngLike = None,
    return_delta: bool = False,
) -> Union[Netlist, Tuple[Netlist, NetlistDelta]]:
    """Move ``fraction`` of all pin incidences to uniformly random cells.

    Each selected (net, slot) incidence is reattached to a random movable
    cell; moves that would duplicate a member already on the net (or land
    back on the source) are skipped, so net degrees are preserved exactly
    — not just in expectation — and the total pin count is invariant.

    Args:
        netlist: the design to perturb.
        fraction: pin rewire probability in [0, 1].
        rng: seed for reproducibility (same seed -> identical netlist and
            identical delta).
        return_delta: also return the :class:`NetlistDelta` of the edit,
            structurally equal to ``diff(netlist, result)``.

    Returns:
        The perturbed netlist, or ``(netlist, delta)`` when
        ``return_delta`` is set.  ``fraction=0`` returns the input netlist
        unchanged (same object) without rebuilding.
    """
    if not 0 <= fraction <= 1:
        raise GenerationError("fraction must be in [0, 1]")
    if fraction == 0:
        return (netlist, NetlistDelta()) if return_delta else netlist
    generator = ensure_rng(rng)
    targets = netlist.movable_cells() or list(range(netlist.num_cells))

    # Pin movement per cell (source -1 / target +1 per moved slot) and the
    # post-edit membership of every net, base order preserved.
    movement: Dict[int, int] = {}
    new_members: List[List[int]] = []
    changed_nets: List[int] = []
    for net in range(netlist.num_nets):
        members = list(netlist.cells_of_net(net))
        on_net = set(members)
        changed = False
        for slot, cell in enumerate(members):
            if generator.random() >= fraction:
                continue
            target = generator.choice(targets)
            if target == cell or target in on_net:
                continue  # degree-preserving: never duplicate a member
            members[slot] = target
            on_net.discard(cell)
            on_net.add(target)
            movement[cell] = movement.get(cell, 0) - 1
            movement[target] = movement.get(target, 0) + 1
            changed = True
        new_members.append(members)
        if changed:
            changed_nets.append(net)

    builder = NetlistBuilder()
    for cell in range(netlist.num_cells):
        builder.add_cell(
            name=netlist.cell_name(cell),
            area=netlist.cell_area(cell),
            pin_count=netlist.cell_pin_count(cell) + movement.get(cell, 0),
            fixed=netlist.cell_is_fixed(cell),
        )
    for net in range(netlist.num_nets):
        builder.add_net(netlist.net_name(net), new_members[net])
    perturbed = builder.build(drop_singleton_nets=False)
    if not return_delta:
        return perturbed

    cells_changed = tuple(
        CellEdit(
            name=netlist.cell_name(cell),
            area=netlist.cell_area(cell),
            pin_count=netlist.cell_pin_count(cell) + shift,
            fixed=netlist.cell_is_fixed(cell),
        )
        for cell, shift in sorted(movement.items())
        if shift != 0
    )
    nets_changed = tuple(
        NetEdit(
            name=netlist.net_name(net),
            old_members=tuple(
                netlist.cell_name(c) for c in netlist.cells_of_net(net)
            ),
            new_members=tuple(
                netlist.cell_name(c) for c in new_members[net]
            ),
        )
        for net in changed_nets
    )
    delta = NetlistDelta(cells_changed=cells_changed, nets_changed=nets_changed)
    return perturbed, delta
