"""Gate library and wire-level circuit builder.

The paper's motivation is gate-level: synthesis maps logic to standard cells
(NAND4, AOI, OAI, ...) whose pin counts drive the density-aware metric.
:class:`CircuitBuilder` provides the wire/gate abstraction the structure
generators are written against, and lowers to the hypergraph
:class:`~repro.netlist.hypergraph.Netlist` (wires become nets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GenerationError, NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist


@dataclass(frozen=True)
class Gate:
    """One standard-cell type.

    Attributes:
        name: library name, e.g. ``"NAND4"``.
        num_inputs: input pin count.
        num_outputs: output pin count (1 for simple gates).
        area: placement area.
    """

    name: str
    num_inputs: int
    num_outputs: int = 1
    area: float = 1.0

    @property
    def pin_count(self) -> int:
        """Total signal pins of the gate."""
        return self.num_inputs + self.num_outputs


class GateLibrary:
    """A collection of :class:`Gate` types indexed by name."""

    def __init__(self, gates: Iterable[Gate] = ()) -> None:
        self._gates: Dict[str, Gate] = {}
        for gate in gates:
            self.add(gate)

    def add(self, gate: Gate) -> None:
        """Register ``gate`` (replacing any same-named type)."""
        self._gates[gate.name] = gate

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def __getitem__(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise GenerationError(f"unknown gate type {name!r}") from None

    def names(self) -> List[str]:
        """All registered gate-type names."""
        return sorted(self._gates)

    def and_gate(self, fanin: int) -> Gate:
        """An ``AND<fanin>`` gate, registered on demand for wide fanins."""
        name = f"AND{fanin}"
        if name not in self._gates:
            if fanin < 2:
                raise GenerationError("and_gate fanin must be >= 2")
            self.add(Gate(name, num_inputs=fanin, area=0.5 + 0.25 * fanin))
        return self._gates[name]

    def or_gate(self, fanin: int) -> Gate:
        """An ``OR<fanin>`` gate, registered on demand."""
        name = f"OR{fanin}"
        if name not in self._gates:
            if fanin < 2:
                raise GenerationError("or_gate fanin must be >= 2")
            self.add(Gate(name, num_inputs=fanin, area=0.5 + 0.25 * fanin))
        return self._gates[name]


def _default_gates() -> List[Gate]:
    # Areas follow the paper's premise that complex cells (NAND4, AOI, OAI)
    # "give the most function per unit area": their pin-per-area density is
    # roughly twice that of simple control gates, whose drive-strength
    # sizing makes them comparatively roomy.
    return [
        Gate("INV", 1, area=0.8),
        Gate("BUF", 1, area=0.8),
        Gate("NAND2", 2, area=1.0),
        Gate("NOR2", 2, area=1.0),
        Gate("AND2", 2, area=1.1),
        Gate("OR2", 2, area=1.1),
        Gate("XOR2", 2, area=1.5),
        Gate("XNOR2", 2, area=1.5),
        Gate("NAND3", 3, area=0.9),
        Gate("NOR3", 3, area=0.9),
        Gate("NAND4", 4, area=1.0),
        Gate("NOR4", 4, area=1.0),
        Gate("AOI21", 3, area=0.85),
        Gate("OAI21", 3, area=0.85),
        Gate("AOI22", 4, area=1.0),
        Gate("OAI22", 4, area=1.0),
        Gate("MUX2", 3, area=1.3),
        Gate("DFF", 2, area=3.0),  # D + Q (clock nets are not modeled)
        Gate("FA", 3, num_outputs=2, area=2.2),  # full adder: a,b,cin -> s,cout
        Gate("HA", 2, num_outputs=2, area=1.6),  # half adder
    ]


#: The default standard-cell library used by all structure generators.
DEFAULT_LIBRARY = GateLibrary(_default_gates())


class CircuitBuilder:
    """Wire-level netlist construction.

    Wires are integer handles; gates connect to wires; :meth:`finish` lowers
    wires to hypergraph nets.  Gate pin counts are recorded explicitly on the
    cells so the density-aware metric sees the library pin counts even when
    an input is left unconnected.
    """

    def __init__(self, library: GateLibrary = DEFAULT_LIBRARY) -> None:
        self.library = library
        self._builder = NetlistBuilder()
        self._wire_names: List[Optional[str]] = []
        self._wire_members: List[List[int]] = []
        self._gate_types: List[str] = []

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Cells created so far."""
        return self._builder.num_cells

    @property
    def num_wires(self) -> int:
        """Wires created so far."""
        return len(self._wire_members)

    def gate_type(self, cell: int) -> str:
        """Library type name of ``cell`` (``"PAD"`` for pads)."""
        return self._gate_types[cell]

    # ------------------------------------------------------------------
    def new_wire(self, name: Optional[str] = None) -> int:
        """Create a wire and return its handle."""
        self._wire_names.append(name)
        self._wire_members.append([])
        return len(self._wire_members) - 1

    def new_wires(self, count: int, prefix: str = "") -> List[int]:
        """Create ``count`` wires (named ``<prefix><i>`` when prefix given)."""
        return [
            self.new_wire(f"{prefix}{i}" if prefix else None) for i in range(count)
        ]

    def connect(self, wire: int, cell: int) -> None:
        """Attach ``cell`` to ``wire`` (idempotent)."""
        if not 0 <= wire < len(self._wire_members):
            raise GenerationError(f"unknown wire {wire}")
        members = self._wire_members[wire]
        if cell not in members:
            members.append(cell)

    def add_gate(
        self,
        gate_type: str,
        inputs: Sequence[int],
        outputs: Optional[Sequence[int]] = None,
        name: Optional[str] = None,
    ) -> Tuple[int, List[int]]:
        """Instantiate a gate.

        Args:
            gate_type: library type name.
            inputs: wires driving the gate's inputs (at most
                ``gate.num_inputs``; fewer models unconnected pins).
            outputs: wires the gate drives; fresh wires are created when
                omitted.
            name: instance name (auto-generated when omitted).

        Returns:
            ``(cell_index, output_wires)``.
        """
        gate = self.library[gate_type]
        if len(inputs) > gate.num_inputs:
            raise GenerationError(
                f"{gate_type} takes {gate.num_inputs} inputs, got {len(inputs)}"
            )
        if outputs is None:
            outputs = [self.new_wire() for _ in range(gate.num_outputs)]
        elif len(outputs) != gate.num_outputs:
            raise GenerationError(
                f"{gate_type} drives {gate.num_outputs} outputs, got {len(outputs)}"
            )
        cell = self._builder.add_cell(
            name=name, area=gate.area, pin_count=gate.pin_count
        )
        self._gate_types.append(gate_type)
        for wire in inputs:
            self.connect(wire, cell)
        for wire in outputs:
            self.connect(wire, cell)
        return cell, list(outputs)

    def add_pad(self, wire: int, name: Optional[str] = None) -> int:
        """Add a fixed IO pad driving/observing ``wire``."""
        cell = self._builder.add_cell(name=name, area=1.0, pin_count=1, fixed=True)
        self._gate_types.append("PAD")
        self.connect(wire, cell)
        return cell

    # ------------------------------------------------------------------
    def finish(self, drop_dangling_wires: bool = True) -> Netlist:
        """Lower wires to nets and build the immutable netlist.

        Args:
            drop_dangling_wires: discard wires touching fewer than two cells
                (they carry no connectivity).  When False, single-cell wires
                become single-pin nets.
        """
        for index, members in enumerate(self._wire_members):
            if len(members) < (2 if drop_dangling_wires else 1):
                continue
            name = self._wire_names[index] or f"w{index}"
            try:
                self._builder.add_net(name, members)
            except NetlistError:
                # Duplicate explicit wire names get a unique suffix.
                self._builder.add_net(f"{name}__{index}", members)
        return self._builder.build()
