"""Random hypergraphs with planted GTLs (Section 5.1.1, Table 1).

The paper generates random graphs "based on [Garbers et al. 1990]" whose
tangled structures are known a priori: a background random hypergraph in
which some disjoint cell blocks are made *more connected internally and less
connected externally* than the rest.  This module reproduces that
construction with full ground truth, so miss/over rates (Table 1 columns 9
and 10) can be measured exactly.

Construction per planted block of size ``s``:

* the block's cells are drawn from a global random permutation (so planted
  ids are scattered);
* an internal "window chain" over a shuffled member list guarantees the
  block is connected, then random internal nets are added until the block
  reaches ``internal_nets_per_cell``;
* exactly ``external_links(s)`` 2-3 pin nets tie the block to background
  cells — this is the block's entire net cut, kept far below the Rent-rule
  expectation so the planted block is a genuine GTL.

The background is an independent random hypergraph over the remaining cells
with net degrees drawn from ``net_degree_weights`` and an average of
``background_nets_per_cell`` nets per cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import GenerationError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist
from repro.utils.rng import RngLike, ensure_rng

#: Default net-degree distribution: mostly 2-3 pin nets with a tail, the
#: shape of post-synthesis netlists.
DEFAULT_NET_DEGREES: Tuple[Tuple[int, float], ...] = (
    (2, 0.55),
    (3, 0.25),
    (4, 0.12),
    (5, 0.08),
)


@dataclass(frozen=True)
class PlantedGraphSpec:
    """Parameters of one planted-GTL random graph.

    Attributes:
        num_cells: total |V|.
        gtl_sizes: sizes of the disjoint planted blocks.
        background_nets_per_cell: average nets per background cell.
        internal_nets_per_cell: average internal nets per planted-block cell
            (higher than background = "more connected internally").
        external_links: per-block external net count; ``None`` selects
            ``max(6, round(2 * s**0.35))`` which keeps nGTL scores in the
            0.01-0.1 band Table 1 reports.
        net_degree_weights: (degree, weight) pairs for net sizes.
    """

    num_cells: int
    gtl_sizes: Tuple[int, ...]
    background_nets_per_cell: float = 1.1
    internal_nets_per_cell: float = 2.2
    external_links: Optional[int] = None
    net_degree_weights: Tuple[Tuple[int, float], ...] = DEFAULT_NET_DEGREES

    def __post_init__(self) -> None:
        if self.num_cells < 4:
            raise GenerationError("num_cells must be >= 4")
        if any(s < 4 for s in self.gtl_sizes):
            raise GenerationError("every planted GTL needs >= 4 cells")
        if sum(self.gtl_sizes) > self.num_cells // 2:
            raise GenerationError(
                "planted blocks may cover at most half the graph "
                f"({sum(self.gtl_sizes)} of {self.num_cells})"
            )

    def external_links_for(self, size: int) -> int:
        """External net count for a block of ``size`` cells."""
        if self.external_links is not None:
            return self.external_links
        return max(6, int(round(2.0 * size**0.35)))


def planted_gtl_graph(
    num_cells: int,
    gtl_sizes: Sequence[int],
    seed: RngLike = None,
    spec: Optional[PlantedGraphSpec] = None,
) -> Tuple[Netlist, List[frozenset]]:
    """Generate a random hypergraph with planted GTLs.

    Args:
        num_cells: total cell count.
        gtl_sizes: one entry per planted block.
        seed: RNG seed for reproducibility.
        spec: full parameter set; when given, ``num_cells``/``gtl_sizes``
            must match it (pass-through convenience).

    Returns:
        ``(netlist, ground_truth)`` where ``ground_truth[i]`` is the
        frozenset of cell indices of planted block ``i`` (ordered as in
        ``gtl_sizes``).
    """
    if spec is None:
        spec = PlantedGraphSpec(num_cells=num_cells, gtl_sizes=tuple(gtl_sizes))
    elif spec.num_cells != num_cells or tuple(spec.gtl_sizes) != tuple(gtl_sizes):
        raise GenerationError("spec disagrees with num_cells/gtl_sizes arguments")

    rng = ensure_rng(seed)
    builder = NetlistBuilder()
    builder.add_cells(spec.num_cells, prefix="v")

    permutation = list(range(spec.num_cells))
    rng.shuffle(permutation)

    ground_truth: List[frozenset] = []
    cursor = 0
    net_serial = [0]

    def next_net_name() -> str:
        net_serial[0] += 1
        return f"n{net_serial[0]}"

    degrees = [d for d, _ in spec.net_degree_weights]
    weights = [w for _, w in spec.net_degree_weights]

    def draw_degree(cap: int) -> int:
        degree = rng.choices(degrees, weights)[0]
        return max(2, min(degree, cap))

    for size in spec.gtl_sizes:
        members = permutation[cursor : cursor + size]
        cursor += size
        ground_truth.append(frozenset(members))
        _wire_block(builder, members, spec.internal_nets_per_cell, draw_degree, rng, next_net_name)

    background = permutation[cursor:]
    if len(background) >= 2:
        _wire_block(
            builder, background, spec.background_nets_per_cell, draw_degree, rng, next_net_name
        )

    # External links: each planted block touches the background through a
    # small number of 2-3 pin nets — the block's entire designed cut.
    for block_index, members_set in enumerate(ground_truth):
        members = sorted(members_set)
        links = spec.external_links_for(len(members))
        for _ in range(links):
            inside = rng.choice(members)
            outside_count = rng.choice((1, 1, 2))
            outside = [rng.choice(background) for _ in range(outside_count)]
            builder.add_net(next_net_name(), [inside, *outside])

    netlist = builder.build()
    return netlist, ground_truth


def _wire_block(
    builder: NetlistBuilder,
    members: List[int],
    nets_per_cell: float,
    draw_degree,
    rng,
    next_net_name,
) -> None:
    """Connect ``members`` internally: connectivity chain + random nets."""
    if len(members) < 2:
        return
    shuffled = list(members)
    rng.shuffle(shuffled)

    # Overlapping windows guarantee a connected block.
    chain_nets = 0
    step = 2
    window = 3
    index = 0
    while index < len(shuffled) - 1:
        group = shuffled[index : index + window]
        if len(group) < 2:
            group = shuffled[-2:]
        builder.add_net(next_net_name(), group)
        chain_nets += 1
        index += step

    target = int(round(nets_per_cell * len(members)))
    for _ in range(max(0, target - chain_nets)):
        degree = draw_degree(len(members))
        builder.add_net(next_net_name(), rng.sample(members, degree))
