"""ISPD-05/06-shaped synthetic placement benchmarks (Table 2 substitute).

The real ISPD 2005/2006 benchmarks (bigblue1-3, adaptec1-3) are industrial
netlists that cannot be redistributed here; per DESIGN.md §4 this generator
synthesizes designs of the same character: a sea of small-fanin glue logic
with a realistic net-degree distribution, a ring of fixed IO pads, and a
number of embedded dense structures (dissolved ROMs, decoders, mux clusters,
multipliers) whose membership is retained as ground truth.

Real benchmarks in Bookshelf format remain first-class citizens: parse them
with :mod:`repro.io.bookshelf` and run the same experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import GenerationError
from repro.generators.circuit_builder import CircuitBuilder
from repro.generators.structures import (
    StructurePorts,
    build_carry_lookahead_adder,
    build_decoder,
    build_dissolved_rom,
    build_modular_glue,
    build_multiplier,
    build_mux_tree,
    build_random_glue,
)
from repro.netlist.hypergraph import Netlist
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class EmbeddedStructure:
    """One structure to embed: ``kind`` + its size parameter.

    Supported kinds and the meaning of ``param``:
      * ``"rom"``   — address bits (cells ~ ``2**param * 1.5``)
      * ``"decoder"`` — address bits (cells ~ ``2**param``)
      * ``"mux"``   — data inputs (cells ~ ``param``)
      * ``"cla"``   — adder bits (cells ~ ``3 * param**1.3``)
      * ``"mul"``   — operand bits (cells ~ ``2 * param**2``)
    """

    kind: str
    param: int
    word_bits: int = 32  # only for "rom"

    VALID_KINDS = ("rom", "decoder", "mux", "cla", "mul")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise GenerationError(f"unknown structure kind {self.kind!r}")
        if self.param < 2:
            raise GenerationError("structure param must be >= 2")


@dataclass(frozen=True)
class IspdLikeSpec:
    """Parameters of one synthetic ISPD-like benchmark.

    Attributes:
        name: benchmark name (e.g. ``"bigblue1-like"``).
        glue_gates: number of background glue-logic gates.
        structures: the embedded structures.
        num_pads: fixed IO pads placed on the die boundary.
        tap_fraction: fraction of each structure's outputs consumed by glue
            buffers (models downstream logic; keeps structure cuts realistic).
    """

    name: str
    glue_gates: int
    structures: Tuple[EmbeddedStructure, ...]
    num_pads: int = 64
    tap_fraction: float = 0.75

    def __post_init__(self) -> None:
        if self.glue_gates < 10:
            raise GenerationError("glue_gates must be >= 10")
        if self.num_pads < 4:
            raise GenerationError("num_pads must be >= 4")
        if not 0 <= self.tap_fraction <= 1:
            raise GenerationError("tap_fraction must be in [0, 1]")


def default_bigblue1_like(scale: float = 1.0) -> IspdLikeSpec:
    """A bigblue1-shaped spec: ~17K cells at scale 1.0 (278K in the paper).

    The structure mix mirrors Table 2's finding of GTLs between ~300 and
    ~14K cells: several dissolved ROMs, decoders and datapath blocks.
    """
    return IspdLikeSpec(
        name="bigblue1-like",
        glue_gates=int(12000 * scale),
        structures=(
            EmbeddedStructure("rom", 7, word_bits=48),
            EmbeddedStructure("rom", 6, word_bits=32),
            EmbeddedStructure("decoder", 8),
            EmbeddedStructure("mul", 16),
            EmbeddedStructure("mux", 96),
            EmbeddedStructure("cla", 32),
        ),
        num_pads=96,
    )


def ispd_like_suite(scale: float = 1.0) -> List[IspdLikeSpec]:
    """Specs shaped after the six benchmarks of Table 2.

    Sizes follow the relative |V| proportions of bigblue1-3 and adaptec1-3
    (278K..1.1M cells in the paper), at ``scale`` times a laptop-friendly
    base.  Structure mixes vary the way the paper's found-GTL profiles do:
    bigblue2 has the largest structures, bigblue3 many small ones, the
    adaptecs a moderate datapath-flavored mix.
    """
    return [
        default_bigblue1_like(scale),
        IspdLikeSpec(
            name="bigblue2-like",
            glue_gates=int(24000 * scale),
            structures=(
                EmbeddedStructure("rom", 8, word_bits=96),
                EmbeddedStructure("rom", 7, word_bits=64),
                EmbeddedStructure("rom", 7, word_bits=48),
                EmbeddedStructure("mul", 24),
                EmbeddedStructure("decoder", 8),
            ),
            num_pads=128,
        ),
        IspdLikeSpec(
            name="bigblue3-like",
            glue_gates=int(48000 * scale),
            structures=(
                EmbeddedStructure("rom", 6, word_bits=24),
                EmbeddedStructure("rom", 5, word_bits=16),
                EmbeddedStructure("rom", 7, word_bits=64),
                EmbeddedStructure("decoder", 7),
                EmbeddedStructure("mux", 64),
                EmbeddedStructure("cla", 24),
            ),
            num_pads=192,
        ),
        IspdLikeSpec(
            name="adaptec1-like",
            glue_gates=int(9000 * scale),
            structures=(
                EmbeddedStructure("rom", 6, word_bits=48),
                EmbeddedStructure("rom", 6, word_bits=40),
                EmbeddedStructure("decoder", 6),
                EmbeddedStructure("mul", 12),
            ),
            num_pads=64,
        ),
        IspdLikeSpec(
            name="adaptec2-like",
            glue_gates=int(11000 * scale),
            structures=(
                EmbeddedStructure("rom", 5, word_bits=32),
                EmbeddedStructure("rom", 6, word_bits=56),
                EmbeddedStructure("decoder", 7),
                EmbeddedStructure("mux", 48),
            ),
            num_pads=64,
        ),
        IspdLikeSpec(
            name="adaptec3-like",
            glue_gates=int(20000 * scale),
            structures=(
                EmbeddedStructure("rom", 5, word_bits=24),
                EmbeddedStructure("rom", 5, word_bits=20),
                EmbeddedStructure("rom", 6, word_bits=32),
                EmbeddedStructure("cla", 16),
            ),
            num_pads=96,
        ),
    ]


def generate_ispd_like(
    spec: IspdLikeSpec, seed: RngLike = None
) -> Tuple[Netlist, Dict[str, frozenset]]:
    """Generate the benchmark; returns ``(netlist, ground_truth)``.

    ``ground_truth`` maps structure instance names to their member cells.
    """
    rng = ensure_rng(seed)
    circuit = CircuitBuilder()

    modules = build_modular_glue(
        circuit, spec.glue_gates, rng=rng, name=f"{spec.name}_glue"
    )
    num_modules = len(modules)

    ground_truth: Dict[str, frozenset] = {}
    for index, embedded in enumerate(spec.structures):
        instance = f"{spec.name}_{embedded.kind}{index}"
        # Each structure serves a distinct home module (see industrial.py).
        home = (index * max(1, num_modules // max(1, len(spec.structures)))) % num_modules
        home_wires = list(modules[home].inputs) + list(modules[home].outputs)
        inputs = [rng.choice(home_wires) for _ in range(_input_count(embedded))]
        ports = _build_structure(circuit, embedded, inputs, instance, rng)
        ground_truth[instance] = frozenset(ports.cells)
        _tap_outputs(circuit, ports, home_wires, spec.tap_fraction, rng)

    pad_candidates: List[int] = []
    for block in modules:
        pad_candidates.extend(block.inputs[:4])
    for index in range(spec.num_pads):
        wire = pad_candidates[index % len(pad_candidates)]
        circuit.add_pad(wire, name=f"pad{index}")

    netlist = circuit.finish()
    return netlist, ground_truth


# ----------------------------------------------------------------------
def _input_count(embedded: EmbeddedStructure) -> int:
    if embedded.kind in ("rom", "decoder"):
        return embedded.param
    if embedded.kind == "mux":
        return embedded.param
    if embedded.kind == "cla":
        return 2 * embedded.param + 1
    return 2 * embedded.param  # mul


def _build_structure(
    circuit: CircuitBuilder,
    embedded: EmbeddedStructure,
    inputs: List[int],
    instance: str,
    rng,
) -> StructurePorts:
    if embedded.kind == "rom":
        return build_dissolved_rom(
            circuit,
            embedded.param,
            embedded.word_bits,
            rng=rng,
            inputs=inputs,
            name=instance,
        )
    if embedded.kind == "decoder":
        return build_decoder(circuit, embedded.param, inputs=inputs, name=instance)
    if embedded.kind == "mux":
        return build_mux_tree(circuit, embedded.param, inputs=inputs, name=instance)
    if embedded.kind == "cla":
        return build_carry_lookahead_adder(
            circuit, embedded.param, inputs=inputs, name=instance
        )
    return build_multiplier(circuit, embedded.param, inputs=inputs, name=instance)


def _sample_wires(wires: List[int], count: int, rng) -> List[int]:
    if count <= len(wires):
        return rng.sample(wires, count)
    return [rng.choice(wires) for _ in range(count)]


def _tap_outputs(
    circuit: CircuitBuilder,
    ports: StructurePorts,
    glue_wires: List[int],
    tap_fraction: float,
    rng,
) -> List[int]:
    """Consume a fraction of structure outputs with glue-side gates.

    Each tapped output drives one NAND2 whose other input is a random glue
    wire — downstream consumption without merging the structure into glue.
    """
    taps: List[int] = []
    for wire in ports.outputs:
        if rng.random() > tap_fraction:
            continue
        other = rng.choice(glue_wires)
        cell, _ = circuit.add_gate(
            "NAND2", [wire, other], name=f"{ports.name}_tap{len(taps)}"
        )
        taps.append(cell)
    return taps


