"""Synthetic workload generators.

* :mod:`repro.generators.random_gtl` — random hypergraphs with planted GTLs
  and full ground truth (Table 1, Figs 2-3).
* :mod:`repro.generators.circuit_builder` — gate library and wiring builder
  for gate-level netlists.
* :mod:`repro.generators.structures` — logic structures (adders, decoders,
  mux trees, ROMs, multipliers, glue logic).
* :mod:`repro.generators.ispd_like` — ISPD-05/06-shaped placement
  benchmarks with embedded structures (Table 2, Figs 4-5 substitute).
* :mod:`repro.generators.industrial` — an "industrial" design whose GTLs
  are dissolved ROM blocks (Table 3, Figs 1/6/7 substitute).
"""

from repro.generators.random_gtl import (
    DEFAULT_NET_DEGREES,
    PlantedGraphSpec,
    planted_gtl_graph,
)
from repro.generators.circuit_builder import (
    Gate,
    GateLibrary,
    CircuitBuilder,
    DEFAULT_LIBRARY,
)
from repro.generators.structures import (
    StructurePorts,
    build_carry_lookahead_adder,
    build_decoder,
    build_dissolved_rom,
    build_multiplier,
    build_mux_tree,
    build_random_glue,
    build_ripple_carry_adder,
)
from repro.generators.ispd_like import (
    EmbeddedStructure,
    IspdLikeSpec,
    default_bigblue1_like,
    generate_ispd_like,
)
from repro.generators.industrial import IndustrialSpec, generate_industrial
from repro.generators.perturb import rewire_pins

__all__ = [
    "DEFAULT_NET_DEGREES",
    "PlantedGraphSpec",
    "planted_gtl_graph",
    "Gate",
    "GateLibrary",
    "CircuitBuilder",
    "DEFAULT_LIBRARY",
    "StructurePorts",
    "build_carry_lookahead_adder",
    "build_decoder",
    "build_dissolved_rom",
    "build_multiplier",
    "build_mux_tree",
    "build_random_glue",
    "build_ripple_carry_adder",
    "EmbeddedStructure",
    "IspdLikeSpec",
    "default_bigblue1_like",
    "generate_ispd_like",
    "IndustrialSpec",
    "generate_industrial",
    "rewire_pins",
]
