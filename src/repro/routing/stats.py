"""Congestion statistics in the paper's reporting vocabulary.

Section 5.1.3 quantifies Figure 7 with three numbers:

* nets passing through >=100% congested tiles (179K -> 36K, ~5x),
* nets passing through >=90% congested tiles (217K -> 113K, ~2x),
* the "average congestion metric": take the worst 20% congested nets and
  average the congestion of all routing tiles those nets pass through
  (136% -> 91%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.routing.congestion import CongestionMap


@dataclass(frozen=True)
class CongestionStats:
    """Summary statistics of one congestion map.

    Attributes:
        nets_through_100: nets whose bounding box touches a >=100% tile.
        nets_through_90: nets whose bounding box touches a >=90% tile.
        average_congestion: mean tile occupancy over the worst 20% of nets
            (the paper's "average congestion metric", e.g. 1.36 = 136%).
        max_occupancy: worst single-tile occupancy.
        mean_occupancy: average tile occupancy.
    """

    nets_through_100: int
    nets_through_90: int
    average_congestion: float
    max_occupancy: float
    mean_occupancy: float

    def summary(self) -> str:
        """One-line report matching the paper's phrasing."""
        return (
            f"nets through 100% tiles: {self.nets_through_100}, "
            f"through 90% tiles: {self.nets_through_90}, "
            f"avg congestion (worst 20% nets): {self.average_congestion:.0%}, "
            f"peak tile occupancy: {self.max_occupancy:.0%}"
        )


def congestion_stats(
    cmap: CongestionMap, worst_fraction: float = 0.2
) -> CongestionStats:
    """Compute :class:`CongestionStats` for ``cmap``."""
    occupancy = cmap.occupancy
    through_100 = 0
    through_90 = 0
    per_net: list = []
    for net, box in enumerate(cmap.net_boxes):
        if box is None:
            continue
        ix0, iy0, ix1, iy1 = box
        region = occupancy[ix0 : ix1 + 1, iy0 : iy1 + 1]
        peak = float(region.max())
        if peak >= 1.0:
            through_100 += 1
        if peak >= 0.9:
            through_90 += 1
        per_net.append(float(region.mean()))

    if per_net:
        values = np.sort(np.array(per_net))[::-1]
        count = max(1, int(round(worst_fraction * values.size)))
        average = float(values[:count].mean())
    else:
        average = 0.0

    return CongestionStats(
        nets_through_100=through_100,
        nets_through_90=through_90,
        average_congestion=average,
        max_occupancy=float(occupancy.max()),
        mean_occupancy=float(occupancy.mean()),
    )
