"""RUDY congestion estimation.

RUDY (Rectangular Uniform wire DensitY) spreads each net's expected wiring
demand — its half-perimeter wirelength — uniformly over its bounding box.
Summing over nets gives a per-tile demand map whose ratio to tile capacity
is the congestion (occupancy) the paper's Figure 1/7 heat maps show.  RUDY
is the standard placement-stage congestion model; it reproduces the paper's
phenomenon (tightly packed tangled logic => demand far above capacity) with
no global router in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.netlist.hypergraph import Netlist
from repro.placement.placer import Placement


@dataclass
class CongestionMap:
    """Per-tile wiring demand over a placed design.

    Attributes:
        demand: ``(nx, ny)`` array of wiring demand per tile.
        capacity: scalar routing capacity of one tile.
        tile_width, tile_height: tile dimensions.
        net_boxes: per-net bounding boxes in tile coordinates
            ``(ix0, iy0, ix1, iy1)`` inclusive, or None for ignored nets.
    """

    demand: np.ndarray
    capacity: float
    tile_width: float
    tile_height: float
    net_boxes: List[Optional[Tuple[int, int, int, int]]]

    @property
    def occupancy(self) -> np.ndarray:
        """Demand / capacity per tile (1.0 = 100% congested)."""
        return self.demand / self.capacity

    def net_tiles(self, net: int) -> List[Tuple[int, int]]:
        """Tiles covered by ``net``'s bounding box (empty for ignored nets)."""
        box = self.net_boxes[net]
        if box is None:
            return []
        ix0, iy0, ix1, iy1 = box
        return [(i, j) for i in range(ix0, ix1 + 1) for j in range(iy0, iy1 + 1)]

    def net_congestion(self, net: int) -> float:
        """Average occupancy of the tiles ``net`` passes through."""
        box = self.net_boxes[net]
        if box is None:
            return 0.0
        ix0, iy0, ix1, iy1 = box
        region = self.occupancy[ix0 : ix1 + 1, iy0 : iy1 + 1]
        return float(region.mean())

    def max_net_occupancy(self, net: int) -> float:
        """Worst tile occupancy under ``net``'s bounding box."""
        box = self.net_boxes[net]
        if box is None:
            return 0.0
        ix0, iy0, ix1, iy1 = box
        return float(self.occupancy[ix0 : ix1 + 1, iy0 : iy1 + 1].max())


def build_congestion_map(
    placement: Placement,
    grid: Tuple[int, int] = (32, 32),
    capacity: Optional[float] = None,
    target_average_occupancy: float = 0.55,
) -> CongestionMap:
    """RUDY map of ``placement`` on a ``grid`` of tiles.

    Args:
        placement: a placed design.
        grid: ``(nx, ny)`` tile counts.
        capacity: per-tile routing capacity.  When omitted it is calibrated
            so the *average* tile occupancy equals
            ``target_average_occupancy`` — mirroring a technology where the
            design is routable on average but hotspots overshoot.
    """
    nx, ny = grid
    if nx < 1 or ny < 1:
        raise PlacementError("grid must be at least 1x1")
    die = placement.die
    netlist = placement.netlist
    tile_w = die.width / nx
    tile_h = die.height / ny
    demand = np.zeros((nx, ny))
    boxes: List[Optional[Tuple[int, int, int, int]]] = []

    for net in range(netlist.num_nets):
        cells = list(netlist.cells_of_net(net))
        if len(cells) < 2:
            boxes.append(None)
            continue
        xs = placement.x[cells]
        ys = placement.y[cells]
        x0, x1 = float(xs.min()), float(xs.max())
        y0, y1 = float(ys.min()), float(ys.max())
        # The wiring demand is the *true* half-perimeter wirelength (with a
        # small floor for pin access); the box is only the area the demand
        # is spread over.  Degenerate boxes are widened to half a tile so
        # stacked pins register, without inflating their demand.
        hpwl = max(x1 - x0, 0.0) + max(y1 - y0, 0.0)
        hpwl = max(hpwl, 0.5 * min(tile_w, tile_h) * 0.25)
        if x1 - x0 < tile_w / 2:
            mid = (x0 + x1) / 2
            x0, x1 = mid - tile_w / 4, mid + tile_w / 4
        if y1 - y0 < tile_h / 2:
            mid = (y0 + y1) / 2
            y0, y1 = mid - tile_h / 4, mid + tile_h / 4
        x0, y0 = die.clamp(x0, y0)
        x1, y1 = die.clamp(x1, y1)

        box_area = (x1 - x0) * (y1 - y0)
        density = hpwl / box_area if box_area > 0 else 0.0

        ix0 = min(nx - 1, max(0, int(x0 / tile_w)))
        ix1 = min(nx - 1, max(0, int(np.nextafter(x1, -np.inf) / tile_w)))
        iy0 = min(ny - 1, max(0, int(y0 / tile_h)))
        iy1 = min(ny - 1, max(0, int(np.nextafter(y1, -np.inf) / tile_h)))
        ix1, iy1 = max(ix0, ix1), max(iy0, iy1)
        boxes.append((ix0, iy0, ix1, iy1))

        for i in range(ix0, ix1 + 1):
            tile_x0, tile_x1 = i * tile_w, (i + 1) * tile_w
            overlap_x = min(x1, tile_x1) - max(x0, tile_x0)
            if overlap_x <= 0:
                continue
            for j in range(iy0, iy1 + 1):
                tile_y0, tile_y1 = j * tile_h, (j + 1) * tile_h
                overlap_y = min(y1, tile_y1) - max(y0, tile_y0)
                if overlap_y <= 0:
                    continue
                demand[i, j] += density * overlap_x * overlap_y

    if capacity is None:
        mean_demand = float(demand.mean())
        if mean_demand <= 0:
            capacity = 1.0
        else:
            capacity = mean_demand / target_average_occupancy
    return CongestionMap(
        demand=demand,
        capacity=float(capacity),
        tile_width=tile_w,
        tile_height=tile_h,
        net_boxes=boxes,
    )
