"""RUDY congestion estimation.

RUDY (Rectangular Uniform wire DensitY) spreads each net's expected wiring
demand — its half-perimeter wirelength — uniformly over its bounding box.
Summing over nets gives a per-tile demand map whose ratio to tile capacity
is the congestion (occupancy) the paper's Figure 1/7 heat maps show.  RUDY
is the standard placement-stage congestion model; it reproduces the paper's
phenomenon (tightly packed tangled logic => demand far above capacity) with
no global router in the loop.

The map is built batched on the netlist's flat pin arrays: per-net bounding
boxes come from the shared ``reduceat`` kernel
(:meth:`repro.netlist.arrays.NetlistArrays.net_bboxes`), degenerate boxes
are widened with ``np.where``, and tile demand accumulates as one matrix
product of per-axis tile-coverage factors instead of a nested Python tile
loop.  The original scalar per-net loop stays as the reference
implementation (``backend="python"`` or ``REPRO_SCALAR_BACKEND=1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.netlist.arrays import geometry_backend
from repro.placement.placer import Placement


@dataclass
class CongestionMap:
    """Per-tile wiring demand over a placed design.

    Attributes:
        demand: ``(nx, ny)`` array of wiring demand per tile.
        capacity: scalar routing capacity of one tile.
        tile_width, tile_height: tile dimensions.
        net_boxes: per-net bounding boxes in tile coordinates
            ``(ix0, iy0, ix1, iy1)`` inclusive, or None for ignored nets.
    """

    demand: np.ndarray
    capacity: float
    tile_width: float
    tile_height: float
    net_boxes: List[Optional[Tuple[int, int, int, int]]]
    # Demand is write-once, so the derived occupancy grid is computed once
    # on first access and never invalidated (net_congestion /
    # max_net_occupancy loops would otherwise re-divide the grid per net).
    _occupancy: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def occupancy(self) -> np.ndarray:
        """Demand / capacity per tile (1.0 = 100% congested), cached."""
        if self._occupancy is None:
            self._occupancy = self.demand / self.capacity
        return self._occupancy

    def net_tiles(self, net: int) -> List[Tuple[int, int]]:
        """Tiles covered by ``net``'s bounding box (empty for ignored nets)."""
        box = self.net_boxes[net]
        if box is None:
            return []
        ix0, iy0, ix1, iy1 = box
        return [(i, j) for i in range(ix0, ix1 + 1) for j in range(iy0, iy1 + 1)]

    def net_congestion(self, net: int) -> float:
        """Average occupancy of the tiles ``net`` passes through."""
        box = self.net_boxes[net]
        if box is None:
            return 0.0
        ix0, iy0, ix1, iy1 = box
        region = self.occupancy[ix0 : ix1 + 1, iy0 : iy1 + 1]
        return float(region.mean())

    def max_net_occupancy(self, net: int) -> float:
        """Worst tile occupancy under ``net``'s bounding box."""
        box = self.net_boxes[net]
        if box is None:
            return 0.0
        ix0, iy0, ix1, iy1 = box
        return float(self.occupancy[ix0 : ix1 + 1, iy0 : iy1 + 1].max())


def _demand_python(
    placement: Placement, nx: int, ny: int, tile_w: float, tile_h: float
) -> Tuple[np.ndarray, List[Optional[Tuple[int, int, int, int]]]]:
    """Scalar reference: one Python loop per net, one per covered tile."""
    die = placement.die
    netlist = placement.netlist
    demand = np.zeros((nx, ny))
    boxes: List[Optional[Tuple[int, int, int, int]]] = []

    for net in range(netlist.num_nets):
        cells = list(netlist.cells_of_net(net))
        if len(cells) < 2:
            boxes.append(None)
            continue
        xs = placement.x[cells]
        ys = placement.y[cells]
        x0, x1 = float(xs.min()), float(xs.max())
        y0, y1 = float(ys.min()), float(ys.max())
        # The wiring demand is the *true* half-perimeter wirelength (with a
        # small floor for pin access); the box is only the area the demand
        # is spread over.  Degenerate boxes are widened to half a tile so
        # stacked pins register, without inflating their demand.
        hpwl = max(x1 - x0, 0.0) + max(y1 - y0, 0.0)
        hpwl = max(hpwl, 0.5 * min(tile_w, tile_h) * 0.25)
        if x1 - x0 < tile_w / 2:
            mid = (x0 + x1) / 2
            x0, x1 = mid - tile_w / 4, mid + tile_w / 4
        if y1 - y0 < tile_h / 2:
            mid = (y0 + y1) / 2
            y0, y1 = mid - tile_h / 4, mid + tile_h / 4
        x0, y0 = die.clamp(x0, y0)
        x1, y1 = die.clamp(x1, y1)

        box_area = (x1 - x0) * (y1 - y0)
        density = hpwl / box_area if box_area > 0 else 0.0

        ix0 = min(nx - 1, max(0, int(x0 / tile_w)))
        ix1 = min(nx - 1, max(0, int(np.nextafter(x1, -np.inf) / tile_w)))
        iy0 = min(ny - 1, max(0, int(y0 / tile_h)))
        iy1 = min(ny - 1, max(0, int(np.nextafter(y1, -np.inf) / tile_h)))
        ix1, iy1 = max(ix0, ix1), max(iy0, iy1)
        boxes.append((ix0, iy0, ix1, iy1))

        for i in range(ix0, ix1 + 1):
            tile_x0, tile_x1 = i * tile_w, (i + 1) * tile_w
            overlap_x = min(x1, tile_x1) - max(x0, tile_x0)
            if overlap_x <= 0:
                continue
            for j in range(iy0, iy1 + 1):
                tile_y0, tile_y1 = j * tile_h, (j + 1) * tile_h
                overlap_y = min(y1, tile_y1) - max(y0, tile_y0)
                if overlap_y <= 0:
                    continue
                demand[i, j] += density * overlap_x * overlap_y
    return demand, boxes


def _demand_numpy(
    placement: Placement, nx: int, ny: int, tile_w: float, tile_h: float
) -> Tuple[np.ndarray, List[Optional[Tuple[int, int, int, int]]]]:
    """Batched RUDY: reduceat bounding boxes + coverage-factor matmul."""
    die = placement.die
    netlist = placement.netlist
    arrays = netlist.arrays
    num_nets = netlist.num_nets
    demand = np.zeros((nx, ny))
    boxes: List[Optional[Tuple[int, int, int, int]]] = [None] * num_nets
    keep = np.flatnonzero(arrays.net_degrees >= 2)
    if keep.size == 0:
        return demand, boxes

    x0, x1, y0, y1 = arrays.net_bboxes(placement.x, placement.y)
    x0, x1, y0, y1 = x0[keep], x1[keep], y0[keep], y1[keep]

    hpwl = np.maximum(x1 - x0, 0.0) + np.maximum(y1 - y0, 0.0)
    hpwl = np.maximum(hpwl, 0.5 * min(tile_w, tile_h) * 0.25)
    narrow_x = x1 - x0 < tile_w / 2
    mid_x = (x0 + x1) / 2
    x0 = np.where(narrow_x, mid_x - tile_w / 4, x0)
    x1 = np.where(narrow_x, mid_x + tile_w / 4, x1)
    narrow_y = y1 - y0 < tile_h / 2
    mid_y = (y0 + y1) / 2
    y0 = np.where(narrow_y, mid_y - tile_h / 4, y0)
    y1 = np.where(narrow_y, mid_y + tile_h / 4, y1)
    x0 = np.minimum(np.maximum(x0, 0.0), die.width)
    x1 = np.minimum(np.maximum(x1, 0.0), die.width)
    y0 = np.minimum(np.maximum(y0, 0.0), die.height)
    y1 = np.minimum(np.maximum(y1, 0.0), die.height)

    box_area = (x1 - x0) * (y1 - y0)
    density = np.zeros_like(hpwl)
    np.divide(hpwl, box_area, out=density, where=box_area > 0)

    ix0 = np.clip((x0 / tile_w).astype(np.int64), 0, nx - 1)
    ix1 = np.clip(
        (np.nextafter(x1, -np.inf) / tile_w).astype(np.int64), 0, nx - 1
    )
    iy0 = np.clip((y0 / tile_h).astype(np.int64), 0, ny - 1)
    iy1 = np.clip(
        (np.nextafter(y1, -np.inf) / tile_h).astype(np.int64), 0, ny - 1
    )
    ix1 = np.maximum(ix0, ix1)
    iy1 = np.maximum(iy0, iy1)

    for net, box in zip(
        keep.tolist(), zip(ix0.tolist(), iy0.tolist(), ix1.tolist(), iy1.tolist())
    ):
        boxes[net] = box

    # A net's demand is separable: tile (i, j) receives
    # ``density * coverage_x(i) * coverage_y(j)`` where the per-axis tile
    # coverage is a difference of tile boundaries clipped to the box
    # (identical to ``min(x1, tile_x1) - max(x0, tile_x0)`` on overlapping
    # tiles and exactly zero elsewhere).  The sum over nets of these rank-1
    # outer products is one (nets x nx)^T @ (nets x ny) matrix product —
    # no per-(net, tile) expansion at all.
    boundaries_x = np.arange(nx + 1) * tile_w
    boundaries_y = np.arange(ny + 1) * tile_h
    coverage_x = np.diff(
        np.clip(boundaries_x[None, :], x0[:, None], x1[:, None]), axis=1
    )
    coverage_y = np.diff(
        np.clip(boundaries_y[None, :], y0[:, None], y1[:, None]), axis=1
    )
    demand += coverage_x.T @ (density[:, None] * coverage_y)
    return demand, boxes


def build_congestion_map(
    placement: Placement,
    grid: Tuple[int, int] = (32, 32),
    capacity: Optional[float] = None,
    target_average_occupancy: float = 0.55,
    backend: Optional[str] = None,
) -> CongestionMap:
    """RUDY map of ``placement`` on a ``grid`` of tiles.

    Args:
        placement: a placed design.
        grid: ``(nx, ny)`` tile counts.
        capacity: per-tile routing capacity.  When omitted it is calibrated
            so the *average* tile occupancy equals
            ``target_average_occupancy`` — mirroring a technology where the
            design is routable on average but hotspots overshoot.
        backend: ``"numpy"`` (batched, default) or ``"python"`` (scalar
            per-net reference); ``None`` honors ``REPRO_SCALAR_BACKEND``.
    """
    nx, ny = grid
    if nx < 1 or ny < 1:
        raise PlacementError("grid must be at least 1x1")
    die = placement.die
    tile_w = die.width / nx
    tile_h = die.height / ny
    if geometry_backend(backend) == "python":
        demand, boxes = _demand_python(placement, nx, ny, tile_w, tile_h)
    else:
        demand, boxes = _demand_numpy(placement, nx, ny, tile_w, tile_h)

    if capacity is None:
        mean_demand = float(demand.mean())
        if mean_demand <= 0:
            capacity = 1.0
        else:
            capacity = mean_demand / target_average_occupancy
    return CongestionMap(
        demand=demand,
        capacity=float(capacity),
        tile_width=tile_w,
        tile_height=tile_h,
        net_boxes=boxes,
    )
