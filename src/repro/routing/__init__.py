"""Routing-congestion substrate.

A RUDY-style probabilistic congestion estimator on a tile grid plus the
congestion statistics the paper reports for Figures 1 and 7: the number of
nets passing through >=100% / >=90% congested tiles and the average
congestion of the worst 20% of nets.
"""

from repro.routing.congestion import CongestionMap, build_congestion_map
from repro.routing.stats import CongestionStats, congestion_stats
from repro.routing.wirelength import total_wirelength, wirelength_report

__all__ = [
    "CongestionMap",
    "build_congestion_map",
    "CongestionStats",
    "congestion_stats",
    "total_wirelength",
    "wirelength_report",
]
