"""Wirelength models for placed designs.

Placement quality and routing demand are quoted in different wirelength
models; this module implements the standard ladder:

* **HPWL** — half-perimeter of the net bounding box (lower bound, exact
  for 2-3 pins);
* **star** — sum of pin distances to the net's centroid;
* **clique** — average pairwise Manhattan distance, scaled to the
  2-pin-equivalent;
* **spanning tree (RMST)** — Manhattan minimum spanning tree via Prim,
  the usual router-independent estimate for multi-pin nets.

HPWL and star totals over a whole design run batched on the netlist's
flat pin arrays (:class:`repro.netlist.arrays.NetlistArrays`) via
``reduceat``; the per-net scalar functions stay as the reference
implementation (``backend="python"`` or ``REPRO_SCALAR_BACKEND=1``) and
remain the only path for clique/RMST and explicit net subsets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.netlist.arrays import geometry_backend
from repro.placement.placer import Placement


def _net_points(placement: Placement, net: int) -> np.ndarray:
    cells = list(placement.netlist.cells_of_net(net))
    return np.stack([placement.x[cells], placement.y[cells]], axis=1)


def hpwl_net(placement: Placement, net: int) -> float:
    """Half-perimeter wirelength of one net."""
    points = _net_points(placement, net)
    if len(points) < 2:
        return 0.0
    spans = points.max(axis=0) - points.min(axis=0)
    return float(spans.sum())


def star_net(placement: Placement, net: int) -> float:
    """Star wirelength: pin-to-centroid Manhattan distances."""
    points = _net_points(placement, net)
    if len(points) < 2:
        return 0.0
    centroid = points.mean(axis=0)
    return float(np.abs(points - centroid).sum())


def clique_net(placement: Placement, net: int) -> float:
    """Clique wirelength: mean pairwise distance times (degree - 1)."""
    points = _net_points(placement, net)
    degree = len(points)
    if degree < 2:
        return 0.0
    total = 0.0
    for i in range(degree):
        deltas = np.abs(points[i + 1 :] - points[i])
        total += float(deltas.sum())
    pairs = degree * (degree - 1) / 2
    return total / pairs * (degree - 1)


def rmst_net(placement: Placement, net: int) -> float:
    """Manhattan minimum spanning tree length (Prim's algorithm)."""
    points = _net_points(placement, net)
    degree = len(points)
    if degree < 2:
        return 0.0
    in_tree = np.zeros(degree, dtype=bool)
    in_tree[0] = True
    best = np.abs(points - points[0]).sum(axis=1)
    total = 0.0
    for _ in range(degree - 1):
        best_masked = np.where(in_tree, np.inf, best)
        nxt = int(best_masked.argmin())
        total += float(best_masked[nxt])
        in_tree[nxt] = True
        candidate = np.abs(points - points[nxt]).sum(axis=1)
        best = np.minimum(best, candidate)
    return total


_MODELS = {
    "hpwl": hpwl_net,
    "star": star_net,
    "clique": clique_net,
    "rmst": rmst_net,
}


def _total_star_vectorized(placement: Placement) -> float:
    arrays = placement.netlist.arrays
    if arrays.net_cells.size == 0:
        return 0.0
    xs = placement.x[arrays.net_cells]
    ys = placement.y[arrays.net_cells]
    starts = arrays.net_ptr[:-1]
    degrees = arrays.net_degrees.astype(np.float64)
    centroid_x = np.add.reduceat(xs, starts) / degrees
    centroid_y = np.add.reduceat(ys, starts) / degrees
    spread = np.add.reduceat(
        np.abs(xs - centroid_x[arrays.pin_net]), starts
    ) + np.add.reduceat(np.abs(ys - centroid_y[arrays.pin_net]), starts)
    spread = spread[arrays.net_degrees >= 2]
    return float(spread.sum()) if spread.size else 0.0


def total_wirelength(
    placement: Placement,
    model: str = "hpwl",
    nets: Optional[Iterable[int]] = None,
    backend: Optional[str] = None,
) -> float:
    """Total wirelength of ``placement`` under the named model.

    HPWL and star totals over the whole design are computed batched on the
    flat pin arrays; clique/RMST (sequential per-net algorithms) and
    explicit ``nets`` subsets always take the scalar per-net path.
    """
    if model not in _MODELS:
        raise ReproError(f"unknown wirelength model {model!r}; use {sorted(_MODELS)}")
    if nets is None and geometry_backend(backend) == "numpy":
        if model == "hpwl":
            return placement.hpwl(backend="numpy")
        if model == "star":
            return _total_star_vectorized(placement)
    function = _MODELS[model]
    if nets is None:
        nets = range(placement.netlist.num_nets)
    return sum(function(placement, net) for net in nets)


def wirelength_report(
    placement: Placement, backend: Optional[str] = None
) -> Dict[str, float]:
    """All four models for one placement (HPWL <= RMST always)."""
    return {
        model: total_wirelength(placement, model, backend=backend)
        for model in _MODELS
    }
