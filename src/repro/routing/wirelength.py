"""Wirelength models for placed designs.

Placement quality and routing demand are quoted in different wirelength
models; this module implements the standard ladder:

* **HPWL** — half-perimeter of the net bounding box (lower bound, exact
  for 2-3 pins);
* **star** — sum of pin distances to the net's centroid;
* **clique** — average pairwise Manhattan distance, scaled to the
  2-pin-equivalent;
* **spanning tree (RMST)** — Manhattan minimum spanning tree via Prim,
  the usual router-independent estimate for multi-pin nets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.placement.placer import Placement


def _net_points(placement: Placement, net: int) -> np.ndarray:
    cells = list(placement.netlist.cells_of_net(net))
    return np.stack([placement.x[cells], placement.y[cells]], axis=1)


def hpwl_net(placement: Placement, net: int) -> float:
    """Half-perimeter wirelength of one net."""
    points = _net_points(placement, net)
    if len(points) < 2:
        return 0.0
    spans = points.max(axis=0) - points.min(axis=0)
    return float(spans.sum())


def star_net(placement: Placement, net: int) -> float:
    """Star wirelength: pin-to-centroid Manhattan distances."""
    points = _net_points(placement, net)
    if len(points) < 2:
        return 0.0
    centroid = points.mean(axis=0)
    return float(np.abs(points - centroid).sum())


def clique_net(placement: Placement, net: int) -> float:
    """Clique wirelength: mean pairwise distance times (degree - 1)."""
    points = _net_points(placement, net)
    degree = len(points)
    if degree < 2:
        return 0.0
    total = 0.0
    for i in range(degree):
        deltas = np.abs(points[i + 1 :] - points[i])
        total += float(deltas.sum())
    pairs = degree * (degree - 1) / 2
    return total / pairs * (degree - 1)


def rmst_net(placement: Placement, net: int) -> float:
    """Manhattan minimum spanning tree length (Prim's algorithm)."""
    points = _net_points(placement, net)
    degree = len(points)
    if degree < 2:
        return 0.0
    in_tree = np.zeros(degree, dtype=bool)
    in_tree[0] = True
    best = np.abs(points - points[0]).sum(axis=1)
    total = 0.0
    for _ in range(degree - 1):
        best_masked = np.where(in_tree, np.inf, best)
        nxt = int(best_masked.argmin())
        total += float(best_masked[nxt])
        in_tree[nxt] = True
        candidate = np.abs(points - points[nxt]).sum(axis=1)
        best = np.minimum(best, candidate)
    return total


_MODELS = {
    "hpwl": hpwl_net,
    "star": star_net,
    "clique": clique_net,
    "rmst": rmst_net,
}


def total_wirelength(
    placement: Placement,
    model: str = "hpwl",
    nets: Optional[Iterable[int]] = None,
) -> float:
    """Total wirelength of ``placement`` under the named model."""
    if model not in _MODELS:
        raise ReproError(f"unknown wirelength model {model!r}; use {sorted(_MODELS)}")
    function = _MODELS[model]
    if nets is None:
        nets = range(placement.netlist.num_nets)
    return sum(function(placement, net) for net in nets)


def wirelength_report(placement: Placement) -> Dict[str, float]:
    """All four models for one placement (HPWL <= RMST always)."""
    return {model: total_wirelength(placement, model) for model in _MODELS}
