"""Incremental detection: patch a cached report instead of recomputing it.

The full finder is embarrassingly parallel over seeds, and each seed's
outcome depends only on its footprint's neighborhood (see
:mod:`repro.incremental.dirty`).  So an edited netlist needs Phase I–III
re-run only for the seeds whose footprint intersects the edit's dirty
region; every other per-seed outcome is replayed from a recorded
:class:`SeedTrace` and the finder's reduce step
(:func:`repro.finder.finder.reduce_outcomes`) is re-run over the merged
outcome list.  Because the reduce is pure in its inputs, the patched
report is **identical** to a cold run on the edited netlist — the parity
invariant every test here asserts, on both kernel backends.

Reuse is only sound when the netlist-global inputs of a seed job are
unchanged; :func:`incremental_detect` falls back to a full traced run
when they are not:

* cells added or removed, or any cell's ``fixed`` flag flipped (the
  eligible-seed set, growth exclusion and index space shift);
* the total pin count changed (it parametrizes the density-aware score
  exponent, coupling every group's score to the whole netlist);
* the per-index seed plan diverged (weighted seed strategies sample by
  netlist statistics) — per-seed, not global;
* the dirty fraction exceeds ``full_threshold`` (patching would re-run
  nearly everything anyway, so skip the bookkeeping).

Persistence: :func:`detect_with_reuse` keeps, per result-store row space,

* the report itself (``KIND_FINDER_REPORT`` under the job fingerprint);
* the seed trace (``trace-<job fp>``, :data:`KIND_FINDER_TRACE`);
* a provenance row for patched reports (``prov-<job fp>``,
  :data:`KIND_INCREMENTAL_PROVENANCE`: ``base_fingerprint``,
  ``delta_fingerprint``, ``dirty_cells``);
* a per-config head pointer (``head-<config fp>``,
  :data:`KIND_INCREMENTAL_HEAD`) naming the latest traced run, so the
  next edit finds its base automatically;
* the base design itself as a packed ``.nla`` under
  ``<cache_dir>/designs/`` so a later ``repro detect --base <fp>`` can
  diff against it without the original file.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.finder.candidate import CandidateGTL
from repro.finder.config import FinderConfig
from repro.finder.finder import (
    TangledLogicFinder,
    _process_batch,
    _SeedOutcome,
    plan_seed_jobs,
    reduce_outcomes,
)
from repro.finder.result import FinderReport
from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import GroupStats
from repro.obs import trace
from repro.service.codec import config_from_dict, config_to_dict
from repro.service.fingerprint import (
    fingerprint_config,
    fingerprint_netlist,
    job_fingerprint,
)
from repro.service.store import ResultStore
from repro.utils.timer import Timer

from repro.incremental.delta import NetlistDelta, delta_fingerprint, diff
from repro.incremental.dirty import DirtyRegion, dirty_region

#: Store row kinds introduced by incremental detection.
KIND_FINDER_TRACE = "finder_trace"
KIND_INCREMENTAL_PROVENANCE = "incremental_provenance"
KIND_INCREMENTAL_HEAD = "incremental_head"

#: Version of the persisted seed-trace payload.
TRACE_VERSION = 1

#: Default dirty-fraction ceiling beyond which patching falls back to a
#: full recompute.
DEFAULT_FULL_THRESHOLD = 0.25

#: Subdirectory of the store's cache dir holding packed base designs.
DESIGNS_SUBDIR = "designs"


def _trace_key(job_fingerprint_: str) -> str:
    return f"trace-{job_fingerprint_}"


def _provenance_key(job_fingerprint_: str) -> str:
    return f"prov-{job_fingerprint_}"


def _head_key(config_fingerprint_: str) -> str:
    return f"head-{config_fingerprint_}"


# ----------------------------------------------------------------------
# Seed traces
# ----------------------------------------------------------------------
def _candidate_to_row(candidate: Optional[CandidateGTL]) -> Optional[List[Any]]:
    if candidate is None:
        return None
    stats = candidate.stats
    return [
        sorted(candidate.cells),
        candidate.score,
        [stats.size, stats.cut, stats.pins, stats.internal_nets, stats.avg_pins],
        candidate.rent_exponent,
        candidate.seed,
    ]


def _candidate_from_row(row: Optional[Sequence[Any]]) -> Optional[CandidateGTL]:
    if row is None:
        return None
    cells, score, stats_row, rent, seed = row
    size, cut, pins, internal_nets, avg_pins = stats_row
    return CandidateGTL(
        cells=frozenset(int(c) for c in cells),
        score=float(score),
        stats=GroupStats(
            size=int(size), cut=int(cut), pins=int(pins),
            internal_nets=int(internal_nets), avg_pins=float(avg_pins),
        ),
        rent_exponent=float(rent),
        seed=int(seed),
    )


@dataclass(frozen=True)
class SeedTrace:
    """Everything needed to replay one finder run seed-by-seed.

    Attributes:
        netlist_fingerprint: content fingerprint of the traced netlist.
        config: the finder configuration of the run.
        num_cells: cell count of the traced netlist (reuse guard).
        num_pins: total pin count of the traced netlist (reuse guard — it
            parametrizes the density-aware score exponent).
        jobs: the ``(seed_cell, rng_seed)`` plan, in execution order.
        outcomes: one ``_SeedOutcome`` per job, same order.
    """

    netlist_fingerprint: str
    config: FinderConfig
    num_cells: int
    num_pins: int
    jobs: Tuple[Tuple[int, int], ...]
    outcomes: Tuple[_SeedOutcome, ...]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe storage form (NaN Rent estimates encode as ``null``)."""
        return {
            "version": TRACE_VERSION,
            "netlist_fingerprint": self.netlist_fingerprint,
            "config": config_to_dict(self.config),
            "num_cells": self.num_cells,
            "num_pins": self.num_pins,
            "jobs": [[cell, rng] for cell, rng in self.jobs],
            "outcomes": [
                [
                    _candidate_to_row(candidate),
                    None if math.isnan(rent) else rent,
                    orderings,
                    list(footprint),
                ]
                for candidate, rent, orderings, footprint in self.outcomes
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SeedTrace":
        if not isinstance(data, dict) or data.get("version") != TRACE_VERSION:
            raise ServiceError(
                f"unsupported seed-trace payload "
                f"(version {data.get('version') if isinstance(data, dict) else '?'!r}, "
                f"this build speaks {TRACE_VERSION})"
            )
        try:
            return cls(
                netlist_fingerprint=str(data["netlist_fingerprint"]),
                config=config_from_dict(data["config"]),
                num_cells=int(data["num_cells"]),
                num_pins=int(data["num_pins"]),
                jobs=tuple((int(c), int(r)) for c, r in data["jobs"]),
                outcomes=tuple(
                    (
                        _candidate_from_row(candidate_row),
                        float("nan") if rent is None else float(rent),
                        int(orderings),
                        tuple(int(c) for c in footprint),
                    )
                    for candidate_row, rent, orderings, footprint in data["outcomes"]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed seed-trace payload: {error}") from error


def run_traced(
    netlist: Netlist,
    config: FinderConfig,
    pool: Optional[Any] = None,
    pool_key: Optional[str] = None,
) -> Tuple[FinderReport, SeedTrace]:
    """One full finder run, returning the report plus its seed trace."""
    finder = TangledLogicFinder(netlist, config)
    report = finder.run(pool=pool, pool_key=pool_key)
    seed_trace = SeedTrace(
        netlist_fingerprint=fingerprint_netlist(netlist),
        config=config,
        num_cells=netlist.num_cells,
        num_pins=netlist.num_pins,
        jobs=tuple(finder.last_jobs),
        outcomes=tuple(finder.last_outcomes),
    )
    return report, seed_trace


# ----------------------------------------------------------------------
# Incremental detection
# ----------------------------------------------------------------------
@dataclass
class IncrementalResult:
    """Outcome of one :func:`incremental_detect` / :func:`detect_with_reuse`.

    ``mode`` is ``"incremental"`` (patched from a base trace), ``"full"``
    (cold run; ``reason`` says why), or ``"cached"`` (store answered the
    exact job fingerprint; no trace work at all).
    """

    report: FinderReport
    trace: Optional[SeedTrace] = None
    mode: str = "full"
    reason: str = ""
    base_fingerprint: str = ""
    delta_fingerprint: str = ""
    dirty_cells: int = 0
    dirty_fraction: float = 0.0
    seeds_total: int = 0
    seeds_recomputed: int = 0

    @property
    def seeds_reused(self) -> int:
        return self.seeds_total - self.seeds_recomputed

    def provenance(self) -> Dict[str, Any]:
        """The provenance payload stored next to a patched report."""
        return {
            "mode": self.mode,
            "reason": self.reason,
            "base_fingerprint": self.base_fingerprint,
            "delta_fingerprint": self.delta_fingerprint,
            "dirty_cells": self.dirty_cells,
            "dirty_fraction": self.dirty_fraction,
            "seeds_total": self.seeds_total,
            "seeds_recomputed": self.seeds_recomputed,
        }

    def summary(self) -> str:
        if self.mode == "incremental":
            return (
                f"incremental: {self.seeds_recomputed}/{self.seeds_total} "
                f"seed(s) re-run ({self.dirty_cells} dirty cell(s), "
                f"{self.dirty_fraction:.1%} of the netlist)"
            )
        if self.mode == "cached":
            return "cached: exact fingerprint answered from the store"
        return f"full recompute ({self.reason or 'no base'})"


def _full_fallback_reason(
    new: Netlist, seed_trace: SeedTrace, delta: NetlistDelta
) -> Optional[str]:
    """Why per-seed reuse would be unsound for this edit, or ``None``."""
    if delta.cells_added or delta.cells_removed:
        return "cell set changed"
    if new.num_cells != seed_trace.num_cells:
        return "cell count changed"
    return None


def incremental_detect(
    base: Netlist,
    new: Netlist,
    seed_trace: SeedTrace,
    config: Optional[FinderConfig] = None,
    *,
    delta: Optional[NetlistDelta] = None,
    halo: int = 0,
    full_threshold: float = DEFAULT_FULL_THRESHOLD,
    pool: Optional[Any] = None,
    pool_key: Optional[str] = None,
) -> IncrementalResult:
    """Patch a traced base run onto the edited netlist ``new``.

    Re-runs Phase I–III only for seeds whose recorded footprint intersects
    the edit's dirty region (or whose planned ``(seed_cell, rng_seed)``
    job diverged), replays every other outcome from ``seed_trace``, and
    re-reduces.  The returned report is identical to a cold run on ``new``
    — full-recompute parity is the invariant, not an approximation.
    """
    config = config or seed_trace.config
    if config.seed is None:
        raise ServiceError(
            "incremental detection requires a pinned config.seed "
            "(nondeterministic runs cannot be replayed)"
        )
    if fingerprint_config(config) != fingerprint_config(seed_trace.config):
        raise ServiceError(
            "seed trace was recorded under a different finder config; "
            "re-run the base detection with the requested config first"
        )
    base_fp = fingerprint_netlist(base)
    if base_fp != seed_trace.netlist_fingerprint:
        raise ServiceError(
            "seed trace does not belong to the supplied base netlist "
            f"(trace {seed_trace.netlist_fingerprint[:12]}, "
            f"base {base_fp[:12]})"
        )

    with Timer() as timer, trace.span("incremental.detect"):
        with trace.span("incremental.diff"):
            if delta is None:
                delta = diff(base, new)
        delta_fp = delta_fingerprint(base_fp, delta)

        def _full(reason: str, region: Optional[DirtyRegion] = None) -> IncrementalResult:
            if trace.enabled():
                trace.counter("incremental.full_fallbacks").add(1)
            report, new_trace = run_traced(new, config, pool=pool, pool_key=pool_key)
            return IncrementalResult(
                report=report,
                trace=new_trace,
                mode="full",
                reason=reason,
                base_fingerprint=base_fp,
                delta_fingerprint=delta_fp,
                dirty_cells=len(region.cells) if region else 0,
                dirty_fraction=region.fraction if region else 0.0,
                seeds_total=len(new_trace.jobs),
                seeds_recomputed=len(new_trace.jobs),
            )

        reason = _full_fallback_reason(new, seed_trace, delta)
        if reason is not None:
            return _full(reason)
        if new.num_pins != seed_trace.num_pins:
            # Total pins parametrize the gtl_sd score exponent: every
            # group's score shifts, so nothing recorded can be reused.
            return _full("total pin count changed")
        if any(
            edit.fixed != base.cell_is_fixed(base.cell_index(edit.name))
            for edit in delta.cells_changed
        ):
            return _full("fixed flags changed")

        region = dirty_region(new, delta, halo=halo)
        if region.fraction > full_threshold:
            return _full(
                f"dirty fraction {region.fraction:.1%} exceeds "
                f"threshold {full_threshold:.1%}",
                region,
            )

        jobs = plan_seed_jobs(new, config)
        if len(jobs) != len(seed_trace.jobs):
            return _full("seed plan size changed", region)

        dirty_indices = [
            i
            for i, job in enumerate(jobs)
            if job != seed_trace.jobs[i]
            or region.intersects(seed_trace.outcomes[i][3])
        ]

        with trace.span(
            "incremental.patch",
            dirty_seeds=len(dirty_indices),
            total_seeds=len(jobs),
        ):
            merged: List[_SeedOutcome] = list(seed_trace.outcomes)
            if dirty_indices:
                dirty_jobs = [jobs[i] for i in dirty_indices]
                if pool is not None:
                    recomputed = pool.run_seed_jobs(
                        new, config, dirty_jobs, key=pool_key
                    )
                else:
                    recomputed = _process_batch(new, config, dirty_jobs)
                for index, outcome in zip(dirty_indices, recomputed):
                    merged[index] = outcome
            gtls, global_rent, num_candidates, orderings, rent_fallback = (
                reduce_outcomes(new, config, merged)
            )
        if trace.enabled():
            trace.counter("incremental.seeds_reused").add(
                len(jobs) - len(dirty_indices)
            )
            trace.counter("incremental.seeds_recomputed").add(len(dirty_indices))

    report = FinderReport(
        gtls=gtls,
        config=config,
        rent_exponent=global_rent,
        num_orderings=orderings,
        num_candidates=num_candidates,
        runtime_seconds=timer.elapsed,
        rent_fallback=rent_fallback,
    )
    new_trace = SeedTrace(
        netlist_fingerprint=fingerprint_netlist(new),
        config=config,
        num_cells=new.num_cells,
        num_pins=new.num_pins,
        jobs=tuple(jobs),
        outcomes=tuple(merged),
    )
    return IncrementalResult(
        report=report,
        trace=new_trace,
        mode="incremental",
        base_fingerprint=base_fp,
        delta_fingerprint=delta_fp,
        dirty_cells=len(region.cells),
        dirty_fraction=region.fraction,
        seeds_total=len(jobs),
        seeds_recomputed=len(dirty_indices),
    )


# ----------------------------------------------------------------------
# Store-backed entry point
# ----------------------------------------------------------------------
def design_path(store: ResultStore, netlist_fingerprint: str) -> str:
    """Where the packed base design for ``netlist_fingerprint`` lives."""
    return os.path.join(
        store.cache_dir, DESIGNS_SUBDIR, f"{netlist_fingerprint}.nla"
    )


def load_trace(store: ResultStore, job_fp: str) -> Optional[SeedTrace]:
    """The persisted :class:`SeedTrace` of job ``job_fp``, or ``None``."""
    payload = store.get_payload(_trace_key(job_fp), kind=KIND_FINDER_TRACE)
    if payload is None:
        return None
    try:
        return SeedTrace.from_dict(payload)
    except ServiceError:
        store.evict(_trace_key(job_fp))
        return None


def _persist(
    store: ResultStore,
    netlist: Netlist,
    config: FinderConfig,
    job_fp: str,
    result: IncrementalResult,
) -> None:
    """Write report, trace, provenance, head pointer and design blob."""
    store.put(job_fp, result.report)
    if result.trace is not None:
        store.put_payload(
            _trace_key(job_fp),
            result.trace.to_dict(),
            kind=KIND_FINDER_TRACE,
            num_items=len(result.trace.jobs),
            runtime_seconds=result.report.runtime_seconds,
        )
    if result.mode == "incremental":
        store.put_payload(
            _provenance_key(job_fp),
            result.provenance(),
            kind=KIND_INCREMENTAL_PROVENANCE,
            num_items=result.dirty_cells,
        )
    netlist_fp = fingerprint_netlist(netlist)
    store.put_payload(
        _head_key(fingerprint_config(config)),
        {"netlist_fingerprint": netlist_fp, "job_fingerprint": job_fp},
        kind=KIND_INCREMENTAL_HEAD,
    )
    path = design_path(store, netlist_fp)
    if not os.path.exists(path):
        from repro.io import write_packed

        os.makedirs(os.path.dirname(path), exist_ok=True)
        write_packed(netlist, path)


def detect_with_reuse(
    netlist: Netlist,
    config: FinderConfig,
    store: Optional[ResultStore],
    *,
    base: Optional[Netlist] = None,
    base_fingerprint: str = "",
    delta: Optional[NetlistDelta] = None,
    halo: int = 0,
    full_threshold: float = DEFAULT_FULL_THRESHOLD,
    pool: Optional[Any] = None,
    pool_key: Optional[str] = None,
) -> IncrementalResult:
    """Detect on ``netlist``, reusing whatever the store makes sound.

    The decision ladder:

    1. exact job fingerprint cached -> answer from the store (``cached``);
    2. a base (explicit ``base``/``base_fingerprint``, or the per-config
       head pointer) with a persisted seed trace and design blob ->
       :func:`incremental_detect` (``incremental``, or ``full`` with the
       fall-back reason);
    3. otherwise -> full traced run (``full``).

    Deterministic runs persist their report + trace + head pointer (and,
    for patched reports, a provenance row) so the *next* edit starts at
    step 2.  ``config.seed=None`` runs never touch the store.
    """
    deterministic = config.seed is not None
    if store is None or not deterministic:
        report, seed_trace = run_traced(netlist, config, pool=pool, pool_key=pool_key)
        return IncrementalResult(
            report=report,
            trace=seed_trace,
            mode="full",
            reason="no result store" if store is None else "unpinned seed",
            seeds_total=len(seed_trace.jobs),
            seeds_recomputed=len(seed_trace.jobs),
        )

    netlist_fp = fingerprint_netlist(netlist)
    job_fp = job_fingerprint(netlist, config, netlist_fingerprint=netlist_fp)
    cached = store.get(job_fp)
    if cached is not None:
        import dataclasses

        if cached.config != config:
            cached = dataclasses.replace(cached, config=config)
        return IncrementalResult(report=cached, mode="cached")

    result = _try_incremental(
        netlist, config, store,
        base=base, base_fingerprint=base_fingerprint, delta=delta,
        netlist_fp=netlist_fp, halo=halo, full_threshold=full_threshold,
        pool=pool, pool_key=pool_key,
    )
    if result is None:
        report, seed_trace = run_traced(netlist, config, pool=pool, pool_key=pool_key)
        result = IncrementalResult(
            report=report,
            trace=seed_trace,
            mode="full",
            reason="no traced base run",
            seeds_total=len(seed_trace.jobs),
            seeds_recomputed=len(seed_trace.jobs),
        )
    _persist(store, netlist, config, job_fp, result)
    return result


def _try_incremental(
    netlist: Netlist,
    config: FinderConfig,
    store: ResultStore,
    *,
    base: Optional[Netlist],
    base_fingerprint: str,
    delta: Optional[NetlistDelta],
    netlist_fp: str,
    halo: int,
    full_threshold: float,
    pool: Optional[Any],
    pool_key: Optional[str],
) -> Optional[IncrementalResult]:
    """Resolve a usable base + trace and patch; ``None`` when there is none."""
    base_fp = base_fingerprint
    if base is not None and not base_fp:
        base_fp = fingerprint_netlist(base)
    if not base_fp:
        head = store.get_payload(
            _head_key(fingerprint_config(config)), kind=KIND_INCREMENTAL_HEAD
        )
        if not head:
            return None
        base_fp = str(head.get("netlist_fingerprint", ""))
    if not base_fp or base_fp == netlist_fp:
        return None  # no base, or "edit" is the identical netlist

    base_job_fp = job_fingerprint(netlist, config, netlist_fingerprint=base_fp)
    seed_trace = load_trace(store, base_job_fp)
    if seed_trace is None:
        return None
    if base is None:
        path = design_path(store, base_fp)
        if not os.path.exists(path):
            return None
        from repro.io import load_packed

        base = load_packed(path)
    return incremental_detect(
        base, netlist, seed_trace, config,
        delta=delta, halo=halo, full_threshold=full_threshold,
        pool=pool, pool_key=pool_key,
    )


__all__ = [
    "DEFAULT_FULL_THRESHOLD",
    "DESIGNS_SUBDIR",
    "KIND_FINDER_TRACE",
    "KIND_INCREMENTAL_HEAD",
    "KIND_INCREMENTAL_PROVENANCE",
    "TRACE_VERSION",
    "IncrementalResult",
    "SeedTrace",
    "design_path",
    "detect_with_reuse",
    "incremental_detect",
    "load_trace",
    "run_traced",
]
