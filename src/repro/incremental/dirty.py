"""Dirty-region computation: which cells could an edit have influenced?

A seed job's footprint (see ``_SeedOutcome`` in
:mod:`repro.finder.finder`) is the set of cells its orderings absorbed.
Every quantity the job computes — frontier connection weights during
growth, prefix cut/pin curves, group statistics of the genetic family —
reads only nets incident to absorbed cells or to their immediate frontier.
So an edit can change the job's outcome only if some *endpoint* of an
edited net (or an attribute-changed cell) lies within one hypergraph hop
of the footprint.  Equivalently: expand the endpoints by ``1 + halo``
frontier hops on the edited netlist and test intersection with the
footprint.  ``halo`` (default 0) is the conservatism knob — extra hops
never change results (parity is the invariant either way), they only
trade reuse for safety margin against future kernel changes.

The expansion is one CSR frontier pass per hop on the array backend
(cells → incident nets → member cells, exactly the
:func:`~repro.netlist.ops.group_connected` shape), with a scalar BFS
reference behind ``REPRO_SCALAR_BACKEND=1`` producing identical regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Set

from repro.errors import NetlistError
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist
from repro.obs import trace

from repro.incremental.delta import NetlistDelta


@dataclass(frozen=True)
class DirtyRegion:
    """The cells an edit could have influenced, plus bookkeeping.

    Attributes:
        cells: dirty cell indices on the *edited* netlist.
        fraction: ``len(cells) / num_cells`` of the edited netlist.
        hops: frontier hops the endpoints were expanded by (``1 + halo``).
    """

    cells: FrozenSet[int]
    fraction: float
    hops: int

    def intersects(self, footprint: Iterable[int]) -> bool:
        """True when any footprint cell is dirty."""
        cells = self.cells
        return any(c in cells for c in footprint)


def delta_endpoint_cells(new: Netlist, delta: NetlistDelta) -> Set[int]:
    """Seed set of the expansion: endpoints of every edit, as indices on
    the edited netlist.

    Covers old *and* new members of rewired nets (a cell that lost a pin
    is as affected as one that gained it), members of added/removed nets,
    and attribute-changed cells; names no longer present (removed cells)
    are skipped — they cannot carry dirt on the new netlist, and removing
    cells forces a full fall-back upstream anyway.
    """
    names: Set[str] = set()
    for edit in delta.nets_changed:
        names.update(edit.old_members or ())
        names.update(edit.new_members or ())
    for edit in delta.nets_removed:
        names.update(edit.old_members or ())
    for edit in delta.nets_added:
        names.update(edit.new_members or ())
    for cell in delta.cells_changed:
        names.add(cell.name)
    for cell in delta.cells_added:
        names.add(cell.name)

    endpoints: Set[int] = set()
    for name in names:
        try:
            endpoints.add(new.cell_index(name))
        except NetlistError:
            continue  # removed cell: no longer exists on the edited netlist
    return endpoints


def expand_frontier(
    netlist: Netlist,
    cells: Set[int],
    hops: int,
    backend: Optional[str] = None,
) -> Set[int]:
    """Expand ``cells`` by ``hops`` cells→nets→cells frontier passes."""
    backend = resolve_backend(backend)
    if not cells or hops <= 0:
        return set(cells)
    if backend == "numpy":
        import numpy as np

        from repro.netlist.arrays import gather_segments

        arrays = netlist.arrays
        mask = np.zeros(netlist.num_cells, dtype=bool)
        mask[list(cells)] = True
        frontier = np.asarray(sorted(cells), dtype=np.int64)
        for _ in range(hops):
            if frontier.size == 0:
                break
            nets = np.unique(
                gather_segments(
                    arrays.cell_nets,
                    arrays.cell_ptr[frontier],
                    arrays.cell_ptr[frontier + 1] - arrays.cell_ptr[frontier],
                )
            )
            if nets.size == 0:
                break
            neighbors = np.unique(
                gather_segments(
                    arrays.net_cells,
                    arrays.net_ptr[nets],
                    arrays.net_degrees[nets],
                )
            )
            frontier = neighbors[~mask[neighbors]]
            mask[frontier] = True
        return set(int(c) for c in np.nonzero(mask)[0])

    dirty = set(cells)
    frontier_cells = set(cells)
    for _ in range(hops):
        if not frontier_cells:
            break
        next_frontier: Set[int] = set()
        for cell in frontier_cells:
            for neighbor in netlist.neighbors(cell):
                if neighbor not in dirty:
                    next_frontier.add(neighbor)
        dirty.update(next_frontier)
        frontier_cells = next_frontier
    return dirty


def dirty_region(
    new: Netlist,
    delta: NetlistDelta,
    halo: int = 0,
    backend: Optional[str] = None,
) -> DirtyRegion:
    """Compute the :class:`DirtyRegion` of ``delta`` on the edited netlist.

    ``halo`` adds conservative extra hops on top of the one hop required
    for correctness (frontier-weight effects reach one hop beyond the
    edited nets' endpoints).
    """
    if halo < 0:
        raise NetlistError("halo must be >= 0")
    hops = 1 + halo
    with trace.span("incremental.dirty", halo=halo):
        endpoints = delta_endpoint_cells(new, delta)
        cells = expand_frontier(new, endpoints, hops, backend=backend)
        fraction = len(cells) / new.num_cells if new.num_cells else 0.0
        if trace.enabled():
            trace.counter("incremental.dirty_cells").add(len(cells))
            trace.gauge("incremental.dirty_fraction").set(fraction)
    return DirtyRegion(cells=frozenset(cells), fraction=fraction, hops=hops)


__all__ = [
    "DirtyRegion",
    "delta_endpoint_cells",
    "dirty_region",
    "expand_frontier",
]
