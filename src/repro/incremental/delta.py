"""Netlist deltas: structural diff, application, codec and fingerprints.

A :class:`NetlistDelta` is the name-keyed edit script between two netlists:
added / removed / attribute-changed cells and added / removed / rewired
nets, with net memberships carried as ordered cell-*name* lists so a delta
survives index shifts and can be shipped over the wire (the daemon's
``submit --delta`` path) without either netlist.

``diff(old, new)`` computes the delta; its CSR fast path compares the two
netlists' array backends when the cell and net name sequences line up
(the common ECO case: same elements, rewired pins), and a scalar
dict-based reference — selected by ``REPRO_SCALAR_BACKEND=1`` like every
other kernel, see :mod:`repro.netlist.backend` — produces identical
deltas.  ``apply_delta(base, delta)`` reconstructs the edited netlist, and
the two are inverses::

    fingerprint_netlist(apply_delta(old, diff(old, new)))
        == fingerprint_netlist(new)

Edits are assumed order-preserving (surviving cells and nets keep their
relative order, the invariant every generator and ECO flow here obeys).
When the relative order *did* change, ``diff`` degrades to a
full-replacement delta — still correct under ``apply_delta``, merely
maximally conservative for the dirty-region computation downstream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.backend import resolve_backend
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist

#: Version of the delta codec (wire format + fingerprint preimage).
DELTA_VERSION = 1


@dataclass(frozen=True)
class CellEdit:
    """Attributes of one added or changed cell (the *new* values)."""

    name: str
    area: float
    pin_count: int
    fixed: bool

    def to_row(self) -> List[Any]:
        return [self.name, self.area, self.pin_count, self.fixed]

    @classmethod
    def from_row(cls, row: Sequence[Any]) -> "CellEdit":
        name, area, pin_count, fixed = row
        return cls(str(name), float(area), int(pin_count), bool(fixed))


@dataclass(frozen=True)
class NetEdit:
    """One net edit; memberships are ordered tuples of cell names.

    ``old_members`` is ``None`` for an added net, ``new_members`` is
    ``None`` for a removed net, and both are set for a rewired net.
    """

    name: str
    old_members: Optional[Tuple[str, ...]] = None
    new_members: Optional[Tuple[str, ...]] = None

    def to_row(self) -> List[Any]:
        return [
            self.name,
            list(self.old_members) if self.old_members is not None else None,
            list(self.new_members) if self.new_members is not None else None,
        ]

    @classmethod
    def from_row(cls, row: Sequence[Any]) -> "NetEdit":
        name, old_members, new_members = row
        return cls(
            str(name),
            tuple(str(m) for m in old_members) if old_members is not None else None,
            tuple(str(m) for m in new_members) if new_members is not None else None,
        )


@dataclass(frozen=True)
class NetlistDelta:
    """The structural difference between two netlists, name-keyed."""

    cells_added: Tuple[CellEdit, ...] = ()
    cells_removed: Tuple[str, ...] = ()
    cells_changed: Tuple[CellEdit, ...] = ()
    nets_added: Tuple[NetEdit, ...] = ()
    nets_removed: Tuple[NetEdit, ...] = ()
    nets_changed: Tuple[NetEdit, ...] = ()

    @property
    def is_empty(self) -> bool:
        """True when the two netlists were structurally identical."""
        return not (
            self.cells_added or self.cells_removed or self.cells_changed
            or self.nets_added or self.nets_removed or self.nets_changed
        )

    @property
    def num_edits(self) -> int:
        """Total count of cell and net edits."""
        return (
            len(self.cells_added) + len(self.cells_removed)
            + len(self.cells_changed) + len(self.nets_added)
            + len(self.nets_removed) + len(self.nets_changed)
        )

    def summary(self) -> str:
        """One-line human-readable edit counts."""
        return (
            f"cells +{len(self.cells_added)} -{len(self.cells_removed)} "
            f"~{len(self.cells_changed)}, "
            f"nets +{len(self.nets_added)} -{len(self.nets_removed)} "
            f"~{len(self.nets_changed)}"
        )

    # -- codec ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe wire/storage form."""
        return {
            "version": DELTA_VERSION,
            "cells_added": [c.to_row() for c in self.cells_added],
            "cells_removed": list(self.cells_removed),
            "cells_changed": [c.to_row() for c in self.cells_changed],
            "nets_added": [n.to_row() for n in self.nets_added],
            "nets_removed": [n.to_row() for n in self.nets_removed],
            "nets_changed": [n.to_row() for n in self.nets_changed],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NetlistDelta":
        if not isinstance(data, dict):
            raise NetlistError("netlist delta must be a JSON object")
        version = data.get("version")
        if version != DELTA_VERSION:
            raise NetlistError(
                f"unsupported netlist delta version {version!r} "
                f"(this build speaks {DELTA_VERSION})"
            )
        try:
            return cls(
                cells_added=tuple(
                    CellEdit.from_row(r) for r in data.get("cells_added", ())
                ),
                cells_removed=tuple(
                    str(n) for n in data.get("cells_removed", ())
                ),
                cells_changed=tuple(
                    CellEdit.from_row(r) for r in data.get("cells_changed", ())
                ),
                nets_added=tuple(
                    NetEdit.from_row(r) for r in data.get("nets_added", ())
                ),
                nets_removed=tuple(
                    NetEdit.from_row(r) for r in data.get("nets_removed", ())
                ),
                nets_changed=tuple(
                    NetEdit.from_row(r) for r in data.get("nets_changed", ())
                ),
            )
        except (TypeError, ValueError) as error:
            raise NetlistError(f"malformed netlist delta: {error}") from error


def delta_fingerprint(base_fingerprint: str, delta: NetlistDelta) -> str:
    """Content fingerprint of ``delta`` applied on top of a base netlist.

    Chains the base netlist's fingerprint with a canonical JSON encoding of
    the delta, so a patched report's provenance row names exactly one
    ``(base, edit)`` pair.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-delta-v{DELTA_VERSION}:".encode("utf-8"))
    digest.update(base_fingerprint.encode("utf-8"))
    digest.update(
        json.dumps(delta.to_dict(), sort_keys=True, separators=(",", ":"))
        .encode("utf-8")
    )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def _cell_edit(netlist: Netlist, index: int) -> CellEdit:
    return CellEdit(
        name=netlist.cell_name(index),
        area=netlist.cell_area(index),
        pin_count=netlist.cell_pin_count(index),
        fixed=netlist.cell_is_fixed(index),
    )


def _member_names(netlist: Netlist, net: int) -> Tuple[str, ...]:
    return tuple(
        netlist.cell_name(c) for c in netlist.cells_of_net(net)
    )


def _order_preserved(old_names: Sequence[str], new_names: Sequence[str]) -> bool:
    """True when the names common to both sequences keep their relative order."""
    common = set(old_names) & set(new_names)
    old_common = [n for n in old_names if n in common]
    new_common = [n for n in new_names if n in common]
    return old_common == new_common


def _full_replacement(old: Netlist, new: Netlist) -> NetlistDelta:
    """Everything-removed-everything-added delta (degenerate reorder case)."""
    return NetlistDelta(
        cells_removed=old.cell_names,
        cells_added=tuple(_cell_edit(new, i) for i in range(new.num_cells)),
        nets_removed=tuple(
            NetEdit(old.net_name(i), old_members=_member_names(old, i))
            for i in range(old.num_nets)
        ),
        nets_added=tuple(
            NetEdit(new.net_name(i), new_members=_member_names(new, i))
            for i in range(new.num_nets)
        ),
    )


def _changed_cells_aligned_arrays(old: Netlist, new: Netlist) -> Tuple[CellEdit, ...]:
    """Attribute-changed cells when the cell name sequences are identical:
    three vectorized array compares instead of 53K accessor round-trips."""
    import numpy as np

    a, b = old.arrays, new.arrays
    mismatch = (
        (a.areas != b.areas)
        | (a.pin_counts != b.pin_counts)
        | (a.fixed_mask != b.fixed_mask)
    )
    return tuple(_cell_edit(new, int(i)) for i in np.nonzero(mismatch)[0])


def _changed_cells_aligned_scalar(old: Netlist, new: Netlist) -> Tuple[CellEdit, ...]:
    """Scalar reference of :func:`_changed_cells_aligned_arrays`."""
    return tuple(
        _cell_edit(new, i)
        for i in range(new.num_cells)
        if (
            old.cell_area(i) != new.cell_area(i)
            or old.cell_pin_count(i) != new.cell_pin_count(i)
            or old.cell_is_fixed(i) != new.cell_is_fixed(i)
        )
    )


def _diff_cells(
    old: Netlist,
    new: Netlist,
    old_names: Sequence[str],
    new_names: Sequence[str],
) -> Tuple[Tuple[CellEdit, ...], Tuple[str, ...], Tuple[CellEdit, ...]]:
    """General (added/removed/changed) cell diff for misaligned name sets."""
    old_set = set(old_names)
    new_set = set(new_names)
    removed = tuple(n for n in old_names if n not in new_set)
    added = tuple(
        _cell_edit(new, i)
        for i, n in enumerate(new_names)
        if n not in old_set
    )
    changed: List[CellEdit] = []
    for i, name in enumerate(new_names):
        if name not in old_set:
            continue
        j = old.cell_index(name)
        if (
            old.cell_area(j) != new.cell_area(i)
            or old.cell_pin_count(j) != new.cell_pin_count(i)
            or old.cell_is_fixed(j) != new.cell_is_fixed(i)
        ):
            changed.append(_cell_edit(new, i))
    return added, removed, tuple(changed)


def _changed_net_ids_arrays(old: Netlist, new: Netlist) -> List[int]:
    """Aligned-net mismatch detection on the CSR backends (same cell order,
    same net name sequence).  Returns the changed net indices, ascending."""
    import numpy as np

    a, b = old.arrays, new.arrays
    changed: set = set()
    same_degree = a.net_degrees == b.net_degrees
    changed.update(int(i) for i in np.nonzero(~same_degree)[0])
    if changed:
        # Degree drift shifts the CSR segments out of alignment; compare the
        # equal-degree nets segment-by-segment via one gather per side.
        from repro.netlist.arrays import gather_segments

        equal_ids = np.nonzero(same_degree)[0].astype(np.int64)
        if equal_ids.size:
            lengths = a.net_degrees[equal_ids]
            seg_a = gather_segments(a.net_cells, a.net_ptr[equal_ids], lengths)
            seg_b = gather_segments(b.net_cells, b.net_ptr[equal_ids], lengths)
            mismatch = seg_a != seg_b
            if mismatch.any():
                owners = np.repeat(equal_ids, lengths)
                changed.update(int(i) for i in np.unique(owners[mismatch]))
    else:
        # Degrees identical everywhere: the flat member arrays are aligned
        # 1:1 and pin_net maps each mismatching slot to its net directly.
        mismatch = a.net_cells != b.net_cells
        if mismatch.any():
            changed.update(int(i) for i in np.unique(a.pin_net[mismatch]))
    return sorted(changed)


def _changed_net_ids_scalar(old: Netlist, new: Netlist) -> List[int]:
    """Scalar reference of :func:`_changed_net_ids_arrays`."""
    return [
        i
        for i in range(old.num_nets)
        if old.cells_of_net(i) != new.cells_of_net(i)
    ]


def diff(old: Netlist, new: Netlist, backend: Optional[str] = None) -> NetlistDelta:
    """Compute the :class:`NetlistDelta` turning ``old`` into ``new``.

    Both backends produce identical deltas; ``backend`` pins one per call
    (``None`` resolves via ``REPRO_SCALAR_BACKEND``, see
    :mod:`repro.netlist.backend`).
    """
    backend = resolve_backend(backend)
    old_cell_names = old.cell_names
    new_cell_names = new.cell_names
    old_net_names = old.net_names
    new_net_names = new.net_names

    cells_aligned = old_cell_names == new_cell_names
    nets_aligned = old_net_names == new_net_names

    if (
        not cells_aligned
        and not _order_preserved(old_cell_names, new_cell_names)
    ) or (
        not nets_aligned
        and not _order_preserved(old_net_names, new_net_names)
    ):
        return _full_replacement(old, new)

    if cells_aligned:
        cells_added: Tuple[CellEdit, ...] = ()
        cells_removed: Tuple[str, ...] = ()
        if backend == "numpy":
            cells_changed = _changed_cells_aligned_arrays(old, new)
        else:
            cells_changed = _changed_cells_aligned_scalar(old, new)
    else:
        cells_added, cells_removed, cells_changed = _diff_cells(
            old, new, old_cell_names, new_cell_names
        )

    aligned = cells_aligned and nets_aligned
    if aligned:
        if backend == "numpy":
            changed_ids = _changed_net_ids_arrays(old, new)
        else:
            changed_ids = _changed_net_ids_scalar(old, new)
        nets_added: Tuple[NetEdit, ...] = ()
        nets_removed: Tuple[NetEdit, ...] = ()
        nets_changed = tuple(
            NetEdit(
                old.net_name(i),
                old_members=_member_names(old, i),
                new_members=_member_names(new, i),
            )
            for i in changed_ids
        )
    else:
        old_net_set = set(old_net_names)
        new_net_set = set(new_net_names)
        nets_removed = tuple(
            NetEdit(name, old_members=_member_names(old, i))
            for i, name in enumerate(old_net_names)
            if name not in new_net_set
        )
        nets_added = tuple(
            NetEdit(name, new_members=_member_names(new, i))
            for i, name in enumerate(new_net_names)
            if name not in old_net_set
        )
        changed: List[NetEdit] = []
        for i, name in enumerate(new_net_names):
            if name not in old_net_set:
                continue
            j = old.net_index(name)
            old_members = _member_names(old, j)
            new_members = _member_names(new, i)
            if old_members != new_members:
                changed.append(
                    NetEdit(name, old_members=old_members, new_members=new_members)
                )
        nets_changed = tuple(changed)

    return NetlistDelta(
        cells_added=cells_added,
        cells_removed=cells_removed,
        cells_changed=cells_changed,
        nets_added=nets_added,
        nets_removed=nets_removed,
        nets_changed=nets_changed,
    )


# ----------------------------------------------------------------------
# apply
# ----------------------------------------------------------------------
def apply_delta(base: Netlist, delta: NetlistDelta) -> Netlist:
    """Rebuild the edited netlist from ``base`` and ``delta``.

    Surviving cells and nets keep their base order; added ones append in
    delta order — matching how every order-preserving edit flow (and
    :func:`diff` itself) lays the new netlist out.
    """
    removed_cells = set(delta.cells_removed)
    changed_cells = {c.name: c for c in delta.cells_changed}
    builder = NetlistBuilder()
    for index in range(base.num_cells):
        name = base.cell_name(index)
        if name in removed_cells:
            continue
        edit = changed_cells.get(name)
        if edit is not None:
            builder.add_cell(
                name=name, area=edit.area, pin_count=edit.pin_count,
                fixed=edit.fixed,
            )
        else:
            builder.add_cell(
                name=name,
                area=base.cell_area(index),
                pin_count=base.cell_pin_count(index),
                fixed=base.cell_is_fixed(index),
            )
    for edit in delta.cells_added:
        builder.add_cell(
            name=edit.name, area=edit.area, pin_count=edit.pin_count,
            fixed=edit.fixed,
        )

    removed_nets = {n.name for n in delta.nets_removed}
    changed_nets = {n.name: n for n in delta.nets_changed}

    def _indices(members: Tuple[str, ...], net_name: str) -> List[int]:
        try:
            return [builder.cell_index(m) for m in members]
        except NetlistError as error:
            raise NetlistError(
                f"delta net {net_name!r} references a missing cell: {error}"
            ) from error

    for index in range(base.num_nets):
        name = base.net_name(index)
        if name in removed_nets:
            continue
        edit = changed_nets.get(name)
        if edit is not None:
            if edit.new_members is None:
                raise NetlistError(
                    f"changed net {name!r} in delta carries no new members"
                )
            builder.add_net(name, _indices(edit.new_members, name))
        elif removed_cells:
            # Cell removals shift every later index; remap by name.
            builder.add_net(
                name,
                _indices(
                    tuple(base.cell_name(c) for c in base.cells_of_net(index)),
                    name,
                ),
            )
        else:
            builder.add_net(name, list(base.cells_of_net(index)))
    for edit in delta.nets_added:
        if edit.new_members is None:
            raise NetlistError(
                f"added net {edit.name!r} in delta carries no members"
            )
        builder.add_net(edit.name, _indices(edit.new_members, edit.name))

    return builder.build(drop_singleton_nets=False)


__all__ = [
    "DELTA_VERSION",
    "CellEdit",
    "NetEdit",
    "NetlistDelta",
    "apply_delta",
    "delta_fingerprint",
    "diff",
]
