"""Incremental detection over netlist deltas.

``diff`` two netlists into a :class:`NetlistDelta`, expand the edit into a
:class:`DirtyRegion` through the hypergraph, and patch a cached
:class:`~repro.finder.result.FinderReport` by re-running Phase I–III only
for the seeds whose footprint the edit could have reached.  Patched
reports are bit-identical to a cold run on the edited netlist — see
:mod:`repro.incremental.engine` for the invariant and the persistence
model, and ``repro diff`` / ``repro detect --base`` / ``repro submit
--delta`` for the user-facing surfaces.
"""

from repro.incremental.delta import (
    DELTA_VERSION,
    CellEdit,
    NetEdit,
    NetlistDelta,
    apply_delta,
    delta_fingerprint,
    diff,
)
from repro.incremental.dirty import (
    DirtyRegion,
    delta_endpoint_cells,
    dirty_region,
    expand_frontier,
)
from repro.incremental.engine import (
    DEFAULT_FULL_THRESHOLD,
    KIND_FINDER_TRACE,
    KIND_INCREMENTAL_HEAD,
    KIND_INCREMENTAL_PROVENANCE,
    IncrementalResult,
    SeedTrace,
    design_path,
    detect_with_reuse,
    incremental_detect,
    load_trace,
    run_traced,
)

__all__ = [
    "DELTA_VERSION",
    "DEFAULT_FULL_THRESHOLD",
    "KIND_FINDER_TRACE",
    "KIND_INCREMENTAL_HEAD",
    "KIND_INCREMENTAL_PROVENANCE",
    "CellEdit",
    "DirtyRegion",
    "IncrementalResult",
    "NetEdit",
    "NetlistDelta",
    "SeedTrace",
    "apply_delta",
    "delta_endpoint_cells",
    "delta_fingerprint",
    "design_path",
    "detect_with_reuse",
    "diff",
    "dirty_region",
    "expand_frontier",
    "incremental_detect",
    "load_trace",
    "run_traced",
]
