"""Group-level operations on netlists.

These are the primitives the metrics and the finder are built from: net cut
``T(C)``, group pin counts, boundary exploration, induced sub-netlists, and
an incremental :class:`PrefixScanner` that evaluates every prefix of a linear
ordering in time linear in the total pin count (the work Phase II needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.hypergraph import Netlist


def _as_set(group: Iterable[int]) -> Set[int]:
    return group if isinstance(group, set) else set(group)


def cut_size(netlist: Netlist, group: Iterable[int]) -> int:
    """``T(C)``: number of nets with pins both inside and outside ``group``."""
    members = _as_set(group)
    if not members:
        return 0
    seen_nets: Set[int] = set()
    cut = 0
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen_nets:
                continue
            seen_nets.add(net)
            cells = netlist.cells_of_net(net)
            inside = sum(1 for c in cells if c in members)
            if 0 < inside < len(cells):
                cut += 1
    return cut


def boundary_nets(netlist: Netlist, group: Iterable[int]) -> List[int]:
    """Indices of the nets that cross the boundary of ``group``."""
    members = _as_set(group)
    result: List[int] = []
    seen: Set[int] = set()
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            cells = netlist.cells_of_net(net)
            inside = sum(1 for c in cells if c in members)
            if 0 < inside < len(cells):
                result.append(net)
    return result


def internal_nets(netlist: Netlist, group: Iterable[int]) -> List[int]:
    """Indices of nets entirely contained in ``group``."""
    members = _as_set(group)
    result: List[int] = []
    seen: Set[int] = set()
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            if all(c in members for c in netlist.cells_of_net(net)):
                result.append(net)
    return result


def external_pin_count(netlist: Netlist, net: int, group: Iterable[int]) -> int:
    """``lambda(e)``: pins of ``net`` lying outside ``group``."""
    members = _as_set(group)
    return sum(1 for c in netlist.cells_of_net(net) if c not in members)


def group_pin_count(netlist: Netlist, group: Iterable[int]) -> int:
    """Total pins of the cells in ``group`` (explicit pin counts honored)."""
    return sum(netlist.cell_pin_count(c) for c in group)


def neighbors_of_group(netlist: Netlist, group: Iterable[int]) -> List[int]:
    """Distinct cells outside ``group`` sharing a net with it."""
    members = _as_set(group)
    seen: Set[int] = set()
    result: List[int] = []
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            for other in netlist.cells_of_net(net):
                if other not in members and other not in seen:
                    seen.add(other)
                    result.append(other)
    return result


@dataclass(frozen=True)
class GroupStats:
    """Summary statistics of one cell group.

    Attributes:
        size: |C|, number of cells.
        cut: T(C), nets crossing the boundary.
        pins: total pins of cells in C.
        internal_nets: nets fully inside C.
        avg_pins: A_C = pins / size.
    """

    size: int
    cut: int
    pins: int
    internal_nets: int
    avg_pins: float


def group_stats(netlist: Netlist, group: Iterable[int]) -> GroupStats:
    """Compute :class:`GroupStats` for ``group`` in one pass."""
    members = _as_set(group)
    if not members:
        raise NetlistError("group_stats of an empty group")
    seen: Set[int] = set()
    cut = 0
    internal = 0
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            cells = netlist.cells_of_net(net)
            inside = sum(1 for c in cells if c in members)
            if inside == len(cells):
                internal += 1
            elif inside > 0:
                cut += 1
    pins = group_pin_count(netlist, members)
    return GroupStats(
        size=len(members),
        cut=cut,
        pins=pins,
        internal_nets=internal,
        avg_pins=pins / len(members),
    )


def induced_netlist(
    netlist: Netlist, group: Iterable[int]
) -> Tuple[Netlist, Dict[int, int]]:
    """Sub-netlist induced by ``group``.

    Nets are restricted to their members inside ``group``; nets left with
    fewer than two pins are dropped.  Returns the sub-netlist and a mapping
    from original cell index to new index.
    """
    from repro.netlist.builder import NetlistBuilder

    members = sorted(_as_set(group))
    if not members:
        raise NetlistError("induced_netlist of an empty group")
    mapping: Dict[int, int] = {}
    builder = NetlistBuilder()
    for cell in members:
        view = netlist.cell(cell)
        mapping[cell] = builder.add_cell(
            name=view.name,
            area=view.area,
            pin_count=None,  # recomputed from restricted incidences
            fixed=view.fixed,
        )
    member_set = set(members)
    seen: Set[int] = set()
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            inside = [c for c in netlist.cells_of_net(net) if c in member_set]
            if len(inside) >= 2:
                builder.add_net(netlist.net_name(net), [mapping[c] for c in inside])
    return builder.build(), mapping


def connected_components(netlist: Netlist) -> List[List[int]]:
    """Connected components of the netlist (cells connected through nets)."""
    seen = [False] * netlist.num_cells
    components: List[List[int]] = []
    for start in range(netlist.num_cells):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            cell = stack.pop()
            component.append(cell)
            for net in netlist.nets_of_cell(cell):
                for other in netlist.cells_of_net(net):
                    if not seen[other]:
                        seen[other] = True
                        stack.append(other)
        components.append(component)
    return components


class PrefixScanner:
    """Incrementally track cut and pin statistics of ordering prefixes.

    Feed cells one by one with :meth:`add`; after each addition the current
    prefix ``C_k`` statistics are available in O(1).  Total work over a whole
    ordering is proportional to the pin count of the added cells, which gives
    Phase II its O(Z) scan.
    """

    def __init__(self, netlist: Netlist) -> None:
        self._netlist = netlist
        self._inside_count: Dict[int, int] = {}
        self._in_group: Set[int] = set()
        self._cut = 0
        self._pins = 0
        self._internal = 0

    @property
    def size(self) -> int:
        """Current prefix size |C_k|."""
        return len(self._in_group)

    @property
    def cut(self) -> int:
        """Current prefix cut T(C_k)."""
        return self._cut

    @property
    def pins(self) -> int:
        """Total pins of the current prefix."""
        return self._pins

    @property
    def internal_nets(self) -> int:
        """Nets fully inside the current prefix."""
        return self._internal

    @property
    def avg_pins(self) -> float:
        """A_C of the current prefix."""
        if not self._in_group:
            raise NetlistError("avg_pins of an empty prefix")
        return self._pins / len(self._in_group)

    def __contains__(self, cell: int) -> bool:
        return cell in self._in_group

    def add(self, cell: int) -> None:
        """Extend the prefix with ``cell`` and update all statistics."""
        if cell in self._in_group:
            raise NetlistError(f"cell {cell} added to prefix twice")
        self._in_group.add(cell)
        self._pins += self._netlist.cell_pin_count(cell)
        for net in self._netlist.nets_of_cell(cell):
            degree = self._netlist.net_degree(net)
            inside = self._inside_count.get(net, 0) + 1
            self._inside_count[net] = inside
            if inside == 1:
                if degree > 1:
                    self._cut += 1  # net becomes crossing
                else:
                    self._internal += 1  # single-pin net is trivially internal
            elif inside == degree:
                self._cut -= 1  # net fully absorbed
                self._internal += 1

    def stats(self) -> GroupStats:
        """Snapshot of the current prefix as :class:`GroupStats`."""
        if not self._in_group:
            raise NetlistError("stats of an empty prefix")
        return GroupStats(
            size=self.size,
            cut=self._cut,
            pins=self._pins,
            internal_nets=self._internal,
            avg_pins=self.avg_pins,
        )
