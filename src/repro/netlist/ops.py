"""Group-level operations on netlists.

These are the primitives the metrics and the finder are built from: net cut
``T(C)``, group pin counts, boundary exploration, induced sub-netlists, and
an incremental :class:`PrefixScanner` that evaluates every prefix of a linear
ordering in time linear in the total pin count (the work Phase II needs).

The hot primitives exist in two backends (see
:mod:`repro.netlist.backend`): the pure-Python dict/set reference
implementations, and CSR-array versions over
:class:`~repro.netlist.arrays.NetlistArrays` that compute whole prefix
curves (:func:`scan_ordering_curves`) or one group's statistics
(:func:`group_stats`) in a handful of vectorized expressions.  All group
statistics are integers, so the two backends agree bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import NetlistError
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist


def _as_set(group: Iterable[int]) -> Set[int]:
    return group if isinstance(group, set) else set(group)


def _as_index_array(group: Iterable[int]) -> np.ndarray:
    """Distinct member indices of ``group`` as a sorted int64 array."""
    if isinstance(group, np.ndarray):
        return np.unique(group.astype(np.int64, copy=False))
    members = group if isinstance(group, (set, frozenset, list, tuple)) else list(group)
    return np.unique(np.fromiter(members, dtype=np.int64, count=len(members)))


def cut_size(netlist: Netlist, group: Iterable[int]) -> int:
    """``T(C)``: number of nets with pins both inside and outside ``group``."""
    members = _as_set(group)
    if not members:
        return 0
    seen_nets: Set[int] = set()
    cut = 0
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen_nets:
                continue
            seen_nets.add(net)
            cells = netlist.cells_of_net(net)
            inside = sum(1 for c in cells if c in members)
            if 0 < inside < len(cells):
                cut += 1
    return cut


def boundary_nets(netlist: Netlist, group: Iterable[int]) -> List[int]:
    """Indices of the nets that cross the boundary of ``group``."""
    members = _as_set(group)
    result: List[int] = []
    seen: Set[int] = set()
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            cells = netlist.cells_of_net(net)
            inside = sum(1 for c in cells if c in members)
            if 0 < inside < len(cells):
                result.append(net)
    return result


def internal_nets(netlist: Netlist, group: Iterable[int]) -> List[int]:
    """Indices of nets entirely contained in ``group``."""
    members = _as_set(group)
    result: List[int] = []
    seen: Set[int] = set()
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            if all(c in members for c in netlist.cells_of_net(net)):
                result.append(net)
    return result


def external_pin_count(netlist: Netlist, net: int, group: Iterable[int]) -> int:
    """``lambda(e)``: pins of ``net`` lying outside ``group``."""
    members = _as_set(group)
    return sum(1 for c in netlist.cells_of_net(net) if c not in members)


def group_pin_count(netlist: Netlist, group: Iterable[int]) -> int:
    """Total pins of the cells in ``group`` (explicit pin counts honored)."""
    return sum(netlist.cell_pin_count(c) for c in group)


def neighbors_of_group(netlist: Netlist, group: Iterable[int]) -> List[int]:
    """Distinct cells outside ``group`` sharing a net with it."""
    members = _as_set(group)
    seen: Set[int] = set()
    result: List[int] = []
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            for other in netlist.cells_of_net(net):
                if other not in members and other not in seen:
                    seen.add(other)
                    result.append(other)
    return result


@dataclass(frozen=True)
class GroupStats:
    """Summary statistics of one cell group.

    Attributes:
        size: |C|, number of cells.
        cut: T(C), nets crossing the boundary.
        pins: total pins of cells in C.
        internal_nets: nets fully inside C.
        avg_pins: A_C = pins / size.
    """

    size: int
    cut: int
    pins: int
    internal_nets: int
    avg_pins: float


def group_stats(
    netlist: Netlist, group: Iterable[int], backend: Optional[str] = None
) -> GroupStats:
    """Compute :class:`GroupStats` for ``group`` in one pass.

    ``backend`` selects the CSR-array kernel or the scalar reference (see
    :func:`repro.netlist.backend.resolve_backend`); both return identical
    statistics — all fields are integer counts plus one exact division.
    """
    if resolve_backend(backend) == "numpy":
        return _group_stats_arrays(netlist, group)
    members = _as_set(group)
    if not members:
        raise NetlistError("group_stats of an empty group")
    seen: Set[int] = set()
    cut = 0
    internal = 0
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            cells = netlist.cells_of_net(net)
            inside = sum(1 for c in cells if c in members)
            if inside == len(cells):
                internal += 1
            elif inside > 0:
                cut += 1
    pins = group_pin_count(netlist, members)
    return GroupStats(
        size=len(members),
        cut=cut,
        pins=pins,
        internal_nets=internal,
        avg_pins=pins / len(members),
    )


def _group_stats_arrays(netlist: Netlist, group: Iterable[int]) -> GroupStats:
    """CSR-array implementation of :func:`group_stats`."""
    from repro.netlist.arrays import gather_segments

    members = _as_index_array(group)
    size = int(members.size)
    if not size:
        raise NetlistError("group_stats of an empty group")
    arrays = netlist.arrays
    starts = arrays.cell_ptr[members]
    lengths = arrays.cell_ptr[members + 1] - starts
    incident = gather_segments(arrays.cell_nets, starts, lengths)
    nets, inside = np.unique(incident, return_counts=True)
    full = inside == arrays.net_degrees[nets]
    pins = int(arrays.pin_counts[members].sum())
    return GroupStats(
        size=size,
        cut=int(np.count_nonzero(~full)),
        pins=pins,
        internal_nets=int(np.count_nonzero(full)),
        avg_pins=pins / size,
    )


def group_connected(
    netlist: Netlist, group: Iterable[int], backend: Optional[str] = None
) -> bool:
    """True when ``group`` induces one connected hypergraph component.

    Empty groups are not connected.  The array backend runs a frontier BFS
    over the CSR view (whole frontier levels expanded per step); the scalar
    reference walks cell by cell.
    """
    if resolve_backend(backend) == "numpy":
        return _group_connected_arrays(netlist, group)
    members = _as_set(group)
    if not members:
        return False
    start = next(iter(members))
    seen = {start}
    stack = [start]
    while stack:
        cell = stack.pop()
        for net in netlist.nets_of_cell(cell):
            for other in netlist.cells_of_net(net):
                if other in members and other not in seen:
                    seen.add(other)
                    stack.append(other)
    return len(seen) == len(members)


def _group_connected_arrays(netlist: Netlist, group: Iterable[int]) -> bool:
    """CSR frontier-BFS implementation of :func:`group_connected`."""
    from repro.netlist.arrays import gather_segments

    members = _as_index_array(group)
    if not members.size:
        return False
    arrays = netlist.arrays
    in_group = np.zeros(arrays.num_cells, dtype=bool)
    in_group[members] = True
    visited = np.zeros(arrays.num_cells, dtype=bool)
    net_seen = np.zeros(arrays.num_nets, dtype=bool)
    frontier = members[:1]
    visited[frontier] = True
    reached = 1
    while frontier.size:
        starts = arrays.cell_ptr[frontier]
        nets = gather_segments(
            arrays.cell_nets, starts, arrays.cell_ptr[frontier + 1] - starts
        )
        nets = np.unique(nets[~net_seen[nets]])
        net_seen[nets] = True
        starts = arrays.net_ptr[nets]
        cells = gather_segments(
            arrays.net_cells, starts, arrays.net_ptr[nets + 1] - starts
        )
        cells = np.unique(cells[in_group[cells] & ~visited[cells]])
        visited[cells] = True
        reached += int(cells.size)
        frontier = cells
    return reached == int(members.size)


def induced_netlist(
    netlist: Netlist, group: Iterable[int]
) -> Tuple[Netlist, Dict[int, int]]:
    """Sub-netlist induced by ``group``.

    Nets are restricted to their members inside ``group``; nets left with
    fewer than two pins are dropped.  Returns the sub-netlist and a mapping
    from original cell index to new index.
    """
    from repro.netlist.builder import NetlistBuilder

    members = sorted(_as_set(group))
    if not members:
        raise NetlistError("induced_netlist of an empty group")
    mapping: Dict[int, int] = {}
    builder = NetlistBuilder()
    for cell in members:
        view = netlist.cell(cell)
        mapping[cell] = builder.add_cell(
            name=view.name,
            area=view.area,
            pin_count=None,  # recomputed from restricted incidences
            fixed=view.fixed,
        )
    member_set = set(members)
    seen: Set[int] = set()
    for cell in members:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            inside = [c for c in netlist.cells_of_net(net) if c in member_set]
            if len(inside) >= 2:
                builder.add_net(netlist.net_name(net), [mapping[c] for c in inside])
    return builder.build(), mapping


def connected_components(netlist: Netlist) -> List[List[int]]:
    """Connected components of the netlist (cells connected through nets)."""
    seen = [False] * netlist.num_cells
    components: List[List[int]] = []
    for start in range(netlist.num_cells):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            cell = stack.pop()
            component.append(cell)
            for net in netlist.nets_of_cell(cell):
                for other in netlist.cells_of_net(net):
                    if not seen[other]:
                        seen[other] = True
                        stack.append(other)
        components.append(component)
    return components


class PrefixScanner:
    """Incrementally track cut and pin statistics of ordering prefixes.

    Feed cells one by one with :meth:`add`; after each addition the current
    prefix ``C_k`` statistics are available in O(1).  Total work over a whole
    ordering is proportional to the pin count of the added cells, which gives
    Phase II its O(Z) scan.
    """

    def __init__(self, netlist: Netlist) -> None:
        self._netlist = netlist
        self._inside_count: Dict[int, int] = {}
        self._in_group: Set[int] = set()
        self._cut = 0
        self._pins = 0
        self._internal = 0

    @property
    def size(self) -> int:
        """Current prefix size |C_k|."""
        return len(self._in_group)

    @property
    def cut(self) -> int:
        """Current prefix cut T(C_k)."""
        return self._cut

    @property
    def pins(self) -> int:
        """Total pins of the current prefix."""
        return self._pins

    @property
    def internal_nets(self) -> int:
        """Nets fully inside the current prefix."""
        return self._internal

    @property
    def avg_pins(self) -> float:
        """A_C of the current prefix."""
        if not self._in_group:
            raise NetlistError("avg_pins of an empty prefix")
        return self._pins / len(self._in_group)

    def __contains__(self, cell: int) -> bool:
        return cell in self._in_group

    def add(self, cell: int) -> None:
        """Extend the prefix with ``cell`` and update all statistics."""
        if cell in self._in_group:
            raise NetlistError(f"cell {cell} added to prefix twice")
        self._in_group.add(cell)
        self._pins += self._netlist.cell_pin_count(cell)
        for net in self._netlist.nets_of_cell(cell):
            degree = self._netlist.net_degree(net)
            inside = self._inside_count.get(net, 0) + 1
            self._inside_count[net] = inside
            if inside == 1:
                if degree > 1:
                    self._cut += 1  # net becomes crossing
                else:
                    self._internal += 1  # single-pin net is trivially internal
            elif inside == degree:
                self._cut -= 1  # net fully absorbed
                self._internal += 1

    def stats(self) -> GroupStats:
        """Snapshot of the current prefix as :class:`GroupStats`."""
        if not self._in_group:
            raise NetlistError("stats of an empty prefix")
        return GroupStats(
            size=self.size,
            cut=self._cut,
            pins=self._pins,
            internal_nets=self._internal,
            avg_pins=self.avg_pins,
        )


@dataclass(frozen=True)
class PrefixCurves:
    """Per-prefix statistics of one linear ordering as flat integer arrays.

    Entry ``k`` describes prefix ``C_{k+1}`` (the first ``k + 1`` cells).
    The arrays carry exactly the information of one
    :class:`GroupStats` per prefix — :meth:`stats_at` materializes a single
    prefix, :meth:`stats_list` the whole (scalar-compatible) list.

    Attributes:
        sizes: ``1, 2, ..., len(ordering)``.
        cuts: ``T(C_k)`` per prefix.
        pins: total pins per prefix.
        internal: nets fully inside each prefix.
    """

    sizes: np.ndarray
    cuts: np.ndarray
    pins: np.ndarray
    internal: np.ndarray

    def __len__(self) -> int:
        return len(self.sizes)

    @property
    def avg_pins(self) -> np.ndarray:
        """``A_C`` per prefix (exact float64 division of integer arrays)."""
        return self.pins / self.sizes

    def stats_at(self, index: int) -> GroupStats:
        """:class:`GroupStats` of prefix ``index`` (0-based)."""
        size = int(self.sizes[index])
        pins = int(self.pins[index])
        return GroupStats(
            size=size,
            cut=int(self.cuts[index]),
            pins=pins,
            internal_nets=int(self.internal[index]),
            avg_pins=pins / size,
        )

    def stats_list(self) -> List[GroupStats]:
        """All prefixes as a list of :class:`GroupStats`."""
        return [self.stats_at(i) for i in range(len(self))]


def scan_ordering_curves(netlist: Netlist, ordering: Sequence[int]) -> PrefixCurves:
    """Vectorized equivalent of a full :class:`PrefixScanner` sweep.

    Computes the cut/pins/internal statistics of *every* prefix of
    ``ordering`` from the CSR view: each incident net contributes a ``+1``
    cut event at the step that first touches it and a ``-1`` at the step
    that absorbs its last pin; two ``bincount``/``cumsum`` passes turn the
    events into whole curves.  All outputs are integers, so the curves
    match the scalar scanner bit for bit.  Cells in ``ordering`` must be
    distinct (Phase I orderings always are); duplicates raise
    :class:`NetlistError`, matching the scalar scanner's contract.
    """
    from repro.netlist.arrays import gather_segments

    arrays = netlist.arrays
    order_cells = np.asarray(ordering, dtype=np.int64)
    steps = int(order_cells.size)
    if np.unique(order_cells).size != steps:
        raise NetlistError("ordering contains a cell twice")
    if steps == 0:
        return PrefixCurves(
            sizes=np.zeros(0, dtype=np.int64),
            cuts=np.zeros(0, dtype=np.int64),
            pins=np.zeros(0, dtype=np.int64),
            internal=np.zeros(0, dtype=np.int64),
        )

    starts = arrays.cell_ptr[order_cells]
    lengths = arrays.cell_ptr[order_cells + 1] - starts
    incident = gather_segments(arrays.cell_nets, starts, lengths)
    if incident.size == 0:  # ordering of isolated cells: no nets, no cuts
        zeros = np.zeros(steps, dtype=np.int64)
        return PrefixCurves(
            sizes=np.arange(1, steps + 1, dtype=np.int64),
            cuts=zeros,
            pins=np.cumsum(arrays.pin_counts[order_cells]),
            internal=zeros.copy(),
        )
    step_of_pin = np.repeat(np.arange(steps, dtype=np.int64), lengths)

    # Stable sort by net keeps each net's steps ascending, so the first and
    # last element of every net segment are its first-touch and last-touch
    # steps.
    order = np.argsort(incident, kind="stable")
    nets_sorted = incident[order]
    steps_sorted = step_of_pin[order]
    seg_start = np.flatnonzero(
        np.concatenate(([True], nets_sorted[1:] != nets_sorted[:-1]))
    )
    seg_end = np.concatenate((seg_start[1:], [nets_sorted.size])) - 1
    first_touch = steps_sorted[seg_start]
    last_touch = steps_sorted[seg_end]
    inside = seg_end - seg_start + 1
    degrees = arrays.net_degrees[nets_sorted[seg_start]]
    multi = degrees > 1
    absorbed = multi & (inside == degrees)

    cut_events = np.bincount(first_touch[multi], minlength=steps).astype(np.int64)
    cut_events -= np.bincount(last_touch[absorbed], minlength=steps)
    internal_events = np.bincount(first_touch[~multi], minlength=steps).astype(
        np.int64
    )
    internal_events += np.bincount(last_touch[absorbed], minlength=steps)

    return PrefixCurves(
        sizes=np.arange(1, steps + 1, dtype=np.int64),
        cuts=np.cumsum(cut_events),
        pins=np.cumsum(arrays.pin_counts[order_cells]),
        internal=np.cumsum(internal_events),
    )
