"""Core hypergraph netlist data structure.

Cells and nets are integer-indexed for speed; names are optional decoration.
The structure is immutable after construction (build with
:class:`repro.netlist.builder.NetlistBuilder`), which lets the finder and the
metrics share it freely across (process) parallel seed runs.

Pin model
---------
A *pin* is an incidence between a cell and a net.  For metrics based on
Rent's rule the relevant quantity is the pin count of a cell.  By default a
cell's pin count equals the number of nets incident to it (every pin is
connected somewhere).  Generators that model gates with known pin counts
(e.g. a NAND4 has 5 pins) may set an explicit ``pin_count`` per cell, which
is then used by the density-aware metric; unconnected pins are thereby
representable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NetlistError


@dataclass(frozen=True)
class Cell:
    """A read-only view of one cell.

    Attributes:
        index: dense integer id in ``[0, num_cells)``.
        name: human-readable name (unique within the netlist).
        area: placement area of the cell (arbitrary units, default 1.0).
        pin_count: number of pins on the cell (>= number of incident nets).
        fixed: True for IO pads / fixed terminals that placement must not move.
    """

    index: int
    name: str
    area: float
    pin_count: int
    fixed: bool


@dataclass(frozen=True)
class Net:
    """A read-only view of one net (hyperedge).

    Attributes:
        index: dense integer id in ``[0, num_nets)``.
        name: human-readable name (unique within the netlist).
        cells: tuple of member cell indices (distinct, at least one).
    """

    index: int
    name: str
    cells: Tuple[int, ...]

    @property
    def degree(self) -> int:
        """Number of pins on the net."""
        return len(self.cells)


class Netlist:
    """Immutable hypergraph netlist ``G = (V, E)``.

    Do not call this constructor directly in application code; use
    :class:`repro.netlist.builder.NetlistBuilder` which validates its input.
    """

    __slots__ = (
        "_cell_names",
        "_cell_areas",
        "_cell_pin_counts",
        "_cell_fixed",
        "_cell_nets",
        "_net_names",
        "_net_cells",
        "_name_to_cell",
        "_name_to_net",
        "_total_pins",
        "_arrays",
        "_derived",
    )

    def __init__(
        self,
        cell_names: Sequence[str],
        cell_areas: Sequence[float],
        cell_pin_counts: Sequence[int],
        cell_fixed: Sequence[bool],
        net_names: Sequence[str],
        net_cells: Sequence[Tuple[int, ...]],
        cell_nets: Sequence[Tuple[int, ...]],
    ) -> None:
        self._cell_names: Tuple[str, ...] = tuple(cell_names)
        self._cell_areas: Tuple[float, ...] = tuple(cell_areas)
        self._cell_pin_counts: Tuple[int, ...] = tuple(cell_pin_counts)
        self._cell_fixed: Tuple[bool, ...] = tuple(cell_fixed)
        self._net_names: Tuple[str, ...] = tuple(net_names)
        self._net_cells: Tuple[Tuple[int, ...], ...] = tuple(net_cells)
        self._cell_nets: Tuple[Tuple[int, ...], ...] = tuple(cell_nets)
        self._name_to_cell: Dict[str, int] = {
            name: i for i, name in enumerate(self._cell_names)
        }
        self._name_to_net: Dict[str, int] = {
            name: i for i, name in enumerate(self._net_names)
        }
        self._total_pins = sum(self._cell_pin_counts)
        self._arrays = None  # lazy NetlistArrays cache (see arrays property)
        self._derived = {}  # derived-object cache (see derived_cache property)

    # ------------------------------------------------------------------
    # Sizes and global statistics
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """|V| — number of cells including fixed pads."""
        return len(self._cell_names)

    @property
    def num_nets(self) -> int:
        """|E| — number of nets."""
        return len(self._net_names)

    @property
    def num_pins(self) -> int:
        """Total pin count over all cells."""
        return self._total_pins

    @property
    def num_incidences(self) -> int:
        """Total number of (cell, net) incidences (connected pins)."""
        return sum(len(nets) for nets in self._cell_nets)

    @property
    def average_pins_per_cell(self) -> float:
        """``A(G)`` from the paper: total pins divided by |V|."""
        if not self._cell_names:
            raise NetlistError("average_pins_per_cell of an empty netlist")
        return self._total_pins / len(self._cell_names)

    # ------------------------------------------------------------------
    # Cell accessors
    # ------------------------------------------------------------------
    def cell(self, index: int) -> Cell:
        """Read-only view of cell ``index``."""
        return Cell(
            index=index,
            name=self._cell_names[index],
            area=self._cell_areas[index],
            pin_count=self._cell_pin_counts[index],
            fixed=self._cell_fixed[index],
        )

    def cells(self) -> Iterator[Cell]:
        """Iterate over all cells as read-only views."""
        for index in range(self.num_cells):
            yield self.cell(index)

    @property
    def cell_names(self) -> Tuple[str, ...]:
        """All cell names in index order (one tuple, no per-cell calls)."""
        return self._cell_names

    def cell_name(self, index: int) -> str:
        """Name of cell ``index``."""
        return self._cell_names[index]

    def cell_area(self, index: int) -> float:
        """Placement area of cell ``index``."""
        return self._cell_areas[index]

    def cell_pin_count(self, index: int) -> int:
        """Pin count of cell ``index`` (explicit or incidence degree)."""
        return self._cell_pin_counts[index]

    def cell_is_fixed(self, index: int) -> bool:
        """True when cell ``index`` is a fixed terminal (IO pad)."""
        return self._cell_fixed[index]

    def cell_index(self, name: str) -> int:
        """Index of the cell called ``name``; raises :class:`NetlistError`."""
        try:
            return self._name_to_cell[name]
        except KeyError:
            raise NetlistError(f"unknown cell name {name!r}") from None

    def nets_of_cell(self, index: int) -> Tuple[int, ...]:
        """Indices of nets incident to cell ``index``."""
        return self._cell_nets[index]

    def cell_degree(self, index: int) -> int:
        """Number of nets incident to cell ``index``."""
        return len(self._cell_nets[index])

    def movable_cells(self) -> List[int]:
        """Indices of all non-fixed cells."""
        return [i for i in range(self.num_cells) if not self._cell_fixed[i]]

    def fixed_cells(self) -> List[int]:
        """Indices of all fixed cells (pads)."""
        return [i for i in range(self.num_cells) if self._cell_fixed[i]]

    # ------------------------------------------------------------------
    # Net accessors
    # ------------------------------------------------------------------
    def net(self, index: int) -> Net:
        """Read-only view of net ``index``."""
        return Net(index=index, name=self._net_names[index], cells=self._net_cells[index])

    def nets(self) -> Iterator[Net]:
        """Iterate over all nets as read-only views."""
        for index in range(self.num_nets):
            yield self.net(index)

    @property
    def net_names(self) -> Tuple[str, ...]:
        """All net names in index order (one tuple, no per-net calls)."""
        return self._net_names

    def net_name(self, index: int) -> str:
        """Name of net ``index``."""
        return self._net_names[index]

    def net_index(self, name: str) -> int:
        """Index of the net called ``name``; raises :class:`NetlistError`."""
        try:
            return self._name_to_net[name]
        except KeyError:
            raise NetlistError(f"unknown net name {name!r}") from None

    def cells_of_net(self, index: int) -> Tuple[int, ...]:
        """Member cell indices of net ``index``."""
        return self._net_cells[index]

    def net_degree(self, index: int) -> int:
        """|e| — number of pins on net ``index``."""
        return len(self._net_cells[index])

    # ------------------------------------------------------------------
    # Neighborhood
    # ------------------------------------------------------------------
    def neighbors(self, index: int) -> List[int]:
        """Distinct cells sharing at least one net with cell ``index``."""
        seen = {index}
        result: List[int] = []
        for net in self._cell_nets[index]:
            for other in self._net_cells[net]:
                if other not in seen:
                    seen.add(other)
                    result.append(other)
        return result

    # ------------------------------------------------------------------
    # Array-backed view
    # ------------------------------------------------------------------
    @property
    def arrays(self):
        """Cached :class:`~repro.netlist.arrays.NetlistArrays` flat view.

        Built lazily on first access; the cache never invalidates because
        the netlist is immutable.  Excluded from pickles (workers rebuild
        it locally on demand).
        """
        if self._arrays is None:
            from repro.netlist.arrays import build_netlist_arrays

            self._arrays = build_netlist_arrays(self)
        return self._arrays

    @property
    def derived_cache(self) -> Dict:
        """Mutable cache of derived per-netlist objects, keyed by the caller.

        Safe because the netlist is immutable: entries never invalidate.
        Used for memoized :class:`~repro.metrics.gtl_score.ScoreContext`
        instances and the detection kernel's scratch workspace.  Like
        :attr:`arrays`, the cache is excluded from pickles.
        """
        return self._derived

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __getstate__(self):
        # The array view and derived-object cache are rebuildable, possibly
        # large, and numpy-backed — keep pickles lean and portable without
        # them.
        excluded = ("_arrays", "_derived")
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot not in excluded
        }

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        object.__setattr__(self, "_arrays", None)
        object.__setattr__(self, "_derived", {})

    def __repr__(self) -> str:
        return (
            f"Netlist(cells={self.num_cells}, nets={self.num_nets}, "
            f"pins={self.num_pins})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Netlist):
            return NotImplemented
        return (
            self._cell_names == other._cell_names
            and self._cell_areas == other._cell_areas
            and self._cell_pin_counts == other._cell_pin_counts
            and self._cell_fixed == other._cell_fixed
            and self._net_names == other._net_names
            and self._net_cells == other._net_cells
        )

    def __hash__(self) -> int:
        return hash((self._cell_names, self._net_cells))
