"""Mutable builder for :class:`repro.netlist.hypergraph.Netlist`.

The builder accumulates cells and nets, validates them, and produces an
immutable :class:`Netlist`.  It is the single construction path used by the
parsers and the synthetic-workload generators.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.hypergraph import Netlist


class NetlistBuilder:
    """Incrementally assemble a netlist, then :meth:`build` it.

    >>> b = NetlistBuilder()
    >>> a = b.add_cell("a")
    >>> c = b.add_cell("c")
    >>> _ = b.add_net("n1", [a, c])
    >>> b.build().num_cells
    2
    """

    def __init__(self) -> None:
        self._cell_names: List[str] = []
        self._cell_areas: List[float] = []
        self._cell_pin_counts: List[Optional[int]] = []
        self._cell_fixed: List[bool] = []
        self._net_names: List[str] = []
        self._net_cells: List[Tuple[int, ...]] = []
        self._name_to_cell: Dict[str, int] = {}
        self._name_to_net: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of cells added so far."""
        return len(self._cell_names)

    @property
    def num_nets(self) -> int:
        """Number of nets added so far."""
        return len(self._net_names)

    def has_cell(self, name: str) -> bool:
        """True if a cell called ``name`` was already added."""
        return name in self._name_to_cell

    def cell_index(self, name: str) -> int:
        """Index of a previously added cell called ``name``."""
        try:
            return self._name_to_cell[name]
        except KeyError:
            raise NetlistError(f"unknown cell name {name!r}") from None

    # ------------------------------------------------------------------
    def add_cell(
        self,
        name: Optional[str] = None,
        area: float = 1.0,
        pin_count: Optional[int] = None,
        fixed: bool = False,
    ) -> int:
        """Add a cell and return its index.

        Args:
            name: unique name; auto-generated (``c<i>``) when omitted.
            area: placement area, must be positive.
            pin_count: explicit pin count; defaults to the number of incident
                nets at :meth:`build` time.
            fixed: mark the cell as a fixed terminal (IO pad).
        """
        index = len(self._cell_names)
        if name is None:
            name = f"c{index}"
        if name in self._name_to_cell:
            raise NetlistError(f"duplicate cell name {name!r}")
        if area <= 0:
            raise NetlistError(f"cell {name!r} has non-positive area {area}")
        if pin_count is not None and pin_count < 0:
            raise NetlistError(f"cell {name!r} has negative pin count {pin_count}")
        self._cell_names.append(name)
        self._cell_areas.append(float(area))
        self._cell_pin_counts.append(pin_count)
        self._cell_fixed.append(bool(fixed))
        self._name_to_cell[name] = index
        return index

    def add_cells(self, count: int, prefix: str = "c", **kwargs) -> List[int]:
        """Add ``count`` cells named ``<prefix><i>`` and return their indices."""
        start = len(self._cell_names)
        return [
            self.add_cell(name=f"{prefix}{start + i}", **kwargs) for i in range(count)
        ]

    def add_net(self, name: Optional[str] = None, cells: Iterable[int] = ()) -> int:
        """Add a net over ``cells`` (cell indices) and return the net index.

        Duplicate members are collapsed; a net must touch at least one cell.
        """
        index = len(self._net_names)
        if name is None:
            name = f"n{index}"
        if name in self._name_to_net:
            raise NetlistError(f"duplicate net name {name!r}")
        members: List[int] = []
        seen = set()
        for cell in cells:
            if not 0 <= cell < len(self._cell_names):
                raise NetlistError(f"net {name!r} references unknown cell {cell}")
            if cell not in seen:
                seen.add(cell)
                members.append(cell)
        if not members:
            raise NetlistError(f"net {name!r} has no cells")
        self._net_names.append(name)
        self._net_cells.append(tuple(members))
        self._name_to_net[name] = index
        return index

    def set_pin_count(self, cell: int, pin_count: int) -> None:
        """Override the explicit pin count of ``cell``."""
        if not 0 <= cell < len(self._cell_names):
            raise NetlistError(f"unknown cell index {cell}")
        if pin_count < 0:
            raise NetlistError(f"negative pin count {pin_count}")
        self._cell_pin_counts[cell] = pin_count

    def set_area(self, cell: int, area: float) -> None:
        """Override the area of ``cell``."""
        if not 0 <= cell < len(self._cell_names):
            raise NetlistError(f"unknown cell index {cell}")
        if area <= 0:
            raise NetlistError(f"non-positive area {area}")
        self._cell_areas[cell] = float(area)

    # ------------------------------------------------------------------
    def build(self, drop_singleton_nets: bool = False) -> Netlist:
        """Produce the immutable :class:`Netlist`.

        Args:
            drop_singleton_nets: silently discard nets with a single pin
                (they can never be cut and carry no connectivity).
        """
        net_names: List[str] = []
        net_cells: List[Tuple[int, ...]] = []
        for name, members in zip(self._net_names, self._net_cells):
            if drop_singleton_nets and len(members) < 2:
                continue
            net_names.append(name)
            net_cells.append(members)

        cell_nets: List[List[int]] = [[] for _ in range(len(self._cell_names))]
        for net_index, members in enumerate(net_cells):
            for cell in members:
                cell_nets[cell].append(net_index)

        pin_counts: List[int] = []
        for cell, explicit in enumerate(self._cell_pin_counts):
            incident = len(cell_nets[cell])
            if explicit is None:
                pin_counts.append(incident)
            else:
                if explicit < incident:
                    raise NetlistError(
                        f"cell {self._cell_names[cell]!r} declares {explicit} pins "
                        f"but touches {incident} nets"
                    )
                pin_counts.append(explicit)

        return Netlist(
            cell_names=self._cell_names,
            cell_areas=self._cell_areas,
            cell_pin_counts=pin_counts,
            cell_fixed=self._cell_fixed,
            net_names=net_names,
            net_cells=net_cells,
            cell_nets=[tuple(nets) for nets in cell_nets],
        )


def netlist_from_edges(
    num_cells: int, edges: Sequence[Tuple[int, int]], name_prefix: str = "c"
) -> Netlist:
    """Build a netlist whose nets are plain graph edges.

    Convenience used by tests and by graph-shaped generators: every edge
    becomes a 2-pin net.
    """
    builder = NetlistBuilder()
    builder.add_cells(num_cells, prefix=name_prefix)
    for i, (a, b) in enumerate(edges):
        builder.add_net(f"e{i}", [a, b])
    return builder.build()
