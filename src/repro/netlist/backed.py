"""A :class:`Netlist` served directly from its flat-array (CSR) view.

:class:`ArrayBackedNetlist` is the in-memory face of the zero-copy
transport path (:mod:`repro.io.binfmt`): the content lives in one
:class:`~repro.netlist.arrays.NetlistArrays` — possibly views over an
``np.memmap``-ed pack file or a ``multiprocessing.shared_memory`` segment
— plus two compact name tables (UTF-8 blob + offsets).  Nothing else is
materialized up front, so a worker process that maps a shared design pays
O(1) private memory for it, not O(pins) of Python tuples.

Two tiers of accessors keep that promise without forking the API:

* every public :class:`Netlist` accessor is overridden to answer straight
  from the arrays (slices, ``tolist()``, per-index name decodes) — the
  paths the detection kernels touch never materialize anything;
* the base class's private tuple slots (``_net_cells``, ``_cell_names``,
  ...) are shadowed by *materialize-on-demand* properties, so any base
  method or external caller that reaches for them (``Netlist.__eq__``
  from the eager side, :mod:`repro.netlist.validate`, ...) still sees
  exactly the eager structures — built lazily, once, at the usual memory
  cost.  Correctness never depends on which tier answers.

Pickling round-trips through the binary container itself
(:func:`repro.io.binfmt.netlist_from_bytes`), so the pickle-transport
fallback ships the compact array form, never the tuple form.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import NetlistError
from repro.netlist.arrays import NetlistArrays
from repro.netlist.hypergraph import Cell, Net, Netlist


class NameTable:
    """Immutable name list stored as one UTF-8 blob plus offsets.

    ``offsets`` is an int64 array of ``len + 1`` byte offsets into
    ``blob`` (uint8); name ``i`` is ``blob[offsets[i]:offsets[i+1]]``.
    This is the on-disk/shared-memory representation — decoding happens
    per lookup, the full tuple and the name->index dict only on demand.
    """

    __slots__ = ("offsets", "blob", "_names", "_index")

    def __init__(self, offsets: np.ndarray, blob: np.ndarray) -> None:
        self.offsets = offsets
        self.blob = blob
        self._names: Optional[Tuple[str, ...]] = None
        self._index: Optional[Dict[str, int]] = None

    @classmethod
    def from_names(cls, names) -> "NameTable":
        encoded = [name.encode("utf-8") for name in names]
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter(map(len, encoded), dtype=np.int64, count=len(encoded)),
            out=offsets[1:],
        )
        blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
        table = cls(offsets, blob)
        table._names = tuple(names)
        return table

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def name(self, index: int) -> str:
        if self._names is not None:
            return self._names[index]
        if not 0 <= index < len(self):
            raise IndexError(index)
        start, end = int(self.offsets[index]), int(self.offsets[index + 1])
        return self.blob[start:end].tobytes().decode("utf-8")

    def names(self) -> Tuple[str, ...]:
        """All names as a tuple (decoded once, then cached)."""
        if self._names is None:
            data = self.blob.tobytes()
            bounds = self.offsets.tolist()
            self._names = tuple(
                data[bounds[i]:bounds[i + 1]].decode("utf-8")
                for i in range(len(self))
            )
        return self._names

    def index(self) -> Dict[str, int]:
        """The name -> position dict (built once, on demand)."""
        if self._index is None:
            self._index = {name: i for i, name in enumerate(self.names())}
        return self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NameTable):
            return NotImplemented
        return np.array_equal(self.offsets, other.offsets) and np.array_equal(
            self.blob, other.blob
        )

    def __hash__(self) -> int:
        return hash((len(self), int(self.offsets[-1]) if len(self.offsets) else 0))


def _materializing(key: str, build):
    """A property that builds the eager structure once and caches it."""

    def getter(self: "ArrayBackedNetlist"):
        value = self._mat.get(key)
        if value is None:
            value = self._mat[key] = build(self)
        return value

    getter.__name__ = key
    return property(getter)


class ArrayBackedNetlist(Netlist):
    """A netlist whose single source of truth is a :class:`NetlistArrays`.

    Do not construct directly — use :func:`repro.io.binfmt.load_packed`,
    :func:`repro.io.binfmt.netlist_from_buffer` or
    :func:`repro.io.binfmt.netlist_from_netlist_arrays`.

    Args:
        arrays: the CSR view holding the full connectivity and per-cell
            attributes (may be backed by an mmap or shared memory).
        cell_names / net_names: :class:`NameTable` over the same buffer.
        owner: optional object keeping the backing buffer alive (an
            ``mmap.mmap``, a ``SharedMemory`` handle, or the ``bytes``
            blob); held for the lifetime of this netlist.
        source: human-readable origin (pack-file path, ``shm:<name>``),
            used in error messages and by the pool's file transport.
    """

    __slots__ = ("_cell_table", "_net_table", "_mat", "_owner", "source")

    def __init__(
        self,
        arrays: NetlistArrays,
        cell_names: NameTable,
        net_names: NameTable,
        owner: object = None,
        source: str = "",
    ) -> None:
        # Netlist.__init__ is deliberately not called: the tuple slots it
        # would fill are shadowed below by materialize-on-demand properties.
        if len(cell_names) != arrays.num_cells:
            raise NetlistError(
                f"name table has {len(cell_names)} cell names for "
                f"{arrays.num_cells} cells"
            )
        if len(net_names) != arrays.num_nets:
            raise NetlistError(
                f"name table has {len(net_names)} net names for "
                f"{arrays.num_nets} nets"
            )
        self._arrays = arrays
        self._derived = {}
        self._total_pins = int(arrays.pin_counts.sum())
        self._cell_table = cell_names
        self._net_table = net_names
        self._mat: Dict[str, object] = {}
        self._owner = owner
        self.source = source

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return self._arrays.num_cells

    @property
    def num_nets(self) -> int:
        return self._arrays.num_nets

    @property
    def num_incidences(self) -> int:
        return len(self._arrays.net_cells)

    @property
    def average_pins_per_cell(self) -> float:
        if not self.num_cells:
            raise NetlistError("average_pins_per_cell of an empty netlist")
        return self._total_pins / self.num_cells

    # ------------------------------------------------------------------
    # Cell accessors (array-served, nothing materialized)
    # ------------------------------------------------------------------
    def cell(self, index: int) -> Cell:
        return Cell(
            index=index,
            name=self.cell_name(index),
            area=self.cell_area(index),
            pin_count=self.cell_pin_count(index),
            fixed=self.cell_is_fixed(index),
        )

    def cells(self) -> Iterator[Cell]:
        for index in range(self.num_cells):
            yield self.cell(index)

    def cell_name(self, index: int) -> str:
        return self._cell_table.name(index)

    def cell_area(self, index: int) -> float:
        return float(self._arrays.areas[index])

    def cell_pin_count(self, index: int) -> int:
        return int(self._arrays.pin_counts[index])

    def cell_is_fixed(self, index: int) -> bool:
        return bool(self._arrays.fixed_mask[index])

    def cell_index(self, name: str) -> int:
        try:
            return self._cell_table.index()[name]
        except KeyError:
            raise NetlistError(f"unknown cell name {name!r}") from None

    def nets_of_cell(self, index: int) -> Tuple[int, ...]:
        arrays = self._arrays
        start, end = arrays.cell_ptr[index], arrays.cell_ptr[index + 1]
        return tuple(arrays.cell_nets[start:end].tolist())

    def cell_degree(self, index: int) -> int:
        arrays = self._arrays
        return int(arrays.cell_ptr[index + 1] - arrays.cell_ptr[index])

    def movable_cells(self) -> List[int]:
        return np.flatnonzero(~self._arrays.fixed_mask).tolist()

    def fixed_cells(self) -> List[int]:
        return np.flatnonzero(self._arrays.fixed_mask).tolist()

    # ------------------------------------------------------------------
    # Net accessors
    # ------------------------------------------------------------------
    def net(self, index: int) -> Net:
        return Net(
            index=index, name=self.net_name(index), cells=self.cells_of_net(index)
        )

    def nets(self) -> Iterator[Net]:
        for index in range(self.num_nets):
            yield self.net(index)

    def net_name(self, index: int) -> str:
        return self._net_table.name(index)

    def net_index(self, name: str) -> int:
        try:
            return self._net_table.index()[name]
        except KeyError:
            raise NetlistError(f"unknown net name {name!r}") from None

    def cells_of_net(self, index: int) -> Tuple[int, ...]:
        arrays = self._arrays
        start, end = arrays.net_ptr[index], arrays.net_ptr[index + 1]
        return tuple(arrays.net_cells[start:end].tolist())

    def net_degree(self, index: int) -> int:
        arrays = self._arrays
        return int(arrays.net_ptr[index + 1] - arrays.net_ptr[index])

    def neighbors(self, index: int) -> List[int]:
        # Same visit order as the eager implementation: nets in incidence
        # order, members in net order, first occurrence wins.
        arrays = self._arrays
        seen = {index}
        result: List[int] = []
        nets = arrays.cell_nets[
            arrays.cell_ptr[index]:arrays.cell_ptr[index + 1]
        ].tolist()
        for net in nets:
            members = arrays.net_cells[
                arrays.net_ptr[net]:arrays.net_ptr[net + 1]
            ].tolist()
            for other in members:
                if other not in seen:
                    seen.add(other)
                    result.append(other)
        return result

    # ------------------------------------------------------------------
    # Materialize-on-demand shadows of the eager tuple slots.  Anything
    # that reaches below the public API (Netlist.__eq__ called from the
    # eager side, netlist.validate, ad-hoc callers) lands here and gets
    # the exact eager structures, built once.
    # ------------------------------------------------------------------
    _cell_names = _materializing("_cell_names", lambda s: s._cell_table.names())
    _net_names = _materializing("_net_names", lambda s: s._net_table.names())
    _cell_areas = _materializing(
        "_cell_areas", lambda s: tuple(s._arrays.areas.tolist())
    )
    _cell_pin_counts = _materializing(
        "_cell_pin_counts", lambda s: tuple(s._arrays.pin_counts.tolist())
    )
    _cell_fixed = _materializing(
        "_cell_fixed", lambda s: tuple(s._arrays.fixed_mask.tolist())
    )
    _net_cells = _materializing(
        "_net_cells",
        lambda s: tuple(s.cells_of_net(n) for n in range(s.num_nets)),
    )
    _cell_nets = _materializing(
        "_cell_nets",
        lambda s: tuple(s.nets_of_cell(c) for c in range(s.num_cells)),
    )
    _name_to_cell = _materializing("_name_to_cell", lambda s: s._cell_table.index())
    _name_to_net = _materializing("_name_to_net", lambda s: s._net_table.index())

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Netlist):
            return NotImplemented
        if isinstance(other, ArrayBackedNetlist):
            mine, theirs = self._arrays, other._arrays
            return (
                np.array_equal(mine.net_ptr, theirs.net_ptr)
                and np.array_equal(mine.net_cells, theirs.net_cells)
                and np.array_equal(mine.areas, theirs.areas)
                and np.array_equal(mine.pin_counts, theirs.pin_counts)
                and np.array_equal(mine.fixed_mask, theirs.fixed_mask)
                and self._cell_table == other._cell_table
                and self._net_table == other._net_table
            )
        return super().__eq__(other)

    __hash__ = Netlist.__hash__

    def __reduce__(self):
        # Round-trip through the binary container: the pickle fallback
        # transport then ships the compact array form, and the receiving
        # process rebuilds an ArrayBackedNetlist over the blob in place.
        from repro.io.binfmt import netlist_from_bytes, serialize_netlist

        return (netlist_from_bytes, (serialize_netlist(self),))


__all__ = ["ArrayBackedNetlist", "NameTable"]
