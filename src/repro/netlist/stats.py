"""Netlist summary statistics (used by the CLI ``stats`` subcommand).

Gives the quick profile a physical designer looks at before running the
finder: size, pin statistics, net-degree histogram, connectivity, and the
two Rent-exponent estimates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netlist.hypergraph import Netlist
from repro.netlist.ops import connected_components
from repro.utils.tables import format_table


@dataclass(frozen=True)
class NetlistStats:
    """Profile of one netlist.

    Attributes:
        num_cells, num_nets, num_pins: basic sizes.
        num_fixed: fixed terminals (pads).
        avg_pins_per_cell: A(G).
        avg_net_degree: mean pins per net.
        max_net_degree: largest net.
        net_degree_histogram: degree -> count (degrees above 10 pooled).
        num_components: connected components.
        total_area: sum of cell areas.
    """

    num_cells: int
    num_nets: int
    num_pins: int
    num_fixed: int
    avg_pins_per_cell: float
    avg_net_degree: float
    max_net_degree: int
    net_degree_histogram: Tuple[Tuple[str, int], ...]
    num_components: int
    total_area: float

    def render(self) -> str:
        """Human-readable profile."""
        rows = [
            ["cells", self.num_cells],
            ["nets", self.num_nets],
            ["pins", self.num_pins],
            ["fixed cells (pads)", self.num_fixed],
            ["avg pins/cell (A_G)", round(self.avg_pins_per_cell, 3)],
            ["avg net degree", round(self.avg_net_degree, 3)],
            ["max net degree", self.max_net_degree],
            ["connected components", self.num_components],
            ["total cell area", round(self.total_area, 1)],
        ]
        text = format_table(["quantity", "value"], rows)
        histogram = format_table(
            ["net degree", "count"], [[d, c] for d, c in self.net_degree_histogram]
        )
        return f"{text}\n\nnet degree distribution:\n{histogram}"


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute the :class:`NetlistStats` profile of ``netlist``."""
    degrees = [netlist.net_degree(n) for n in range(netlist.num_nets)]
    counter: Counter = Counter()
    for degree in degrees:
        counter[str(degree) if degree <= 10 else ">10"] += 1

    def sort_key(item):
        label = item[0]
        return (1, 0) if label == ">10" else (0, int(label))

    histogram = tuple(sorted(counter.items(), key=sort_key))
    total_incidences = sum(degrees)
    return NetlistStats(
        num_cells=netlist.num_cells,
        num_nets=netlist.num_nets,
        num_pins=netlist.num_pins,
        num_fixed=len(netlist.fixed_cells()),
        avg_pins_per_cell=(
            netlist.average_pins_per_cell if netlist.num_cells else 0.0
        ),
        avg_net_degree=(total_incidences / netlist.num_nets) if netlist.num_nets else 0.0,
        max_net_degree=max(degrees) if degrees else 0,
        net_degree_histogram=histogram,
        num_components=len(connected_components(netlist)),
        total_area=sum(netlist.cell_area(c) for c in range(netlist.num_cells)),
    )
