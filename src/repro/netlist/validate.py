"""Consistency checks for netlists.

:func:`validate_netlist` verifies the structural invariants that the rest of
the package assumes.  The builder enforces most of them at construction time;
this function exists for netlists arriving from external files and as an
executable statement of the invariants for tests.
"""

from __future__ import annotations

from typing import List

from repro.errors import ValidationError
from repro.netlist.hypergraph import Netlist


def validate_netlist(netlist: Netlist, require_connected_pins: bool = False) -> None:
    """Raise :class:`ValidationError` if ``netlist`` violates an invariant.

    Checks performed:
      * every net references valid, distinct cells and has >= 1 pin;
      * cell<->net incidence maps are mutually consistent;
      * explicit pin counts are >= incidence degrees;
      * names are unique (guaranteed by the lookup maps);
      * optionally, every cell touches at least one net.
    """
    num_cells = netlist.num_cells
    for net_index in range(netlist.num_nets):
        cells = netlist.cells_of_net(net_index)
        if not cells:
            raise ValidationError(f"net {netlist.net_name(net_index)!r} has no cells")
        if len(set(cells)) != len(cells):
            raise ValidationError(
                f"net {netlist.net_name(net_index)!r} has duplicate members"
            )
        for cell in cells:
            if not 0 <= cell < num_cells:
                raise ValidationError(
                    f"net {netlist.net_name(net_index)!r} references bad cell {cell}"
                )
            if net_index not in netlist.nets_of_cell(cell):
                raise ValidationError(
                    f"incidence mismatch: net {net_index} lists cell {cell} "
                    f"but cell does not list the net"
                )

    for cell_index in range(num_cells):
        nets = netlist.nets_of_cell(cell_index)
        if len(set(nets)) != len(nets):
            raise ValidationError(
                f"cell {netlist.cell_name(cell_index)!r} lists duplicate nets"
            )
        for net in nets:
            if not 0 <= net < netlist.num_nets:
                raise ValidationError(
                    f"cell {netlist.cell_name(cell_index)!r} references bad net {net}"
                )
            if cell_index not in netlist.cells_of_net(net):
                raise ValidationError(
                    f"incidence mismatch: cell {cell_index} lists net {net} "
                    f"but the net does not list the cell"
                )
        if netlist.cell_pin_count(cell_index) < len(nets):
            raise ValidationError(
                f"cell {netlist.cell_name(cell_index)!r} has fewer pins than nets"
            )
        if require_connected_pins and not nets:
            raise ValidationError(
                f"cell {netlist.cell_name(cell_index)!r} touches no net"
            )

    if netlist.num_cells:
        # A(G) must be well defined and positive for the normalized metrics.
        if netlist.average_pins_per_cell <= 0 and netlist.num_nets:
            raise ValidationError("netlist has nets but zero total pins")
