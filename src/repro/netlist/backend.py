"""Unified compute-backend selection for the vectorized hot paths.

Every vectorized hot path in the reproduction — the geometry kernels from
PR 2 (HPWL, RUDY, quadratic assembly), the array-backed detection kernel
(Phase I-III of the finder) and the flat-array FM partition kernel
(:mod:`repro.partition.kernel`) — keeps its pure-Python implementation
alive as a *scalar reference*.  This module is the single switch between
the two:

* ``resolve_backend(None)`` returns ``"numpy"`` unless the
  ``REPRO_SCALAR_BACKEND`` environment variable is set to a non-empty,
  non-``"0"`` value, which forces the scalar reference everywhere (the
  escape hatch the parity tests and CI cross-check against).
* An explicit ``"numpy"`` / ``"python"`` argument wins over the
  environment, so call sites can pin a backend per call.

``REPRO_SCALAR_GEOMETRY`` (the PR 2 spelling, from when only geometry was
vectorized) is honored as a deprecated alias and warns once per process.

Both backends produce identical results: orderings, integer group
statistics and FM partitions (move sequences, sides, cuts, pass counts)
are bit-identical by construction, floating-point scores agree to well
below 1e-9 (see ``tests/test_finder_kernel.py`` and
``tests/test_partition_kernel.py``), and flow fingerprints never depend on
the backend at all.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import NetlistError

#: Environment variable forcing the scalar reference backend everywhere.
SCALAR_BACKEND_ENV_VAR = "REPRO_SCALAR_BACKEND"

#: Deprecated PR 2 alias of :data:`SCALAR_BACKEND_ENV_VAR`.
LEGACY_SCALAR_ENV_VAR = "REPRO_SCALAR_GEOMETRY"

VALID_BACKENDS = ("numpy", "python")

_legacy_warned = False


def _scalar_forced_by_env() -> bool:
    value = os.environ.get(SCALAR_BACKEND_ENV_VAR)
    if value is None:
        value = os.environ.get(LEGACY_SCALAR_ENV_VAR)
        if value is not None:
            global _legacy_warned
            if not _legacy_warned:
                _legacy_warned = True
                warnings.warn(
                    f"{LEGACY_SCALAR_ENV_VAR} is deprecated; it now governs "
                    f"the detection kernel as well as geometry — set "
                    f"{SCALAR_BACKEND_ENV_VAR} instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
    return (value or "").strip() not in ("", "0")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a compute backend name to ``"numpy"`` or ``"python"``.

    ``None`` picks ``"numpy"`` unless :data:`SCALAR_BACKEND_ENV_VAR` (or its
    deprecated alias) forces the scalar reference implementation.
    """
    if backend is None:
        backend = "python" if _scalar_forced_by_env() else "numpy"
    if backend not in VALID_BACKENDS:
        raise NetlistError(
            f"unknown backend {backend!r}; use 'numpy' or 'python'"
        )
    return backend


@contextmanager
def forced_backend(backend: str) -> Iterator[None]:
    """Force ``backend`` process-wide for the duration of the block.

    Sets :data:`SCALAR_BACKEND_ENV_VAR` (which wins over the deprecated
    alias) and restores the previous value on exit — the single point of
    truth for benchmarks and tests that compare the two backends.
    """
    if backend not in VALID_BACKENDS:
        raise NetlistError(
            f"unknown backend {backend!r}; use 'numpy' or 'python'"
        )
    previous = os.environ.get(SCALAR_BACKEND_ENV_VAR)
    os.environ[SCALAR_BACKEND_ENV_VAR] = "1" if backend == "python" else "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[SCALAR_BACKEND_ENV_VAR]
        else:
            os.environ[SCALAR_BACKEND_ENV_VAR] = previous


__all__ = [
    "LEGACY_SCALAR_ENV_VAR",
    "SCALAR_BACKEND_ENV_VAR",
    "VALID_BACKENDS",
    "forced_backend",
    "resolve_backend",
]
