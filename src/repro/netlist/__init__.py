"""Hypergraph netlist substrate.

A netlist is modeled as a hypergraph ``G = (V, E)``: ``V`` is a set of cells
(standard cells or IO pads) and each net ``e`` in ``E`` connects a subset of
``V``.  This is exactly the representation the paper's metrics and algorithm
operate on.
"""

from repro.netlist.arrays import (
    NetlistArrays,
    build_netlist_arrays,
    gather_segments,
    geometry_backend,
)
from repro.netlist.backed import ArrayBackedNetlist, NameTable
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Cell, Net, Netlist
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import (
    GroupStats,
    PrefixCurves,
    PrefixScanner,
    boundary_nets,
    connected_components,
    cut_size,
    external_pin_count,
    group_connected,
    group_pin_count,
    group_stats,
    induced_netlist,
    internal_nets,
    neighbors_of_group,
    scan_ordering_curves,
)
from repro.netlist.stats import NetlistStats, netlist_stats
from repro.netlist.validate import validate_netlist

__all__ = [
    "ArrayBackedNetlist",
    "Cell",
    "NameTable",
    "Net",
    "Netlist",
    "NetlistArrays",
    "NetlistBuilder",
    "build_netlist_arrays",
    "gather_segments",
    "geometry_backend",
    "resolve_backend",
    "GroupStats",
    "PrefixCurves",
    "PrefixScanner",
    "boundary_nets",
    "connected_components",
    "cut_size",
    "external_pin_count",
    "group_connected",
    "group_pin_count",
    "group_stats",
    "scan_ordering_curves",
    "induced_netlist",
    "internal_nets",
    "neighbors_of_group",
    "validate_netlist",
    "NetlistStats",
    "netlist_stats",
]
