"""Array-backed view of a :class:`~repro.netlist.hypergraph.Netlist`.

The geometry hot paths (HPWL, RUDY demand spreading, quadratic system
assembly) all reduce to per-net scans over pin coordinates.  Instead of
looping over ``cells_of_net`` tuples in Python, they operate on one shared
CSR-style flat view of the hypergraph:

* ``net_ptr`` / ``net_cells`` — net -> member cells, net-major;
* ``cell_ptr`` / ``cell_nets`` — cell -> incident nets, cell-major;
* ``areas`` / ``pin_counts`` / ``fixed_mask`` — per-cell attributes.

With the flat pin arrays, per-net bounding boxes are two ``reduceat`` calls
and spring index arrays are ``repeat``/``triu_indices`` gathers — no Python
loop over pins anywhere.

The view is built lazily on first use and cached on the netlist (the cache
slot is excluded from pickling, so shipping a netlist to a worker process
never ships the arrays).  All arrays are marked read-only: the netlist is
immutable and its array view must be too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.netlist.backend import resolve_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netlist.hypergraph import Netlist


def geometry_backend(backend: Optional[str] = None) -> str:
    """Resolve a geometry backend name.

    Alias of :func:`repro.netlist.backend.resolve_backend`, kept for the
    PR 2 call sites; one switch now governs geometry *and* the detection
    kernel (``REPRO_SCALAR_BACKEND=1`` forces the scalar reference, with
    ``REPRO_SCALAR_GEOMETRY`` honored as a deprecated alias).
    """
    return resolve_backend(backend)


def gather_segments(
    flat: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Concatenate ``flat[starts[i] : starts[i] + lengths[i]]`` segments.

    The CSR equivalent of ``np.concatenate([...])`` over many slices without
    a Python loop; segment order (and order within segments) is preserved,
    which the detection kernel relies on for bit-exact accumulation order.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return flat[:0]
    starts = np.asarray(starts, dtype=np.int64)
    # Contiguity fast path: when the segments tile one contiguous run (each
    # starts where the previous one ends — e.g. whole-CSR gathers), the
    # answer is a slice view, no index array and no copy.
    if len(starts) and np.array_equal(
        starts[1:], starts[:-1] + lengths[:-1]
    ):
        begin = int(starts[0])
        return flat[begin:begin + total]
    offsets = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    return flat[np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, lengths)]


@dataclass(frozen=True)
class NetlistArrays:
    """Read-only flat-array (CSR) view of one netlist.

    Attributes:
        net_ptr: ``(num_nets + 1,)`` int64 segment pointers into
            ``net_cells``; net ``n`` owns ``net_cells[net_ptr[n]:net_ptr[n+1]]``.
        net_cells: flat member-cell indices, net-major.
        cell_ptr: ``(num_cells + 1,)`` int64 segment pointers into
            ``cell_nets``.
        cell_nets: flat incident-net indices, cell-major.
        net_degrees: ``(num_nets,)`` pins per net (``diff(net_ptr)``).
        pin_net: net index owning each ``net_cells`` slot (segment ids,
            handy for broadcasting per-net values back onto pins).
        areas: ``(num_cells,)`` float64 cell areas.
        pin_counts: ``(num_cells,)`` int64 cell pin counts.
        fixed_mask: ``(num_cells,)`` bool, True for fixed terminals.
    """

    net_ptr: np.ndarray
    net_cells: np.ndarray
    cell_ptr: np.ndarray
    cell_nets: np.ndarray
    net_degrees: np.ndarray
    pin_net: np.ndarray
    areas: np.ndarray
    pin_counts: np.ndarray
    fixed_mask: np.ndarray

    @property
    def num_cells(self) -> int:
        return len(self.cell_ptr) - 1

    @property
    def num_nets(self) -> int:
        return len(self.net_ptr) - 1

    def net_bboxes(self, x: np.ndarray, y: np.ndarray):
        """Per-net bounding boxes ``(x0, x1, y0, y1)`` for pin coordinates.

        ``x``/``y`` are per-cell coordinate arrays; every returned array has
        one entry per net (the shared gather + ``reduceat`` kernel behind
        batched HPWL and RUDY).  Requires at least one pin per net, which
        the builder guarantees.
        """
        xs = x[self.net_cells]
        ys = y[self.net_cells]
        starts = self.net_ptr[:-1]
        return (
            np.minimum.reduceat(xs, starts),
            np.maximum.reduceat(xs, starts),
            np.minimum.reduceat(ys, starts),
            np.maximum.reduceat(ys, starts),
        )


def _csr(segments, count: int, total: int):
    ptr = np.zeros(count + 1, dtype=np.int64)
    lengths = np.fromiter(
        (len(segment) for segment in segments), dtype=np.int64, count=count
    )
    np.cumsum(lengths, out=ptr[1:])
    flat = np.fromiter(
        (item for segment in segments for item in segment),
        dtype=np.int64,
        count=total,
    )
    return ptr, flat, lengths


def build_netlist_arrays(netlist: "Netlist") -> NetlistArrays:
    """Build the flat-array view of ``netlist`` (use ``netlist.arrays``)."""
    num_cells = netlist.num_cells
    num_nets = netlist.num_nets
    net_segments = [netlist.cells_of_net(n) for n in range(num_nets)]
    cell_segments = [netlist.nets_of_cell(c) for c in range(num_cells)]
    total = sum(len(segment) for segment in net_segments)
    net_ptr, net_cells, net_degrees = _csr(net_segments, num_nets, total)
    cell_ptr, cell_nets, _ = _csr(cell_segments, num_cells, total)
    pin_net = np.repeat(np.arange(num_nets, dtype=np.int64), net_degrees)
    areas = np.fromiter(
        (netlist.cell_area(c) for c in range(num_cells)),
        dtype=np.float64,
        count=num_cells,
    )
    pin_counts = np.fromiter(
        (netlist.cell_pin_count(c) for c in range(num_cells)),
        dtype=np.int64,
        count=num_cells,
    )
    fixed_mask = np.fromiter(
        (netlist.cell_is_fixed(c) for c in range(num_cells)),
        dtype=bool,
        count=num_cells,
    )
    arrays = NetlistArrays(
        net_ptr=net_ptr,
        net_cells=net_cells,
        cell_ptr=cell_ptr,
        cell_nets=cell_nets,
        net_degrees=net_degrees,
        pin_net=pin_net,
        areas=areas,
        pin_counts=pin_counts,
        fixed_mask=fixed_mask,
    )
    for array in vars(arrays).values():
        array.setflags(write=False)
    return arrays
