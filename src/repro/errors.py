"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class NetlistError(ReproError):
    """Structural problem in a netlist (unknown cell, bad net, ...)."""


class ValidationError(NetlistError):
    """A netlist failed an explicit consistency check."""


class ParseError(ReproError):
    """A file in a supported interchange format could not be parsed."""

    def __init__(self, message: str, path: str = "", line: int = 0):
        location = ""
        if path:
            location = f"{path}:{line}: " if line else f"{path}: "
        super().__init__(f"{location}{message}")
        self.path = path
        self.line = line


class MetricError(ReproError):
    """A metric was evaluated on an invalid group (empty, whole netlist, ...)."""


class FinderError(ReproError):
    """The tangled-logic finder was misconfigured or hit an invalid state."""


class PlacementError(ReproError):
    """Placement could not be computed (no pads, singular system, ...)."""


class GenerationError(ReproError):
    """A synthetic workload generator received inconsistent parameters."""


class ServiceError(ReproError):
    """The detection service layer failed (bad manifest, store corruption,
    exhausted worker retries, ...)."""


class FlowError(ReproError):
    """A staged flow was misdeclared or could not run (unknown stage,
    missing upstream artifact, bad stage config, ...)."""


class ServerError(ReproError):
    """The detection daemon failed (bad request, dead socket, protocol
    violation, unclean shutdown, ...)."""


class ServerBusy(ServerError):
    """The daemon's job queue is full; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s
