"""Shard partitioning of deduplicated sweep plans.

A sharded sweep splits the jobs of one :class:`~repro.service.sweep.SweepPlan`
into ``N`` :class:`SweepShard`\\ s that execute independently (separate
processes with separate result stores — see
:mod:`repro.service.coordinator`).  The partitioner is the layer that
decides *which* shard owns *which* job, and it must preserve the planner's
invariants:

* **Keyed by fingerprint, stable.**  A job's home shard is derived from its
  content fingerprint (SHA-256, process-restart stable), so the same plan
  partitioned twice — in another process, on another day — lands every job
  on the same shard.  Re-running a sweep therefore replays each shard
  against a per-shard store that is already warm with exactly its jobs.
* **Dedup-preserving.**  The planner collapses identical deterministic grid
  points into one job; every point keeps referencing that single job, which
  lives on exactly one shard.  Sharding never re-executes work the planner
  deduplicated, and two shards never compute the same deterministic
  fingerprint.
* **Independent nondeterministic points.**  ``seed=None`` points are
  planned as one job *each* (they are independent random samples even when
  their configs collide).  The partitioner keys them by ``(fingerprint,
  ordinal)`` so colliding samples spread over shards instead of clumping,
  but they remain separate jobs — no shard, store or merge step may ever
  collapse two of them.
* **Balanced.**  Pure hash placement can leave one shard with most of the
  work; a deterministic rebalancing pass moves jobs (highest sort key
  first) from the fullest to the emptiest shard until loads differ by at
  most one.  The pass only looks at fingerprints and shard loads, so it is
  as stable as the hash itself for identical plans.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ServiceError
from repro.service.jobs import DetectionJob
from repro.service.sweep import SweepPlan


@dataclass
class SweepShard:
    """One shard's slice of a sweep plan.

    Attributes:
        shard_id: index of this shard (``0 .. num_shards - 1``).
        num_shards: total shards the plan was split into.
        jobs: the jobs this shard executes, in global plan order.
        job_indices: for each local job, its index in ``plan.jobs`` —
            the coordinator uses this to splice shard results back into
            the plan's job order.
    """

    shard_id: int
    num_shards: int
    jobs: List[DetectionJob] = field(default_factory=list)
    job_indices: List[int] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


def shard_sort_key(fingerprint: str, ordinal: int = 0) -> str:
    """Stable per-job placement key.

    Deterministic jobs use their fingerprint directly (``ordinal`` 0).
    Nondeterministic jobs mix in an ordinal — how many earlier plan jobs
    share the same fingerprint — so independent samples of one config
    spread across shards instead of all hashing to the same one.
    """
    if ordinal == 0:
        return fingerprint
    return hashlib.sha256(
        f"{fingerprint}#{ordinal}".encode("ascii")
    ).hexdigest()


def partition_plan(plan: SweepPlan, num_shards: int) -> List[SweepShard]:
    """Split ``plan.jobs`` into ``num_shards`` balanced, stable shards.

    Every job lands on exactly one shard; shards may be empty when the
    plan has fewer jobs than shards.  See the module docstring for the
    invariants.
    """
    if num_shards < 1:
        raise ServiceError("partition_plan needs num_shards >= 1")
    shards = [SweepShard(shard_id=i, num_shards=num_shards) for i in range(num_shards)]
    # (sort_key, global_index) per job; the ordinal distinguishes repeated
    # fingerprints, which the planner only emits for seed=None jobs.
    seen: Dict[str, int] = {}
    keyed: List[tuple] = []
    for index, job in enumerate(plan.jobs):
        ordinal = seen.get(job.fingerprint, 0)
        seen[job.fingerprint] = ordinal + 1
        keyed.append((shard_sort_key(job.fingerprint, ordinal), index))

    assignment: List[int] = [0] * len(keyed)
    for key, index in keyed:
        assignment[index] = int(key[:16], 16) % num_shards

    # Deterministic rebalance: move the highest-keyed job from the fullest
    # shard to the emptiest until loads differ by at most one.  Ties break
    # toward the lowest shard id so the result is a pure function of the
    # plan's fingerprints.
    loads = [0] * num_shards
    members: List[List[tuple]] = [[] for _ in range(num_shards)]
    for key, index in keyed:
        shard = assignment[index]
        loads[shard] += 1
        members[shard].append((key, index))
    while True:
        donor = max(range(num_shards), key=lambda s: (loads[s], -s))
        receiver = min(range(num_shards), key=lambda s: (loads[s], s))
        if loads[donor] - loads[receiver] <= 1:
            break
        key, index = max(members[donor])
        members[donor].remove((key, index))
        members[receiver].append((key, index))
        assignment[index] = receiver
        loads[donor] -= 1
        loads[receiver] += 1

    for index, job in enumerate(plan.jobs):
        shard = shards[assignment[index]]
        shard.jobs.append(job)
        shard.job_indices.append(index)
    return shards


__all__ = ["SweepShard", "partition_plan", "shard_sort_key"]
