"""Reusable, cache-aware worker pool for seed-parallel detection runs.

The finder's seed trials are embarrassingly parallel, but a fresh
``ProcessPoolExecutor`` per run re-pickles the whole netlist for every chunk
of every run.  :class:`WorkerPool` keeps one executor alive across runs and
ships each ``(netlist, config)`` context to the workers **once**: workers
memoize contexts by key in a process-local cache, and later seed batches for
the same context travel as bare ``(seed_cell, rng_seed)`` pairs.

Protocol: a batch submitted without its context to a worker that has not
seen it yet returns a *miss* marker; the pool re-submits that batch with the
context attached, priming the worker for the rest of its lifetime.  A worker
crash (``BrokenProcessPool``) restarts the executor and replays the
unfinished batches, up to ``max_retries`` times.

Outcomes are returned in the original job order, so results are independent
of both the chunking and the worker count — ``workers=8`` reproduces the
``workers=1`` report exactly.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ServiceError
from repro.finder.config import FinderConfig
from repro.finder.finder import _process_batch, _process_seed, _SeedOutcome
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.service.fingerprint import job_fingerprint

# Worker-process-local context memo: key -> (netlist, config).  Populated the
# first time a batch arrives with its context attached.  Bounded: only the
# most recently used contexts are retained, so a long batch over many large
# designs holds a few netlists per worker, not all of them; an evicted
# context that comes back later is re-shipped through the miss protocol.
_WORKER_CONTEXTS: Dict[str, Tuple[Netlist, FinderConfig]] = {}
_WORKER_CONTEXT_LIMIT = 4

#: Sentinel a worker returns when asked to run a batch for a context it has
#: never been shown.
_MISSING_CONTEXT = "__repro-missing-context__"

_IndexedJob = Tuple[int, Tuple[int, int]]

# A shipped context: (netlist, config, prebuilt NetlistArrays or None).  The
# netlist pickles without its array view; shipping the parent's built CSR
# arrays alongside it means no worker ever rebuilds them per context.
_Context = Tuple[Netlist, FinderConfig, Optional[object]]


def _worker_run_batch(
    key: str,
    indexed_jobs: Sequence[_IndexedJob],
    context: Optional[_Context] = None,
    traced: bool = False,
):
    """Run ``(index, (seed_cell, rng_seed))`` jobs inside a worker process.

    When ``traced``, the worker captures the spans and metrics its seeds
    produce and returns ``{"rows", "spans", "metrics", "started_at",
    "execute_s"}`` instead of the bare row list; the parent re-parents the
    spans under its own ``pool.task`` span and merges the metrics.
    """
    if context is not None:
        netlist, config = context[0], context[1]
        arrays = context[2] if len(context) > 2 else None
        if arrays is not None:
            # Install the shipped CSR view into the unpickled netlist's lazy
            # cache slot so the array kernel never rebuilds it here.
            netlist._arrays = arrays
        _WORKER_CONTEXTS[key] = (netlist, config)
    entry = _WORKER_CONTEXTS.get(key)
    if entry is None:
        return _MISSING_CONTEXT
    # LRU maintenance: dicts iterate in insertion order, so re-inserting the
    # live key and dropping from the front evicts least-recently-used first.
    del _WORKER_CONTEXTS[key]
    _WORKER_CONTEXTS[key] = entry
    while len(_WORKER_CONTEXTS) > _WORKER_CONTEXT_LIMIT:
        del _WORKER_CONTEXTS[next(iter(_WORKER_CONTEXTS))]
    netlist, config = entry
    if not traced:
        return [
            (index, _process_seed(netlist, config, cell, rng))
            for index, (cell, rng) in indexed_jobs
        ]
    started_at = time.time()  # wall clock: comparable with the parent's
    tracer = trace.get_tracer()
    with tracer.capture() as capture:
        began = trace.clock()
        with tracer.span("pool.batch", jobs=len(indexed_jobs)):
            rows = [
                (index, _process_seed(netlist, config, cell, rng))
                for index, (cell, rng) in indexed_jobs
            ]
        execute_s = trace.clock() - began
    return {
        "rows": rows,
        "spans": capture.spans,
        "metrics": capture.metrics,
        "started_at": started_at,
        "execute_s": execute_s,
    }


@dataclass
class PoolStats:
    """Live counters of one :class:`WorkerPool` instance.

    Attributes:
        batches: seed batches submitted to workers (including re-submits).
        context_shipments: batches that carried a pickled netlist context.
        context_misses: batches bounced by an unprimed worker and re-sent.
        restarts: executor restarts after a worker crash.
        serial_runs: runs executed inline without touching the executor.
    """

    batches: int = 0
    context_shipments: int = 0
    context_misses: int = 0
    restarts: int = 0
    serial_runs: int = 0


class WorkerPool:
    """Persistent process pool that runs seed batches for many detections.

    Args:
        workers: worker process count; ``<= 1`` executes inline (serial,
            deterministic, zero pickling).
        max_retries: executor restarts tolerated per run before giving up
            with :class:`ServiceError`.
        batches_per_worker: seed batches carved per worker per run; larger
            values smooth load imbalance between easy and hard seeds at the
            cost of more (cheap) submissions.
    """

    def __init__(
        self, workers: int, max_retries: int = 2, batches_per_worker: int = 1
    ) -> None:
        if workers < 1:
            raise ServiceError("WorkerPool workers must be >= 1")
        if max_retries < 0:
            raise ServiceError("WorkerPool max_retries must be >= 0")
        if batches_per_worker < 1:
            raise ServiceError("WorkerPool batches_per_worker must be >= 1")
        self.workers = workers
        self.max_retries = max_retries
        self.batches_per_worker = batches_per_worker
        self.stats = PoolStats()
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._shipped_keys: Set[str] = set()

    # ------------------------------------------------------------------
    def run_seed_jobs(
        self,
        netlist: Netlist,
        config: FinderConfig,
        jobs: Sequence[Tuple[int, int]],
        key: Optional[str] = None,
    ) -> List[_SeedOutcome]:
        """Run ``(seed_cell, rng_seed)`` jobs; outcomes in job order.

        ``key`` identifies the ``(netlist, config)`` context across calls —
        callers that already computed a job fingerprint should pass it to
        skip re-hashing the netlist.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if self.workers <= 1 or len(jobs) == 1:
            self.stats.serial_runs += 1
            with trace.span("pool.serial", jobs=len(jobs)):
                return _process_batch(netlist, config, jobs)

        if key is None:
            key = job_fingerprint(netlist, config)
        indexed: List[_IndexedJob] = list(enumerate(jobs))
        num_batches = min(
            len(indexed), min(self.workers, len(indexed)) * self.batches_per_worker
        )
        remaining = [indexed[i::num_batches] for i in range(num_batches)]

        outcomes: List[Optional[_SeedOutcome]] = [None] * len(jobs)
        with trace.span(
            "pool.run", jobs=len(jobs), workers=self.workers, batches=num_batches
        ):
            self._run_batches(netlist, config, key, remaining, outcomes)
        return outcomes  # type: ignore[return-value]  # every slot is filled

    def _run_batches(
        self,
        netlist: Netlist,
        config: FinderConfig,
        key: str,
        remaining: List[List[_IndexedJob]],
        outcomes: List[Optional[_SeedOutcome]],
    ) -> None:
        """Submit/retry the batch lists until every outcome slot is filled."""
        traced = trace.enabled()
        ship_context = key not in self._shipped_keys
        restarts = 0
        while remaining:
            executor = self._ensure_executor()
            if ship_context:
                # Ship the parent's (cached) CSR view with the context so no
                # worker rebuilds it; under the scalar reference backend the
                # workers never touch it, so skip the pickling cost.
                arrays = netlist.arrays if resolve_backend() == "numpy" else None
                context = (netlist, config, arrays)
            else:
                context = None
            context_bytes = 0
            if traced and context is not None:
                # Only paid when tracing: the serialized-payload size feeds
                # the run report's transport counters.
                context_bytes = len(pickle.dumps(context))
            futures = {}
            submitted_at: Dict[Any, float] = {}
            broken = False
            retry: List[List[_IndexedJob]] = []
            for position, chunk in enumerate(remaining):
                try:
                    future = executor.submit(
                        _worker_run_batch, key, chunk, context, traced
                    )
                except (BrokenProcessPool, RuntimeError):
                    # The executor died while idle (e.g. a worker was OOM
                    # killed between runs): replay everything not yet
                    # submitted on a fresh executor.
                    broken = True
                    retry.extend(remaining[position:])
                    break
                futures[future] = chunk
                submitted_at[future] = time.time()
                self.stats.batches += 1
                if context is not None:
                    self.stats.context_shipments += 1
                    if traced:
                        trace.counter("pool.context_shipments").add(1)
                        trace.counter("pool.context_bytes").add(context_bytes)
            self._shipped_keys.add(key)
            try:
                for future, chunk in futures.items():
                    try:
                        result = future.result()
                    except (BrokenProcessPool, OSError):
                        broken = True
                        retry.append(chunk)
                        continue
                    if result == _MISSING_CONTEXT:
                        self.stats.context_misses += 1
                        if traced:
                            trace.counter("pool.context_misses").add(1)
                        retry.append(chunk)
                        continue
                    rows = result
                    if traced and isinstance(result, dict):
                        rows = result["rows"]
                        self._record_task(result, submitted_at[future], len(chunk))
                    for index, outcome in rows:
                        outcomes[index] = outcome
            except BaseException:
                # An application error surfaced from a worker: don't leave
                # this run's other batches computing into a shared pool that
                # the next job will queue behind.
                for future in futures:
                    future.cancel()
                raise

            if broken:
                restarts += 1
                self.stats.restarts += 1
                if traced:
                    trace.counter("pool.restarts").add(1)
                if restarts > self.max_retries:
                    raise ServiceError(
                        f"worker pool crashed {restarts} time(s); giving up "
                        f"after {self.max_retries} restart(s)"
                    )
                self._restart_executor()
            # Any retried batch carries the context: it either bounced off an
            # unprimed worker or is replayed into a fresh executor.
            ship_context = bool(retry)
            remaining = retry

    def _record_task(
        self, result: Dict[str, Any], submitted: float, num_jobs: int
    ) -> None:
        """Emit one ``pool.task`` span from a traced worker result and merge
        the worker's telemetry under it.

        Task duration/queue wait are wall-clock deltas (``time.time``): the
        worker's monotonic clock origin is not comparable with the parent's.
        """
        tracer = trace.get_tracer()
        task_id = tracer.record(
            "pool.task",
            duration=max(0.0, time.time() - submitted),
            queue_wait_s=max(0.0, result["started_at"] - submitted),
            execute_s=result["execute_s"],
            jobs=num_jobs,
        )
        tracer.adopt(result["spans"], parent_id=task_id)
        tracer.merge_metrics(result["metrics"])
        trace.counter("pool.tasks").add(1)

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
            self._shipped_keys.clear()
        return self._executor

    def _restart_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._shipped_keys.clear()

    def shutdown(self) -> None:
        """Stop the worker processes (idempotent); the pool may be reused —
        the next run lazily starts a fresh executor."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._shipped_keys.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
