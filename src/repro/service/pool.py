"""Reusable, cache-aware worker pool for seed-parallel detection runs.

The finder's seed trials are embarrassingly parallel, but a fresh
``ProcessPoolExecutor`` per run re-pickles the whole netlist for every chunk
of every run.  :class:`WorkerPool` keeps one executor alive across runs and
ships each ``(netlist, config)`` context to the workers **once**: workers
memoize contexts by key in a process-local cache, and later seed batches for
the same context travel as bare ``(seed_cell, rng_seed)`` pairs.

Context transport (the expensive part of that one shipment) has three
shapes, chosen by :func:`transport_mode` per run:

* **shm** (default on the numpy backend): the parent serializes the design
  once into the pack-blob layout of :mod:`repro.io.binfmt`, places it in a
  ``multiprocessing.shared_memory`` segment and sends workers only a small
  descriptor ``("shm", name, nbytes, config_bytes)``.  Workers map the
  segment and serve the netlist zero-copy from it — N workers share one
  physical copy of the arrays instead of holding N pickled replicas.
* **file**: when the parent's netlist was itself loaded from a pack file
  that still exists with a matching header fingerprint, the descriptor is
  just ``("file", path, fingerprint, config_bytes)`` and workers mmap the
  same file through the page cache — nothing is serialized at all.
* **pickle** (fallback): the classic pickled ``(netlist, config, arrays)``
  tuple, forced by ``REPRO_PICKLE_TRANSPORT=1`` or by the scalar reference
  backend (whose workers want real tuples, not array views), and used
  automatically if shared-memory creation fails.  Results are bit-identical
  across all three transports.

Protocol: a batch submitted without its context to a worker that has not
seen it yet returns a *miss* marker; the pool re-submits that batch with the
context attached, priming the worker for the rest of its lifetime.  A worker
crash (``BrokenProcessPool``) restarts the executor and replays the
unfinished batches, up to ``max_retries`` times.  A worker that died while
the pool was *idle* (between jobs) is detected up front and the executor is
respawned lazily before the next run — without consuming a retry.

Outcomes are returned in the original job order, so results are independent
of both the chunking and the worker count — ``workers=8`` reproduces the
``workers=1`` report exactly.
"""

from __future__ import annotations

import concurrent.futures
import gc
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ParseError, ServiceError
from repro.finder.config import FinderConfig
from repro.finder.finder import _process_batch, _process_seed, _SeedOutcome
from repro.netlist.backed import ArrayBackedNetlist
from repro.netlist.backend import resolve_backend
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.service.fingerprint import FINGERPRINT_CACHE_KEY, job_fingerprint

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

#: Set to ``1`` to force the pickled-context transport (the pre-shm path).
PICKLE_TRANSPORT_ENV = "REPRO_PICKLE_TRANSPORT"


def transport_mode() -> str:
    """``"shared"`` or ``"pickle"`` — how contexts reach the workers.

    Shared-memory transport requires the numpy backend (the scalar
    reference works on Python tuples, which a mapped blob cannot provide
    zero-copy) and can be disabled with ``REPRO_PICKLE_TRANSPORT=1``.
    """
    if os.environ.get(PICKLE_TRANSPORT_ENV, "") == "1":
        return "pickle"
    if resolve_backend() != "numpy":
        return "pickle"
    return "shared"


# Worker-process-local context memo: key -> (netlist, config).  Populated the
# first time a batch arrives with its context attached.  Bounded: only the
# most recently used contexts are retained, so a long batch over many large
# designs holds a few netlists per worker, not all of them; an evicted
# context that comes back later is re-shipped through the miss protocol.
_WORKER_CONTEXTS: Dict[str, Tuple[Netlist, FinderConfig]] = {}
_WORKER_CONTEXT_LIMIT = 4

# key -> the SharedMemory segment backing that context's netlist, closed on
# eviction.  The parent owns the segment name (and unlinks it); workers only
# close their own mapping.
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
_WORKER_PENDING_CLOSE: List[shared_memory.SharedMemory] = []

#: Sentinel a worker returns when asked to run a batch for a context it has
#: never been shown.
_MISSING_CONTEXT = "__repro-missing-context__"

_IndexedJob = Tuple[int, Tuple[int, int]]

# A shipped context is either a transport descriptor — ("pickle", payload),
# ("shm", name, nbytes, config_bytes) or ("file", path, fingerprint,
# config_bytes) — or, for compatibility with direct callers, the legacy
# (netlist, config[, arrays]) tuple.
_Context = Tuple[Any, ...]


def _close_segment(segment: shared_memory.SharedMemory) -> bool:
    try:
        segment.close()
        return True
    except BufferError:
        return False


def _evict_worker_context(key: str) -> None:
    """Drop one memoized context and unmap its shared-memory segment.

    The netlist's array views keep the mapping's buffer exported until they
    are garbage; derived caches (``ScoreContext`` et al.) form reference
    cycles through the netlist, so a collection pass runs before the close
    is retried and stubborn segments wait on a pending list.
    """
    _WORKER_CONTEXTS.pop(key, None)
    segment = _WORKER_SEGMENTS.pop(key, None)
    if segment is not None:
        _WORKER_PENDING_CLOSE.append(segment)
    if _WORKER_PENDING_CLOSE:
        gc.collect()
        _WORKER_PENDING_CLOSE[:] = [
            s for s in _WORKER_PENDING_CLOSE if not _close_segment(s)
        ]


def _install_context(key: str, context: _Context) -> Tuple[Netlist, FinderConfig]:
    """Materialize a shipped context inside a worker process."""
    kind = context[0] if context and isinstance(context[0], str) else None
    if kind == "pickle":
        netlist, config, arrays = pickle.loads(context[1])
        if arrays is not None:
            # Install the shipped CSR view into the unpickled netlist's lazy
            # cache slot so the array kernel never rebuilds it here.
            netlist._arrays = arrays
        return netlist, config
    if kind == "shm":
        from repro.io.binfmt import netlist_from_buffer

        _, name, nbytes, config_bytes = context
        segment = shared_memory.SharedMemory(name=name)
        # The segment may be page-rounded beyond the blob; view exactly it.
        netlist = netlist_from_buffer(
            segment.buf[:nbytes], source=f"shm:{name}", owner=segment
        )
        _WORKER_SEGMENTS[key] = segment
        return netlist, pickle.loads(config_bytes)
    if kind == "file":
        from repro.io.binfmt import load_packed

        _, path, fingerprint, config_bytes = context
        netlist = load_packed(path)
        loaded = netlist.derived_cache.get(FINGERPRINT_CACHE_KEY)
        if loaded != fingerprint:
            raise ServiceError(
                f"pack file {path} changed under the pool: worker loaded "
                f"fingerprint {loaded}, parent shipped {fingerprint}"
            )
        return netlist, config_bytes and pickle.loads(config_bytes)
    # Legacy in-process form: (netlist, config[, arrays]).
    netlist, config = context[0], context[1]
    arrays = context[2] if len(context) > 2 else None
    if arrays is not None:
        netlist._arrays = arrays
    return netlist, config


def _worker_memory() -> Dict[str, float]:
    """Peak and current-private memory of this worker, in KiB.

    ``private_kb`` (``smaps_rollup`` Private_Clean + Private_Dirty) is the
    discriminating number under fork: pages inherited copy-on-write or
    mapped from shared memory count as Shared, so a worker serving a design
    out of an shm segment shows a flat private footprint while a pickled
    replica shows up here in full.
    """
    memory = {"maxrss_kb": 0.0, "private_kb": 0.0}
    if resource is not None:
        memory["maxrss_kb"] = float(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )
    try:
        with open("/proc/self/smaps_rollup") as handle:
            for line in handle:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    memory["private_kb"] += float(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux
        pass
    return memory


def _worker_run_batch(
    key: str,
    indexed_jobs: Sequence[_IndexedJob],
    context: Optional[_Context] = None,
    traced: bool = False,
):
    """Run ``(index, (seed_cell, rng_seed))`` jobs inside a worker process.

    When ``traced``, the worker captures the spans and metrics its seeds
    produce and returns ``{"rows", "spans", "metrics", "started_at",
    "execute_s", "maxrss_kb", "private_kb"}`` instead of the bare row list;
    the parent re-parents the spans under its own ``pool.task`` span and
    merges the metrics.
    """
    if context is not None:
        _evict_worker_context(key)  # drop any stale mapping before reinstall
        _WORKER_CONTEXTS[key] = _install_context(key, context)
    entry = _WORKER_CONTEXTS.get(key)
    if entry is None:
        return _MISSING_CONTEXT
    # LRU maintenance: dicts iterate in insertion order, so re-inserting the
    # live key and dropping from the front evicts least-recently-used first.
    del _WORKER_CONTEXTS[key]
    _WORKER_CONTEXTS[key] = entry
    while len(_WORKER_CONTEXTS) > _WORKER_CONTEXT_LIMIT:
        _evict_worker_context(next(iter(_WORKER_CONTEXTS)))
    netlist, config = entry
    if not traced:
        return [
            (index, _process_seed(netlist, config, cell, rng))
            for index, (cell, rng) in indexed_jobs
        ]
    started_at = time.time()  # wall clock: comparable with the parent's
    tracer = trace.get_tracer()
    with tracer.capture() as capture:
        began = trace.clock()
        with tracer.span("pool.batch", jobs=len(indexed_jobs)):
            rows = [
                (index, _process_seed(netlist, config, cell, rng))
                for index, (cell, rng) in indexed_jobs
            ]
        execute_s = trace.clock() - began
    return {
        "rows": rows,
        "spans": capture.spans,
        "metrics": capture.metrics,
        "started_at": started_at,
        "execute_s": execute_s,
        **_worker_memory(),
    }


@dataclass
class PoolStats:
    """Live counters of one :class:`WorkerPool` instance.

    Attributes:
        batches: seed batches submitted to workers (including re-submits).
        context_shipments: batches that carried a netlist context (in any
            transport).
        context_misses: batches bounced by an unprimed worker and re-sent.
        restarts: executor restarts after an in-task worker crash (these
            count against ``max_retries``).
        respawns: executors rebuilt *between* runs because a worker died
            while idle (e.g. OOM-killed); detected lazily on the next run
            and never counted against ``max_retries``.
        serial_runs: runs executed inline without touching the executor.
        pickle_contexts: contexts shipped as full pickled payloads.
        shm_contexts: contexts shipped as shared-memory descriptors.
        file_contexts: contexts shipped as pack-file descriptors.
        transport_fallbacks: shared-memory attempts that fell back to
            pickle (e.g. ``/dev/shm`` exhausted).
        shm_segments: shared-memory segments created by this pool.
        shm_bytes: total bytes placed into shared memory.
        context_bytes: bytes actually sent through the executor's pickle
            channel for context shipments (descriptor size under shm/file
            transport; full payload size under pickle transport).
    """

    batches: int = 0
    context_shipments: int = 0
    context_misses: int = 0
    restarts: int = 0
    respawns: int = 0
    serial_runs: int = 0
    pickle_contexts: int = 0
    shm_contexts: int = 0
    file_contexts: int = 0
    transport_fallbacks: int = 0
    shm_segments: int = 0
    shm_bytes: int = 0
    context_bytes: int = 0


class WorkerPool:
    """Persistent process pool that runs seed batches for many detections.

    Args:
        workers: worker process count; ``<= 1`` executes inline (serial,
            deterministic, zero pickling).
        max_retries: executor restarts tolerated per run before giving up
            with :class:`ServiceError`.
        batches_per_worker: seed batches carved per worker per run; larger
            values smooth load imbalance between easy and hard seeds at the
            cost of more (cheap) submissions.
    """

    def __init__(
        self, workers: int, max_retries: int = 2, batches_per_worker: int = 1
    ) -> None:
        if workers < 1:
            raise ServiceError("WorkerPool workers must be >= 1")
        if max_retries < 0:
            raise ServiceError("WorkerPool max_retries must be >= 0")
        if batches_per_worker < 1:
            raise ServiceError("WorkerPool batches_per_worker must be >= 1")
        self.workers = workers
        self.max_retries = max_retries
        self.batches_per_worker = batches_per_worker
        self.stats = PoolStats()
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._shipped_keys: Set[str] = set()
        # key -> (segment, blob_nbytes).  The parent owns segment lifetime:
        # it unlinks on eviction/shutdown; workers attach by name.  Bounded
        # like the worker memo — an evicted context re-serializes on return.
        self._segments: Dict[str, Tuple[shared_memory.SharedMemory, int]] = {}

    # ------------------------------------------------------------------
    def run_seed_jobs(
        self,
        netlist: Netlist,
        config: FinderConfig,
        jobs: Sequence[Tuple[int, int]],
        key: Optional[str] = None,
    ) -> List[_SeedOutcome]:
        """Run ``(seed_cell, rng_seed)`` jobs; outcomes in job order.

        ``key`` identifies the ``(netlist, config)`` context across calls —
        callers that already computed a job fingerprint should pass it to
        skip re-hashing the netlist.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if self.workers <= 1 or len(jobs) == 1:
            self.stats.serial_runs += 1
            with trace.span("pool.serial", jobs=len(jobs)):
                return _process_batch(netlist, config, jobs)

        if key is None:
            key = job_fingerprint(netlist, config)
        indexed: List[_IndexedJob] = list(enumerate(jobs))
        num_batches = min(
            len(indexed), min(self.workers, len(indexed)) * self.batches_per_worker
        )
        remaining = [indexed[i::num_batches] for i in range(num_batches)]

        outcomes: List[Optional[_SeedOutcome]] = [None] * len(jobs)
        with trace.span(
            "pool.run", jobs=len(jobs), workers=self.workers, batches=num_batches
        ):
            self._run_batches(netlist, config, key, remaining, outcomes)
        return outcomes  # type: ignore[return-value]  # every slot is filled

    # ------------------------------------------------------------------
    def _prepare_context(
        self, netlist: Netlist, config: FinderConfig, key: str, traced: bool
    ) -> Tuple[_Context, int]:
        """Build the transport descriptor for one context shipment.

        Returns ``(context, shipped_bytes)`` where ``shipped_bytes`` is what
        actually crosses the executor's pickle channel per batch — the whole
        payload under pickle transport, just the descriptor under shm/file.
        """
        if transport_mode() == "pickle":
            return self._pickle_context(netlist, config)
        config_bytes = pickle.dumps(config)
        descriptor = self._file_context(netlist, config_bytes)
        if descriptor is None:
            descriptor = self._shm_context(netlist, config_bytes, key, traced)
        if descriptor is None:  # shared memory unavailable: fall back
            self.stats.transport_fallbacks += 1
            return self._pickle_context(netlist, config)
        shipped = len(pickle.dumps(descriptor))
        if descriptor[0] == "shm":
            self.stats.shm_contexts += 1
        else:
            self.stats.file_contexts += 1
        if traced:
            trace.counter("pool.descriptor_bytes").add(shipped)
        return descriptor, shipped

    def _pickle_context(
        self, netlist: Netlist, config: FinderConfig
    ) -> Tuple[_Context, int]:
        # Ship the parent's (cached) CSR view with the context so no worker
        # rebuilds it; under the scalar reference backend the workers never
        # touch it, and an array-backed netlist already carries its arrays
        # inside its own serialized form.
        arrays = None
        if resolve_backend() == "numpy" and not isinstance(
            netlist, ArrayBackedNetlist
        ):
            arrays = netlist.arrays
        payload = pickle.dumps((netlist, config, arrays))
        self.stats.pickle_contexts += 1
        return ("pickle", payload), len(payload)

    def _file_context(
        self, netlist: Netlist, config_bytes: bytes
    ) -> Optional[_Context]:
        """Pack-file descriptor, when the design came from a live pack file."""
        if not isinstance(netlist, ArrayBackedNetlist):
            return None
        path = netlist.source
        if not path or not os.path.isfile(path):
            return None
        fingerprint = netlist.derived_cache.get(FINGERPRINT_CACHE_KEY)
        if fingerprint is None:
            return None
        try:
            from repro.io.binfmt import packed_fingerprint

            if packed_fingerprint(path) != fingerprint:
                return None
        except (ParseError, OSError):
            return None
        return ("file", path, fingerprint, config_bytes)

    def _shm_context(
        self, netlist: Netlist, config_bytes: bytes, key: str, traced: bool
    ) -> Optional[_Context]:
        """Shared-memory descriptor, creating/reusing the segment for ``key``."""
        entry = self._segments.get(key)
        if entry is None:
            from repro.io.binfmt import serialize_netlist

            blob = serialize_netlist(netlist)
            try:
                segment = shared_memory.SharedMemory(create=True, size=len(blob))
            except OSError:
                return None
            segment.buf[: len(blob)] = blob
            entry = (segment, len(blob))
            self._segments[key] = entry
            self.stats.shm_segments += 1
            self.stats.shm_bytes += len(blob)
            if traced:
                trace.counter("pool.shm_segments").add(1)
                trace.counter("pool.shm_bytes").add(len(blob))
            while len(self._segments) > _WORKER_CONTEXT_LIMIT:
                stale = next(iter(self._segments))
                self._destroy_segment(*self._segments.pop(stale))
        else:  # LRU touch
            del self._segments[key]
            self._segments[key] = entry
        segment, nbytes = entry
        return ("shm", segment.name, nbytes, config_bytes)

    @staticmethod
    def _destroy_segment(segment: shared_memory.SharedMemory, _nbytes: int) -> None:
        _close_segment(segment)
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def _release_segments(self) -> None:
        while self._segments:
            _, entry = self._segments.popitem()
            self._destroy_segment(*entry)

    # ------------------------------------------------------------------
    def _run_batches(
        self,
        netlist: Netlist,
        config: FinderConfig,
        key: str,
        remaining: List[List[_IndexedJob]],
        outcomes: List[Optional[_SeedOutcome]],
    ) -> None:
        """Submit/retry the batch lists until every outcome slot is filled."""
        traced = trace.enabled()
        ship_context = key not in self._shipped_keys
        restarts = 0
        context: Optional[_Context] = None
        context_bytes = 0
        while remaining:
            executor = self._ensure_executor()
            if ship_context and context is None:
                # Serialized exactly once per run; the same prepared payload
                # serves every shipping batch and the byte counters.
                context, context_bytes = self._prepare_context(
                    netlist, config, key, traced
                )
            shipped = context if ship_context else None
            futures = {}
            submitted_at: Dict[Any, float] = {}
            broken = False
            retry: List[List[_IndexedJob]] = []
            for position, chunk in enumerate(remaining):
                try:
                    future = executor.submit(
                        _worker_run_batch, key, chunk, shipped, traced
                    )
                except (BrokenProcessPool, RuntimeError):
                    # The executor died while idle (e.g. a worker was OOM
                    # killed between runs): replay everything not yet
                    # submitted on a fresh executor.
                    broken = True
                    retry.extend(remaining[position:])
                    break
                futures[future] = chunk
                submitted_at[future] = time.time()
                self.stats.batches += 1
                if shipped is not None:
                    self.stats.context_shipments += 1
                    self.stats.context_bytes += context_bytes
                    if traced:
                        trace.counter("pool.context_shipments").add(1)
                        trace.counter("pool.context_bytes").add(context_bytes)
            self._shipped_keys.add(key)
            try:
                for future, chunk in futures.items():
                    try:
                        result = future.result()
                    except (BrokenProcessPool, OSError):
                        broken = True
                        retry.append(chunk)
                        continue
                    if result == _MISSING_CONTEXT:
                        self.stats.context_misses += 1
                        if traced:
                            trace.counter("pool.context_misses").add(1)
                        retry.append(chunk)
                        continue
                    rows = result
                    if traced and isinstance(result, dict):
                        rows = result["rows"]
                        self._record_task(result, submitted_at[future], len(chunk))
                    for index, outcome in rows:
                        outcomes[index] = outcome
            except BaseException:
                # An application error surfaced from a worker: don't leave
                # this run's other batches computing into a shared pool that
                # the next job will queue behind.
                for future in futures:
                    future.cancel()
                raise

            if broken:
                restarts += 1
                self.stats.restarts += 1
                if traced:
                    trace.counter("pool.restarts").add(1)
                if restarts > self.max_retries:
                    raise ServiceError(
                        f"worker pool crashed {restarts} time(s); giving up "
                        f"after {self.max_retries} restart(s)"
                    )
                self._restart_executor()
            # Any retried batch carries the context: it either bounced off an
            # unprimed worker or is replayed into a fresh executor.
            ship_context = bool(retry)
            remaining = retry

    def _record_task(
        self, result: Dict[str, Any], submitted: float, num_jobs: int
    ) -> None:
        """Emit one ``pool.task`` span from a traced worker result and merge
        the worker's telemetry under it.

        Task duration/queue wait are wall-clock deltas (``time.time``): the
        worker's monotonic clock origin is not comparable with the parent's.
        """
        tracer = trace.get_tracer()
        task_id = tracer.record(
            "pool.task",
            duration=max(0.0, time.time() - submitted),
            queue_wait_s=max(0.0, result["started_at"] - submitted),
            execute_s=result["execute_s"],
            jobs=num_jobs,
            maxrss_kb=result.get("maxrss_kb", 0.0),
            private_kb=result.get("private_kb", 0.0),
        )
        tracer.adopt(result["spans"], parent_id=task_id)
        tracer.merge_metrics(result["metrics"])
        trace.counter("pool.tasks").add(1)
        trace.histogram("pool.worker_maxrss_kb").observe(
            result.get("maxrss_kb", 0.0)
        )
        trace.histogram("pool.worker_private_kb").observe(
            result.get("private_kb", 0.0)
        )

    # ------------------------------------------------------------------
    def _workers_dead(self) -> bool:
        """True when the idle executor has lost a worker (or broke).

        A worker OOM-killed *between* jobs leaves the executor poisoned:
        the next submit would raise ``BrokenProcessPool`` and burn one of
        the run's retries on a failure that predates it.  Checking process
        liveness up front lets :meth:`_ensure_executor` rebuild lazily —
        the next task starts on a healthy pool and retries stay reserved
        for crashes that happen *during* that task.
        """
        executor = self._executor
        if executor is None:
            return False
        if getattr(executor, "_broken", False):
            return True
        processes = getattr(executor, "_processes", None)
        if not processes:
            return False
        return any(not process.is_alive() for process in processes.values())

    def _ensure_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is not None and self._workers_dead():
            self.stats.respawns += 1
            if trace.enabled():
                trace.counter("pool.respawns").add(1)
            self._restart_executor()
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
            self._shipped_keys.clear()
        return self._executor

    def _restart_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._shipped_keys.clear()

    def shutdown(self) -> None:
        """Stop the worker processes and release shared-memory segments
        (idempotent); the pool may be reused — the next run lazily starts a
        fresh executor."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._shipped_keys.clear()
        self._release_segments()

    def __del__(self) -> None:  # best-effort: don't leak named segments
        try:
            self._release_segments()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
