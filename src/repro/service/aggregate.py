"""Sweep aggregation and publishing (the results-publisher layer).

Modelled on opensearch-benchmark's ``aggregator.py`` +
``results_publisher.py`` split: the coordinator produces a
:class:`~repro.service.sweep.SweepOutcome` (or its sharded subclass) in
plan point order, and this module turns it into publishable artifacts —

* :func:`point_rows` — the canonical per-point JSONL rows.  Both the
  single-process ``repro sweep`` and every sharded mode go through this
  one builder, which is what makes "4-shard output is bit-identical to
  the unsharded sweep" a diffable property rather than a hope.
* :func:`aggregate_sweep` — roll the outcome up into a
  :class:`SweepAggregate`: totals, cache effectiveness, per-shard
  wall-clock/attempt accounting and per-axis response summaries (how did
  ``lambda_skip=20`` do across every design and other-axis value?).
* :func:`write_aggregate` — publish the aggregate as one JSON document.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.codec import report_to_dict
from repro.service.sweep import SweepOutcome

#: Version stamp of the published aggregate document.
AGGREGATE_SCHEMA = 1


def point_rows(outcome: SweepOutcome) -> List[Dict[str, Any]]:
    """Per-grid-point JSONL rows of ``outcome``, in plan point order."""
    rows: List[Dict[str, Any]] = []
    for point, result in outcome.point_results():
        rows.append(
            {
                "design": point.design,
                "overrides": point.overrides_dict(),
                "fingerprint": result.job.fingerprint,
                "cached": result.cached,
                "runtime_seconds": result.runtime_seconds,
                "error": result.error,
                "report": report_to_dict(result.report) if result.report else None,
            }
        )
    return rows


@dataclass
class AxisValueSummary:
    """Response of the sweep at one value of one axis (marginalized over
    every design and every other axis)."""

    points: int = 0
    ok: int = 0
    failed: int = 0
    cache_hits: int = 0
    _runtime: float = field(default=0.0, repr=False)
    _num_gtls: int = field(default=0, repr=False)
    _best_score: float = field(default=0.0, repr=False)
    _scored: int = field(default=0, repr=False)

    def add(self, result) -> None:
        self.points += 1
        if result.ok:
            self.ok += 1
            self._runtime += result.runtime_seconds
            self._num_gtls += result.report.num_gtls
            if result.report.gtls:
                self._best_score += result.report.gtls[0].score
                self._scored += 1
        else:
            self.failed += 1
        if result.cached:
            self.cache_hits += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "points": self.points,
            "ok": self.ok,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "mean_runtime_s": self._runtime / self.ok if self.ok else 0.0,
            "mean_num_gtls": self._num_gtls / self.ok if self.ok else 0.0,
            "mean_best_score": (
                self._best_score / self._scored if self._scored else 0.0
            ),
        }


@dataclass
class SweepAggregate:
    """Rolled-up statistics of one executed sweep.

    ``shards``/``mode``/``merge`` are populated when the outcome came from
    the sharded coordinator; an unsharded sweep aggregates as one implicit
    shard-less run.
    """

    points: int
    jobs: int
    deduplicated: int
    failed_points: int
    cache_hits: int
    cache_misses: int
    wall_seconds: float
    mode: str
    per_axis: Dict[str, Dict[str, Dict[str, Any]]]
    shards: List[Dict[str, Any]] = field(default_factory=list)
    merge: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": AGGREGATE_SCHEMA,
            "points": self.points,
            "jobs": self.jobs,
            "deduplicated": self.deduplicated,
            "failed_points": self.failed_points,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "wall_seconds": self.wall_seconds,
            "mode": self.mode,
            "per_axis": self.per_axis,
            "shards": self.shards,
            "merge": self.merge,
        }

    def summary(self) -> str:
        """One-line human-readable form."""
        line = (
            f"{self.points} point(s), {self.jobs} job(s) "
            f"({self.deduplicated} deduplicated), "
            f"{self.failed_points} failed, "
            f"{self.cache_hits} cache hit(s), {self.wall_seconds:.2f}s wall"
        )
        if self.shards:
            dead = sum(1 for shard in self.shards if not shard.get("ok"))
            line += f", {len(self.shards)} shard(s)"
            if dead:
                line += f" ({dead} FAILED)"
        return line


def aggregate_sweep(outcome: SweepOutcome) -> SweepAggregate:
    """Aggregate ``outcome`` (sharded or not) into publishable stats."""
    per_axis: Dict[str, Dict[str, AxisValueSummary]] = {}
    failed_points = 0
    for point, result in outcome.point_results():
        if not result.ok:
            failed_points += 1
        for axis, value in point.overrides:
            summary = per_axis.setdefault(axis, {}).setdefault(
                str(value), AxisValueSummary()
            )
            summary.add(result)

    # Sharded outcomes carry their own accounting; plain outcomes fall back
    # to job-result counters.
    shard_stats = getattr(outcome, "shard_stats", None) or []
    if shard_stats:
        cache_hits = sum(stats.cache_hits for stats in shard_stats)
        cache_misses = sum(stats.cache_misses for stats in shard_stats)
    else:
        cache_hits = sum(1 for r in outcome.job_results if r.cached)
        cache_misses = len(outcome.job_results) - cache_hits
    merge_stats = getattr(outcome, "merge_stats", None)
    return SweepAggregate(
        points=len(outcome.plan.points),
        jobs=len(outcome.plan.jobs),
        deduplicated=outcome.plan.num_deduplicated,
        failed_points=failed_points,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        wall_seconds=float(getattr(outcome, "wall_seconds", 0.0)),
        mode=str(getattr(outcome, "mode", "single")),
        per_axis={
            axis: {
                value: summary.to_dict()
                for value, summary in sorted(values.items())
            }
            for axis, values in sorted(per_axis.items())
        },
        shards=[stats.to_dict() for stats in shard_stats],
        merge=(
            {
                "copied": merge_stats.copied,
                "merged": merge_stats.merged,
                "conflicts": merge_stats.conflicts,
                "stale_skipped": merge_stats.stale_skipped,
            }
            if merge_stats is not None
            else None
        ),
    )


def write_aggregate(path: str, aggregate: SweepAggregate) -> None:
    """Publish ``aggregate`` as a JSON document at ``path``."""
    with open(path, "w") as handle:
        json.dump(aggregate.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = [
    "AGGREGATE_SCHEMA",
    "AxisValueSummary",
    "SweepAggregate",
    "aggregate_sweep",
    "point_rows",
    "write_aggregate",
]
