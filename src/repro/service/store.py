"""Persistent result store: SQLite index with JSON report payloads.

One SQLite database (``results.sqlite`` inside the cache directory) holds a
row per job fingerprint.  Reports are stored as JSON (see
:mod:`repro.service.codec`), which keeps the store portable and greppable
while SQLite provides atomic upserts, fast primary-key lookups and simple
eviction queries.

The store keeps live hit/miss counters (:class:`CacheStats`) so batch runs
can report their cache effectiveness.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import sqlite3
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.finder.result import FinderReport
from repro.service.codec import report_from_dict, report_to_dict

logger = logging.getLogger(__name__)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint   TEXT PRIMARY KEY,
    payload       TEXT NOT NULL,
    created_at    REAL NOT NULL,
    last_used_at  REAL NOT NULL,
    use_count     INTEGER NOT NULL DEFAULT 0,
    num_gtls      INTEGER NOT NULL,
    runtime_seconds REAL NOT NULL
)
"""


@dataclass
class CacheStats:
    """Live counters of one store instance (not persisted)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the store (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.hits} hit(s) / {self.misses} miss(es) "
            f"({self.hit_rate:.0%} hit rate), {self.puts} put(s)"
        )


class ResultStore:
    """Persistent fingerprint -> :class:`FinderReport` store.

    >>> store = ResultStore(cache_dir)          # doctest: +SKIP
    >>> store.put("abc...", report)             # doctest: +SKIP
    >>> store.get("abc...") == report           # doctest: +SKIP
    True

    Usable as a context manager; :meth:`close` is idempotent.
    """

    DB_NAME = "results.sqlite"

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)
        self._db_path = os.path.join(cache_dir, self.DB_NAME)
        try:
            self._conn = sqlite3.connect(self._db_path)
            self._conn.execute(_SCHEMA)
            self._conn.commit()
        except sqlite3.Error as error:
            raise ServiceError(
                f"cannot open result store at {self._db_path}: {error}"
            ) from error
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[FinderReport]:
        """Stored report for ``fingerprint``, or ``None`` (counted as a miss)."""
        self._require_open()
        with self._wrap_db("cache lookup"):
            row = self._conn.execute(
                "SELECT payload FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        try:
            report = report_from_dict(json.loads(row[0]))
        except (json.JSONDecodeError, ReproError):
            # A corrupt or stale row (malformed JSON, codec version skew, a
            # config that no longer validates) must not poison the run: drop
            # it and treat the lookup as a miss so the job is recomputed.
            self.evict(fingerprint)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            self._conn.execute(
                "UPDATE results SET last_used_at = ?, use_count = use_count + 1 "
                "WHERE fingerprint = ?",
                (time.time(), fingerprint),
            )
            self._conn.commit()
        except sqlite3.Error as error:
            # The payload was already read; LRU bookkeeping must not turn a
            # hit into a failure (e.g. read-only cache dir, lock contention).
            logger.warning("cache hit bookkeeping failed on %s: %s", self._db_path, error)
        return report

    def put(self, fingerprint: str, report: FinderReport) -> None:
        """Insert or replace the report stored under ``fingerprint``."""
        self._require_open()
        payload = json.dumps(report_to_dict(report), separators=(",", ":"))
        now = time.time()
        with self._wrap_db("cache insert"):
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, payload, created_at, last_used_at, use_count, "
                " num_gtls, runtime_seconds) VALUES (?, ?, ?, ?, 0, ?, ?)",
                (fingerprint, payload, now, now, report.num_gtls, report.runtime_seconds),
            )
            self._conn.commit()
        self.stats.puts += 1

    def evict(self, fingerprint: str) -> bool:
        """Remove one entry; returns True when a row was deleted."""
        self._require_open()
        with self._wrap_db("cache eviction"):
            cursor = self._conn.execute(
                "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
            )
            self._conn.commit()
        evicted = cursor.rowcount > 0
        if evicted:
            self.stats.evictions += 1
        return evicted

    def evict_lru(self, keep: int) -> int:
        """Keep only the ``keep`` most recently used entries; returns the
        number of evicted rows."""
        self._require_open()
        if keep < 0:
            raise ServiceError("evict_lru keep must be >= 0")
        with self._wrap_db("cache eviction"):
            cursor = self._conn.execute(
                "DELETE FROM results WHERE fingerprint NOT IN ("
                "SELECT fingerprint FROM results "
                "ORDER BY last_used_at DESC LIMIT ?)",
                (keep,),
            )
            self._conn.commit()
        self.stats.evictions += cursor.rowcount
        return cursor.rowcount

    def clear(self) -> int:
        """Drop every entry; returns the number of evicted rows."""
        return self.evict_lru(0)

    def entries(self) -> List[Tuple[str, int, float]]:
        """``(fingerprint, num_gtls, runtime_seconds)`` of every stored row,
        most recently used first."""
        self._require_open()
        return list(
            self._conn.execute(
                "SELECT fingerprint, num_gtls, runtime_seconds FROM results "
                "ORDER BY last_used_at DESC"
            )
        )

    def __len__(self) -> int:
        self._require_open()
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def __contains__(self, fingerprint: str) -> bool:
        self._require_open()
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying database (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _require_open(self) -> None:
        if self._conn is None:
            raise ServiceError("result store is closed")

    @contextlib.contextmanager
    def _wrap_db(self, operation: str):
        """Translate raw SQLite failures (locked db, full disk, corruption)
        into the store's :class:`ServiceError` contract."""
        try:
            yield
        except sqlite3.Error as error:
            raise ServiceError(
                f"{operation} failed on {self._db_path}: {error}"
            ) from error

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
