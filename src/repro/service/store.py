"""Persistent result store: SQLite index with JSON artifact payloads.

One SQLite database (``results.sqlite`` inside the cache directory) holds a
row per fingerprint.  Payloads are stored as JSON, which keeps the store
portable and greppable while SQLite provides atomic upserts, fast
primary-key lookups and simple eviction queries.

The store is artifact-agnostic: every row carries a ``kind`` tag (e.g.
``"finder_report"``, ``"placement"``, ``"congestion"``) and a
``schema_version`` stamp.  Rows written under an older schema version — or
by a database that predates the column entirely — are treated as misses,
evicted and rewritten, never mis-decoded.  The original
:meth:`ResultStore.get`/:meth:`ResultStore.put` detection-report interface
is a thin layer over the generic payload methods.

The store keeps live hit/miss counters (:class:`CacheStats`) so batch and
flow runs can report their cache effectiveness.

Concurrency: the database runs in WAL journal mode with a busy timeout, so
one cache directory can be shared by a long-lived daemon and concurrent
CLI runs (readers never block the writer; a second writer waits instead of
erroring), and each :class:`ResultStore` instance is thread-safe — an
internal lock serializes use of the single SQLite connection.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.finder.result import FinderReport
from repro.obs import trace
from repro.service.codec import report_from_dict, report_to_dict

logger = logging.getLogger(__name__)

#: Row-level schema version.  Bump whenever the payload conventions change
#: (e.g. a codec rewrite) so every previously persisted row reads as a miss
#: and is recomputed under the new scheme instead of being mis-decoded.
#: Version 1 was the PR-1 report-only store; version 2 added generic
#: artifact kinds.  When bumping, skip past ``SCHEMA_VERSION +
#: max(KIND_REVISIONS.values())`` so no old kind-revised row can collide.
SCHEMA_VERSION = 2

#: Per-kind schema revisions layered on :data:`SCHEMA_VERSION`.  Bump a
#: kind's revision when an algorithm fix changes that artifact for
#: identical inputs, so only that kind's cached rows read as misses while
#: unaffected kinds (e.g. expensive detection reports) stay warm.
#: ``partition``/``placement``/``congestion`` were bumped by the PR-5
#: bugfixes (FM start balance, spreading split consistency, legalizer
#: overlap) — congestion derives from placement.
KIND_REVISIONS = {"partition": 1, "placement": 1, "congestion": 1}


def row_schema_version(kind: str) -> int:
    """The schema version stamped on (and expected of) rows of ``kind``."""
    return SCHEMA_VERSION + KIND_REVISIONS.get(kind, 0)


#: ``kind`` tag of detection-report rows (the PR-1 payloads).
KIND_FINDER_REPORT = "finder_report"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint   TEXT PRIMARY KEY,
    payload       TEXT NOT NULL,
    created_at    REAL NOT NULL,
    last_used_at  REAL NOT NULL,
    use_count     INTEGER NOT NULL DEFAULT 0,
    num_gtls      INTEGER NOT NULL,
    runtime_seconds REAL NOT NULL,
    kind          TEXT NOT NULL DEFAULT 'finder_report',
    schema_version INTEGER NOT NULL DEFAULT 0
)
"""


@dataclass
class CacheStats:
    """Live counters of one store instance (not persisted)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the store (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.hits} hit(s) / {self.misses} miss(es) "
            f"({self.hit_rate:.0%} hit rate), {self.puts} put(s)"
        )


@dataclass
class MergeStats:
    """Outcome of one :meth:`ResultStore.merge_from` call.

    Attributes:
        copied: source rows new to (or replacing a stale row of) this store.
        merged: rows present in both stores with identical payloads — their
            usage counters were combined.
        conflicts: rows present in both stores with *differing* current
            payloads; the more-used (then newer) row won.
        stale_skipped: source rows under an outdated schema version,
            ignored entirely (they would read as misses anyway).
    """

    copied: int = 0
    merged: int = 0
    conflicts: int = 0
    stale_skipped: int = 0

    @property
    def total(self) -> int:
        """Source rows examined (stale ones included)."""
        return self.copied + self.merged + self.conflicts + self.stale_skipped

    def combined(self, other: "MergeStats") -> "MergeStats":
        """Field-wise sum — fold per-shard merges into one total."""
        return MergeStats(
            copied=self.copied + other.copied,
            merged=self.merged + other.merged,
            conflicts=self.conflicts + other.conflicts,
            stale_skipped=self.stale_skipped + other.stale_skipped,
        )

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.copied} copied, {self.merged} merged, "
            f"{self.conflicts} conflict(s), {self.stale_skipped} stale skipped"
        )


class ResultStore:
    """Persistent fingerprint -> JSON-payload store.

    >>> store = ResultStore(cache_dir)          # doctest: +SKIP
    >>> store.put("abc...", report)             # doctest: +SKIP
    >>> store.get("abc...") == report           # doctest: +SKIP
    True

    Usable as a context manager; :meth:`close` is idempotent.
    """

    DB_NAME = "results.sqlite"

    #: How long a writer waits on another connection's lock before failing.
    #: Shared by the SQLite driver timeout and ``PRAGMA busy_timeout``.
    BUSY_TIMEOUT_S = 5.0

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)
        self._db_path = os.path.join(cache_dir, self.DB_NAME)
        # One store instance may be shared across daemon threads (connection
        # threads answer warm lookups while the scheduler thread inserts);
        # SQLite connections are not thread-safe objects, so every operation
        # holds this lock.  Cross-*process* sharing (daemon + concurrent CLI
        # runs on one cache dir) is what WAL mode and the busy timeout are
        # for: readers never block the writer and a second writer waits
        # instead of failing with "database is locked".
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(
                self._db_path,
                timeout=self.BUSY_TIMEOUT_S,
                check_same_thread=False,
            )
            self._configure_connection()
            self._conn.execute(_SCHEMA)
            self._migrate()
            self._conn.commit()
        except sqlite3.Error as error:
            raise ServiceError(
                f"cannot open result store at {self._db_path}: {error}"
            ) from error
        self.stats = CacheStats()

    def _configure_connection(self) -> None:
        """Switch the database to WAL journaling with a busy timeout.

        WAL is persistent (stamped into the database file), but the pragma
        is re-issued on every open so stores created by older releases
        upgrade in place.  Filesystems that cannot support WAL (some network
        mounts) keep the default rollback journal — the store still works,
        only multi-writer concurrency degrades.
        """
        self._conn.execute(
            "PRAGMA busy_timeout = %d" % int(self.BUSY_TIMEOUT_S * 1000)
        )
        try:
            row = self._conn.execute("PRAGMA journal_mode = WAL").fetchone()
            self.journal_mode = row[0] if row else "unknown"
        except sqlite3.Error as error:  # pragma: no cover - exotic filesystems
            self.journal_mode = "unknown"
            logger.warning("could not enable WAL on %s: %s", self._db_path, error)
        if self.journal_mode.lower() != "wal":  # pragma: no cover - exotic fs
            logger.warning(
                "result store %s running without WAL (journal_mode=%s); "
                "concurrent writers may contend",
                self._db_path,
                self.journal_mode,
            )

    def _migrate(self) -> None:
        """Bring a database created by an older release up to this schema.

        Added columns default ``schema_version`` to 0, so pre-existing rows
        are recognized as stale on lookup and rewritten.
        """
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(results)")
        }
        if "kind" not in columns:
            self._conn.execute(
                "ALTER TABLE results ADD COLUMN kind TEXT NOT NULL "
                f"DEFAULT '{KIND_FINDER_REPORT}'"
            )
        if "schema_version" not in columns:
            self._conn.execute(
                "ALTER TABLE results ADD COLUMN schema_version INTEGER "
                "NOT NULL DEFAULT 0"
            )

    # ------------------------------------------------------------------
    def get_payload(
        self, fingerprint: str, kind: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """Stored payload dict for ``fingerprint``, or ``None`` (a miss).

        A row whose ``schema_version`` differs from its kind's current
        :func:`row_schema_version`, whose ``kind`` does not match ``kind``
        (when given), or whose payload is not valid JSON is evicted and
        reported as a miss so the caller recomputes and rewrites it.
        """
        self._require_open()
        began = trace.clock() if trace.enabled() else None
        with self._lock, self._wrap_db("cache lookup"):
            row = self._conn.execute(
                "SELECT payload, kind, schema_version FROM results "
                "WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        if row is None:
            self.stats.misses += 1
            self._observe_get(began, hit=False)
            return None
        payload_text, row_kind, row_version = row
        data: Optional[Dict[str, Any]] = None
        if row_version == row_schema_version(row_kind) and (
            kind is None or row_kind == kind
        ):
            try:
                data = json.loads(payload_text)
            except json.JSONDecodeError:
                data = None
        if not isinstance(data, dict):
            # Version skew, kind collision or corruption: drop the row and
            # treat the lookup as a miss so the entry is recomputed.
            self.evict(fingerprint)
            self.stats.misses += 1
            self._observe_get(began, hit=False)
            return None
        self.stats.hits += 1
        try:
            with self._lock:
                self._conn.execute(
                    "UPDATE results SET last_used_at = ?, use_count = use_count + 1 "
                    "WHERE fingerprint = ?",
                    (time.time(), fingerprint),
                )
                self._conn.commit()
        except sqlite3.Error as error:
            # The payload was already read; LRU bookkeeping must not turn a
            # hit into a failure (e.g. read-only cache dir, lock contention).
            logger.warning("cache hit bookkeeping failed on %s: %s", self._db_path, error)
        self._observe_get(began, hit=True)
        return data

    def _observe_get(self, began: Optional[float], hit: bool) -> None:
        """Mirror one lookup into the obs layer when tracing is enabled
        (``began`` is ``None`` otherwise).  :attr:`stats` stays the source
        of truth for the CLI's cache line; these counters feed RunReport."""
        if began is None:
            return
        trace.counter("store.hits" if hit else "store.misses").add(1)
        trace.histogram("store.get_s").observe(trace.clock() - began)

    def put_payload(
        self,
        fingerprint: str,
        payload: Dict[str, Any],
        kind: str,
        num_items: int = 0,
        runtime_seconds: float = 0.0,
    ) -> None:
        """Insert or replace the payload stored under ``fingerprint``.

        ``num_items``/``runtime_seconds`` are indexed metadata (listed by
        :meth:`entries`, usable in eviction policies) — the payload itself
        is opaque to the store.
        """
        self._require_open()
        began = trace.clock() if trace.enabled() else None
        text = json.dumps(payload, separators=(",", ":"))
        now = time.time()
        with self._lock, self._wrap_db("cache insert"):
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, payload, created_at, last_used_at, use_count, "
                " num_gtls, runtime_seconds, kind, schema_version) "
                "VALUES (?, ?, ?, ?, 0, ?, ?, ?, ?)",
                (
                    fingerprint,
                    text,
                    now,
                    now,
                    num_items,
                    runtime_seconds,
                    kind,
                    row_schema_version(kind),
                ),
            )
            self._conn.commit()
        self.stats.puts += 1
        if began is not None:
            trace.counter("store.puts").add(1)
            trace.histogram("store.put_s").observe(trace.clock() - began)

    def demote_hit(self, fingerprint: str) -> None:
        """Reclassify the latest hit on ``fingerprint`` as a miss and evict.

        Used by callers that decode payloads themselves (the flow layer)
        when a structurally valid JSON payload fails artifact decoding —
        e.g. codec version skew inside the payload.
        """
        self.stats.hits -= 1
        self.stats.misses += 1
        self.evict(fingerprint)

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[FinderReport]:
        """Stored report for ``fingerprint``, or ``None`` (counted as a miss)."""
        data = self.get_payload(fingerprint, kind=KIND_FINDER_REPORT)
        if data is None:
            return None
        try:
            return report_from_dict(data)
        except ReproError:
            # A stale row (codec version skew, a config that no longer
            # validates) must not poison the run: drop it and treat the
            # lookup as a miss so the job is recomputed.
            self.demote_hit(fingerprint)
            return None

    def put(self, fingerprint: str, report: FinderReport) -> None:
        """Insert or replace the report stored under ``fingerprint``."""
        self.put_payload(
            fingerprint,
            report_to_dict(report),
            kind=KIND_FINDER_REPORT,
            num_items=report.num_gtls,
            runtime_seconds=report.runtime_seconds,
        )

    def evict(self, fingerprint: str) -> bool:
        """Remove one entry; returns True when a row was deleted."""
        self._require_open()
        with self._lock, self._wrap_db("cache eviction"):
            cursor = self._conn.execute(
                "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
            )
            self._conn.commit()
        evicted = cursor.rowcount > 0
        if evicted:
            self.stats.evictions += 1
        return evicted

    def evict_lru(self, keep: int) -> int:
        """Keep only the ``keep`` most recently used entries; returns the
        number of evicted rows."""
        self._require_open()
        if keep < 0:
            raise ServiceError("evict_lru keep must be >= 0")
        with self._lock, self._wrap_db("cache eviction"):
            cursor = self._conn.execute(
                "DELETE FROM results WHERE fingerprint NOT IN ("
                "SELECT fingerprint FROM results "
                "ORDER BY last_used_at DESC LIMIT ?)",
                (keep,),
            )
            self._conn.commit()
        self.stats.evictions += cursor.rowcount
        return cursor.rowcount

    def clear(self) -> int:
        """Drop every entry; returns the number of evicted rows."""
        return self.evict_lru(0)

    def entries(self) -> List[Tuple[str, int, float]]:
        """``(fingerprint, num_items, runtime_seconds)`` of every stored
        row, most recently used first."""
        self._require_open()
        with self._lock:
            return list(
                self._conn.execute(
                    "SELECT fingerprint, num_gtls, runtime_seconds FROM results "
                    "ORDER BY last_used_at DESC"
                )
            )

    def kind_counts(self) -> Dict[str, int]:
        """Row count and saved runtime per artifact kind.

        Returns ``{kind: count}``, descending by count — the ``repro cache
        stats`` maintenance view.
        """
        self._require_open()
        with self._lock:
            rows = self._conn.execute(
                "SELECT kind, COUNT(*) FROM results "
                "GROUP BY kind ORDER BY COUNT(*) DESC"
            ).fetchall()
        return {str(kind): int(count) for kind, count in rows}

    def __len__(self) -> int:
        self._require_open()
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]

    def __contains__(self, fingerprint: str) -> bool:
        self._require_open()
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    _ROW_COLUMNS = (
        "fingerprint, payload, created_at, last_used_at, use_count, "
        "num_gtls, runtime_seconds, kind, schema_version"
    )

    def merge_from(self, source: "ResultStore | str") -> MergeStats:
        """Fold every row of ``source`` into this store.

        ``source`` is another :class:`ResultStore` or a cache-directory
        path (e.g. one shard's private store after a sharded sweep).  The
        source is only read, never modified.  Reconciliation is row-by-row
        on the fingerprint primary key:

        * a source row under an **outdated schema version** for its kind is
          skipped — it would read as a miss anywhere;
        * a fingerprint **absent** here (or present only as a stale row) is
          copied verbatim, usage history included;
        * present with an **identical payload**: the rows describe the same
          computation, so usage is combined — ``use_count`` summed,
          ``created_at`` the earlier, ``last_used_at`` the later;
        * present with a **different current payload** (two
          nondeterministic writes under one fingerprint cannot happen — the
          runner never stores them — but clock-skewed kind revisions can):
          the row with the higher ``use_count`` wins, ties to the newer
          ``last_used_at``.  Counted as a conflict either way.
        """
        self._require_open()
        stats = MergeStats()
        owns_source = isinstance(source, str)
        src = ResultStore(source) if owns_source else source
        try:
            src._require_open()
            with src._lock, src._wrap_db("merge read"):
                rows = src._conn.execute(
                    f"SELECT {self._ROW_COLUMNS} FROM results"
                ).fetchall()
            with self._lock, self._wrap_db("merge write"):
                for row in rows:
                    self._merge_row(row, stats)
                self._conn.commit()
        finally:
            if owns_source:
                src.close()
        if trace.enabled():
            trace.counter("store.merge.copied").add(stats.copied)
            trace.counter("store.merge.merged").add(stats.merged)
            trace.counter("store.merge.conflicts").add(stats.conflicts)
            trace.counter("store.merge.stale_skipped").add(stats.stale_skipped)
        return stats

    def _merge_row(self, row: Tuple, stats: MergeStats) -> None:
        """Reconcile one source row into this store (caller holds the lock
        and commits)."""
        (fingerprint, payload, created_at, last_used_at, use_count,
         num_gtls, runtime_seconds, kind, schema_version) = row
        if schema_version != row_schema_version(kind):
            stats.stale_skipped += 1
            return
        mine = self._conn.execute(
            "SELECT payload, created_at, last_used_at, use_count, "
            "kind, schema_version FROM results WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if mine is not None and mine[5] == row_schema_version(mine[4]):
            (my_payload, my_created, my_used, my_count, _, _) = mine
            if my_payload == payload:
                self._conn.execute(
                    "UPDATE results SET use_count = ?, created_at = ?, "
                    "last_used_at = ? WHERE fingerprint = ?",
                    (
                        my_count + use_count,
                        min(my_created, created_at),
                        max(my_used, last_used_at),
                        fingerprint,
                    ),
                )
                stats.merged += 1
                return
            stats.conflicts += 1
            if (my_count, my_used) >= (use_count, last_used_at):
                return  # my row wins; the source row is dropped
            # fall through: the source row replaces mine
        elif mine is None:
            stats.copied += 1
        else:
            stats.copied += 1  # replacing my stale row is a copy
        self._conn.execute(
            "INSERT OR REPLACE INTO results "
            f"({self._ROW_COLUMNS}) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (fingerprint, payload, created_at, last_used_at, use_count,
             num_gtls, runtime_seconds, kind, schema_version),
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying database (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _require_open(self) -> None:
        if self._conn is None:
            raise ServiceError("result store is closed")

    @contextlib.contextmanager
    def _wrap_db(self, operation: str):
        """Translate raw SQLite failures (locked db, full disk, corruption)
        into the store's :class:`ServiceError` contract."""
        try:
            yield
        except sqlite3.Error as error:
            raise ServiceError(
                f"{operation} failed on {self._db_path}: {error}"
            ) from error

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
