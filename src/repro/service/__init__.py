"""Batched, cache-aware detection service layer.

Turns the one-shot in-process finder into a batch service:

* :mod:`repro.service.fingerprint` — stable content hashes of
  ``(Netlist, FinderConfig)`` pairs, the cache key of everything below.
* :mod:`repro.service.codec` — lossless JSON codecs for finder reports.
* :mod:`repro.service.store` — persistent SQLite result store with
  hit/miss accounting.
* :mod:`repro.service.pool` — a reusable worker pool that ships each
  netlist to the workers once and then streams bare seed batches.
* :mod:`repro.service.jobs` — ``DetectionJob``/``JobResult`` records and
  the retrying, cache-consulting ``BatchRunner``.
* :mod:`repro.service.sweep` — parameter-grid expansion with
  fingerprint-level job deduplication.
* :mod:`repro.service.shard` — stable fingerprint-keyed partitioning of a
  sweep plan into balanced shards.
* :mod:`repro.service.coordinator` — sharded sweep dispatch: per-shard
  worker processes over per-shard stores (or priority-class-``sweep``
  daemon submits), retry/failure accounting, store merge-back.
* :mod:`repro.service.aggregate` — sweep aggregation/publishing: canonical
  per-point rows, per-axis summaries, per-shard wall-clock stats.

The CLI's ``batch`` and ``sweep`` subcommands are thin wrappers over this
package, and :meth:`repro.finder.TangledLogicFinder.run` delegates its
parallel path to the same :class:`WorkerPool`, so single runs and batch
runs share one execution engine.
"""

from repro.service.fingerprint import (
    fingerprint_config,
    fingerprint_netlist,
    job_fingerprint,
)
from repro.service.codec import (
    config_from_dict,
    config_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.service.store import CacheStats, MergeStats, ResultStore
from repro.service.pool import PoolStats, WorkerPool
from repro.service.jobs import (
    BatchProgress,
    BatchRunner,
    DetectionJob,
    JobResult,
    summarize_results,
)
from repro.service.sweep import (
    SweepOutcome,
    SweepPlan,
    SweepPoint,
    expand_grid,
    plan_sweep,
    run_sweep,
)
from repro.service.shard import SweepShard, partition_plan, shard_sort_key
from repro.service.coordinator import (
    ShardStats,
    ShardedSweepOutcome,
    SweepCoordinator,
    run_sharded_sweep,
)
from repro.service.aggregate import (
    SweepAggregate,
    aggregate_sweep,
    point_rows,
    write_aggregate,
)

__all__ = [
    "fingerprint_netlist",
    "fingerprint_config",
    "job_fingerprint",
    "config_to_dict",
    "config_from_dict",
    "report_to_dict",
    "report_from_dict",
    "ResultStore",
    "CacheStats",
    "MergeStats",
    "WorkerPool",
    "PoolStats",
    "DetectionJob",
    "JobResult",
    "BatchRunner",
    "BatchProgress",
    "summarize_results",
    "SweepPlan",
    "SweepPoint",
    "SweepOutcome",
    "expand_grid",
    "plan_sweep",
    "run_sweep",
    "SweepShard",
    "partition_plan",
    "shard_sort_key",
    "SweepCoordinator",
    "ShardStats",
    "ShardedSweepOutcome",
    "run_sharded_sweep",
    "SweepAggregate",
    "aggregate_sweep",
    "point_rows",
    "write_aggregate",
]
