"""Batched, cache-aware detection service layer.

Turns the one-shot in-process finder into a batch service:

* :mod:`repro.service.fingerprint` — stable content hashes of
  ``(Netlist, FinderConfig)`` pairs, the cache key of everything below.
* :mod:`repro.service.codec` — lossless JSON codecs for finder reports.
* :mod:`repro.service.store` — persistent SQLite result store with
  hit/miss accounting.
* :mod:`repro.service.pool` — a reusable worker pool that ships each
  netlist to the workers once and then streams bare seed batches.
* :mod:`repro.service.jobs` — ``DetectionJob``/``JobResult`` records and
  the retrying, cache-consulting ``BatchRunner``.
* :mod:`repro.service.sweep` — parameter-grid expansion with
  fingerprint-level job deduplication.

The CLI's ``batch`` and ``sweep`` subcommands are thin wrappers over this
package, and :meth:`repro.finder.TangledLogicFinder.run` delegates its
parallel path to the same :class:`WorkerPool`, so single runs and batch
runs share one execution engine.
"""

from repro.service.fingerprint import (
    fingerprint_config,
    fingerprint_netlist,
    job_fingerprint,
)
from repro.service.codec import (
    config_from_dict,
    config_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.service.store import CacheStats, ResultStore
from repro.service.pool import PoolStats, WorkerPool
from repro.service.jobs import (
    BatchProgress,
    BatchRunner,
    DetectionJob,
    JobResult,
    summarize_results,
)
from repro.service.sweep import (
    SweepOutcome,
    SweepPlan,
    SweepPoint,
    expand_grid,
    plan_sweep,
    run_sweep,
)

__all__ = [
    "fingerprint_netlist",
    "fingerprint_config",
    "job_fingerprint",
    "config_to_dict",
    "config_from_dict",
    "report_to_dict",
    "report_from_dict",
    "ResultStore",
    "CacheStats",
    "WorkerPool",
    "PoolStats",
    "DetectionJob",
    "JobResult",
    "BatchRunner",
    "BatchProgress",
    "summarize_results",
    "SweepPlan",
    "SweepPoint",
    "SweepOutcome",
    "expand_grid",
    "plan_sweep",
    "run_sweep",
]
