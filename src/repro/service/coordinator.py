"""Sharded sweep execution: dispatch, retry accounting, result splicing.

The :class:`SweepCoordinator` is the layer between the planner and the
stores (modelled on opensearch-benchmark's ``worker_coordinator``): it
partitions a deduplicated :class:`~repro.service.sweep.SweepPlan` into
:class:`~repro.service.shard.SweepShard`\\ s and dispatches them either

* **locally** — one worker process per shard (waves of a
  ``ProcessPoolExecutor``), each running its jobs through its own
  :class:`~repro.service.jobs.BatchRunner` against a **per-shard**
  :class:`~repro.service.store.ResultStore` (``<cache>/shards/shard-NN``),
  so N shards never contend on one SQLite file; or
* **via a daemon** — every job of every shard submitted to a running
  :class:`~repro.server.daemon.ServerDaemon` as a priority-class-``sweep``
  job (one submitting thread per shard, lifecycle events streamed back as
  per-shard progress), grouped so ``repro status`` can show the sweep's
  shards while they queue.

Failure model: a shard that dies (worker crash, broken pool) is retried
whole — its per-shard store makes the retry cheap, every job that already
finished replays as a cache hit.  A shard that exhausts its attempts fails
*loudly but locally*: its points report the shard error while every other
shard's results stand, and the outcome records the failure for the
aggregator.

After local execution the coordinator merges every shard store back into
the main store (:meth:`~repro.service.store.ResultStore.merge_from`), so a
following unsharded ``repro sweep`` — or a daemon on the same cache dir —
starts warm.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.finder.config import FinderConfig
from repro.finder.result import FinderReport
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.service.jobs import BatchRunner, JobResult
from repro.service.shard import SweepShard, partition_plan
from repro.service.store import MergeStats, ResultStore
from repro.service.sweep import SweepOutcome, plan_sweep
from repro.utils.timer import Timer

#: Subdirectory of the cache dir holding the per-shard stores.
SHARD_STORE_DIR = "shards"


def shard_store_path(cache_dir: str, shard_id: int) -> str:
    """Cache directory of one shard's private result store."""
    return os.path.join(cache_dir, SHARD_STORE_DIR, f"shard-{shard_id:02d}")


@dataclass
class ShardStats:
    """Execution accounting of one shard (one row of the aggregate).

    Attributes:
        shard_id: which shard.
        num_jobs: jobs the shard owned.
        attempts: dispatch attempts (1 = clean first run).
        ok: True when the shard returned results.
        error: terminal dispatch error when ``ok`` is False.
        wall_seconds: wall-clock of the successful attempt (0.0 if none).
        cache_hits / cache_misses / cache_puts: the shard store's counters.
    """

    shard_id: int
    num_jobs: int
    attempts: int = 0
    ok: bool = False
    error: Optional[str] = None
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_puts: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "num_jobs": self.num_jobs,
            "attempts": self.attempts,
            "ok": self.ok,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_puts": self.cache_puts,
        }


@dataclass(frozen=True)
class ShardProgress:
    """One coordinator progress event.

    ``kind`` is ``"shard-start"``, ``"job"`` (daemon dispatch only — local
    shards are opaque subprocesses) or ``"shard-done"``.
    """

    kind: str
    shard_id: int
    num_jobs: int
    done_shards: int
    total_shards: int
    label: str = ""
    error: Optional[str] = None


ShardProgressCallback = Callable[[ShardProgress], None]


@dataclass
class ShardedSweepOutcome(SweepOutcome):
    """A :class:`SweepOutcome` plus per-shard accounting.

    ``job_results`` is in plan order — point results are spliced back to
    exactly the order an unsharded :func:`~repro.service.sweep.run_sweep`
    would produce.
    """

    shard_stats: List[ShardStats] = field(default_factory=list)
    wall_seconds: float = 0.0
    mode: str = "local"
    merge_stats: Optional[MergeStats] = None

    @property
    def failed_shards(self) -> List[ShardStats]:
        return [stats for stats in self.shard_stats if not stats.ok]

    @property
    def cache_hits(self) -> int:
        return sum(stats.cache_hits for stats in self.shard_stats)

    @property
    def cache_misses(self) -> int:
        return sum(stats.cache_misses for stats in self.shard_stats)


@dataclass
class _ShardJobOutcome:
    """Slim, netlist-free job result shipped back from a shard process."""

    job_index: int
    report: Optional[FinderReport]
    cached: bool
    runtime_seconds: float
    attempts: int
    error: Optional[str]


def _execute_shard(
    shard: SweepShard,
    cache_dir: Optional[str],
    use_cache: bool,
    workers: int,
    max_attempts: int,
) -> Dict[str, object]:
    """Run one shard's jobs in this process (the shard-worker entry point).

    Opens the shard's private store, runs the jobs through a
    :class:`BatchRunner`, and returns a picklable payload: slim outcomes
    (the heavyweight job netlists stay behind) plus store counters.
    """
    store: Optional[ResultStore] = None
    if use_cache and cache_dir:
        store = ResultStore(shard_store_path(cache_dir, shard.shard_id))
    try:
        with Timer() as timer, BatchRunner(
            workers=workers,
            store=store,
            use_cache=use_cache,
            max_attempts=max_attempts,
        ) as runner:
            results = runner.run(shard.jobs)
        outcomes = [
            _ShardJobOutcome(
                job_index=shard.job_indices[local],
                report=result.report,
                cached=result.cached,
                runtime_seconds=result.runtime_seconds,
                attempts=result.attempts,
                error=result.error,
            )
            for local, result in enumerate(results)
        ]
        stats = store.stats if store is not None else None
        return {
            "shard_id": shard.shard_id,
            "outcomes": outcomes,
            "wall_seconds": timer.elapsed,
            "cache_hits": stats.hits if stats else 0,
            "cache_misses": stats.misses if stats else 0,
            "cache_puts": stats.puts if stats else 0,
        }
    finally:
        if store is not None:
            store.close()


class SweepCoordinator:
    """Plan, shard, dispatch and reassemble one sweep.

    Args:
        num_shards: shards to split the plan into (>= 1).
        cache_dir: sweep cache directory; each shard gets a private store
            under ``<cache_dir>/shards/`` which is merged back into the
            main store afterwards.  ``None`` disables persistence.
        use_cache: master cache switch (the ``--no-cache`` path).
        workers: parallel seed trials *inside* each shard (usually 1 —
            sharding is the parallelism axis).
        parallel: concurrent shard processes (default: ``num_shards``).
        max_shard_attempts: dispatch attempts per shard before its jobs
            are reported failed.
        job_max_attempts: per-job retry budget inside a shard's runner.
        progress: optional :class:`ShardProgress` callback.
        daemon_socket: when set, dispatch through a running daemon at this
            socket instead of local processes (priority class ``sweep``).
        group: job-group label for daemon dispatch (visible in
            ``repro status``); defaults to ``sweep-<plan-prefix>``.
    """

    def __init__(
        self,
        num_shards: int,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        workers: int = 1,
        parallel: Optional[int] = None,
        max_shard_attempts: int = 2,
        job_max_attempts: int = 2,
        progress: Optional[ShardProgressCallback] = None,
        daemon_socket: Optional[str] = None,
        group: str = "",
    ) -> None:
        if num_shards < 1:
            raise ServiceError("SweepCoordinator num_shards must be >= 1")
        if max_shard_attempts < 1:
            raise ServiceError("SweepCoordinator max_shard_attempts must be >= 1")
        self.num_shards = num_shards
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.workers = workers
        self.parallel = parallel or num_shards
        self.max_shard_attempts = max_shard_attempts
        self.job_max_attempts = job_max_attempts
        self.progress = progress
        self.daemon_socket = daemon_socket
        self.group = group
        # Test seam: the picklable callable local dispatch sends to worker
        # processes.  Must stay a module-level function (pickled by name).
        self._shard_runner = _execute_shard

    # ------------------------------------------------------------------
    def run(
        self,
        designs: Sequence[Tuple[str, Netlist]],
        base: FinderConfig,
        grid: Mapping[str, Sequence[object]],
        design_paths: Optional[Mapping[str, str]] = None,
    ) -> ShardedSweepOutcome:
        """Execute ``designs x grid`` sharded; results in plan point order.

        ``design_paths`` (label -> loadable path) is required for daemon
        dispatch — the daemon loads designs itself, the netlists never
        cross the socket.
        """
        with Timer() as total:
            with trace.span("sweep.plan", shards=self.num_shards):
                plan = plan_sweep(designs, base, grid)
                shards = partition_plan(plan, self.num_shards)
            if self.daemon_socket:
                payloads, stats = self._dispatch_daemon(shards, design_paths)
                mode = "daemon"
            else:
                payloads, stats = self._dispatch_local(shards)
                mode = "local"
            job_results = self._assemble(plan, shards, payloads, stats)
            merge_stats = None
            if mode == "local" and self.use_cache and self.cache_dir:
                merge_stats = self._merge_shard_stores(stats)
        return ShardedSweepOutcome(
            plan=plan,
            job_results=job_results,
            shard_stats=[stats[shard.shard_id] for shard in shards],
            wall_seconds=total.elapsed,
            mode=mode,
            merge_stats=merge_stats,
        )

    # -- local dispatch -------------------------------------------------
    def _dispatch_local(
        self, shards: Sequence[SweepShard]
    ) -> Tuple[Dict[int, Dict[str, object]], Dict[int, ShardStats]]:
        """Run shards in waves of worker processes, retrying dead shards.

        Each wave gets a fresh executor: a worker crash poisons a
        ``ProcessPoolExecutor`` (every pending future raises
        ``BrokenProcessPool``), so surviving-but-unfinished shards are
        simply retried in the next wave — their per-shard stores replay
        finished jobs as hits.
        """
        stats = {
            # An empty shard (more shards than jobs) never runs; it is
            # vacuously ok, not a failure.
            shard.shard_id: ShardStats(
                shard.shard_id, shard.num_jobs, ok=shard.num_jobs == 0
            )
            for shard in shards
        }
        payloads: Dict[int, Dict[str, object]] = {}
        pending = [shard for shard in shards if shard.jobs]
        done_count = 0
        total_active = len(pending)
        while pending:
            wave, pending = pending, []
            for shard in wave:
                stats[shard.shard_id].attempts += 1
                self._emit("shard-start", shard, done_count, total_active)
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.parallel, len(wave))
            ) as executor:
                futures = {
                    executor.submit(
                        self._shard_runner,
                        shard,
                        self.cache_dir,
                        self.use_cache,
                        self.workers,
                        self.job_max_attempts,
                    ): shard
                    for shard in wave
                }
                failures: List[Tuple[SweepShard, str]] = []
                for future, shard in futures.items():
                    shard_stats = stats[shard.shard_id]
                    try:
                        payload = future.result()
                    except Exception as error:  # crash, pickling, broken pool
                        failures.append(
                            (shard, f"{type(error).__name__}: {error}")
                        )
                        continue
                    payloads[shard.shard_id] = payload
                    shard_stats.ok = True
                    shard_stats.wall_seconds = payload["wall_seconds"]
                    shard_stats.cache_hits = payload["cache_hits"]
                    shard_stats.cache_misses = payload["cache_misses"]
                    shard_stats.cache_puts = payload["cache_puts"]
                    done_count += 1
                    self._observe_shard(shard_stats)
                    self._emit("shard-done", shard, done_count, total_active)
            for shard, error in failures:
                shard_stats = stats[shard.shard_id]
                shard_stats.error = error
                if shard_stats.attempts < self.max_shard_attempts:
                    if trace.enabled():
                        trace.counter("sweep.shard_retries").add(1)
                    pending.append(shard)
                else:
                    done_count += 1
                    self._observe_shard(shard_stats)
                    self._emit(
                        "shard-done", shard, done_count, total_active, error=error
                    )
        return payloads, stats

    # -- daemon dispatch ------------------------------------------------
    def _dispatch_daemon(
        self,
        shards: Sequence[SweepShard],
        design_paths: Optional[Mapping[str, str]],
    ) -> Tuple[Dict[int, Dict[str, object]], Dict[int, ShardStats]]:
        """Submit every shard's jobs to a daemon as priority-``sweep`` work.

        One submitting thread per shard streams its jobs' lifecycles; the
        daemon's queue interleaves shards (FIFO within the ``sweep``
        class) and its store does the caching, so per-shard stores and the
        merge step do not apply in this mode.
        """
        if design_paths is None:
            raise ServiceError(
                "daemon dispatch needs design_paths (label -> design file)"
            )
        missing = sorted(
            {
                job.label
                for shard in shards
                for job in shard.jobs
                if job.label not in design_paths
            }
        )
        if missing:
            raise ServiceError(
                f"daemon dispatch has no design path for label(s): "
                f"{', '.join(missing)}"
            )
        stats = {
            # An empty shard (more shards than jobs) never runs; it is
            # vacuously ok, not a failure.
            shard.shard_id: ShardStats(
                shard.shard_id, shard.num_jobs, ok=shard.num_jobs == 0
            )
            for shard in shards
        }
        payloads: Dict[int, Dict[str, object]] = {}
        active = [shard for shard in shards if shard.jobs]
        done = {"count": 0}
        lock = threading.Lock()

        def submit_shard(shard: SweepShard) -> Dict[str, object]:
            from repro.server.client import Client
            from repro.service.codec import config_to_dict, report_from_dict

            client = Client(self.daemon_socket, busy_retries=8)
            group = f"{self.group or 'sweep'}/shard-{shard.shard_id}"
            outcomes: List[_ShardJobOutcome] = []
            hits = 0
            with Timer() as timer:
                for local, job in enumerate(shard.jobs):
                    self._emit(
                        "job", shard, done["count"], len(active), label=job.label
                    )
                    try:
                        result = client.submit(
                            design_paths[job.label],
                            config=config_to_dict(job.config),
                            priority="sweep",
                            label=job.label,
                            group=group,
                        )
                        report = report_from_dict(result["report"])
                        cached = bool(result.get("cached"))
                        hits += 1 if cached else 0
                        outcomes.append(
                            _ShardJobOutcome(
                                job_index=shard.job_indices[local],
                                report=report,
                                cached=cached,
                                runtime_seconds=float(
                                    result.get("runtime_seconds", 0.0)
                                ),
                                attempts=int(result.get("attempts", 1)),
                                error=None,
                            )
                        )
                    except Exception as error:
                        outcomes.append(
                            _ShardJobOutcome(
                                job_index=shard.job_indices[local],
                                report=None,
                                cached=False,
                                runtime_seconds=0.0,
                                attempts=1,
                                error=f"{type(error).__name__}: {error}",
                            )
                        )
            return {
                "shard_id": shard.shard_id,
                "outcomes": outcomes,
                "wall_seconds": timer.elapsed,
                "cache_hits": hits,
                "cache_misses": len(shard.jobs) - hits,
                "cache_puts": 0,
            }

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.parallel, max(1, len(active)))
        ) as executor:
            futures = {
                executor.submit(submit_shard, shard): shard for shard in active
            }
            for future, shard in futures.items():
                shard_stats = stats[shard.shard_id]
                shard_stats.attempts = 1
                try:
                    payload = future.result()
                except Exception as error:  # daemon unreachable etc.
                    shard_stats.error = f"{type(error).__name__}: {error}"
                else:
                    payloads[shard.shard_id] = payload
                    shard_stats.ok = True
                    shard_stats.wall_seconds = payload["wall_seconds"]
                    shard_stats.cache_hits = payload["cache_hits"]
                    shard_stats.cache_misses = payload["cache_misses"]
                with lock:
                    done["count"] += 1
                    self._observe_shard(shard_stats)
                    self._emit(
                        "shard-done",
                        shard,
                        done["count"],
                        len(active),
                        error=shard_stats.error,
                    )
        return payloads, stats

    # -- reassembly -----------------------------------------------------
    def _assemble(
        self,
        plan,
        shards: Sequence[SweepShard],
        payloads: Mapping[int, Mapping[str, object]],
        stats: Mapping[int, ShardStats],
    ) -> List[JobResult]:
        """Splice shard outcomes back into ``plan.jobs`` order.

        Jobs of a shard that never returned get explicit failed results —
        one dead shard degrades its own points, never the sweep.
        """
        results: List[Optional[JobResult]] = [None] * len(plan.jobs)
        for shard in shards:
            payload = payloads.get(shard.shard_id)
            if payload is None:
                error = stats[shard.shard_id].error or "shard did not run"
                for index in shard.job_indices:
                    results[index] = JobResult(
                        job=plan.jobs[index],
                        report=None,
                        cached=False,
                        runtime_seconds=0.0,
                        attempts=stats[shard.shard_id].attempts,
                        error=f"shard {shard.shard_id} failed: {error}",
                    )
                continue
            for outcome in payload["outcomes"]:
                results[outcome.job_index] = JobResult(
                    job=plan.jobs[outcome.job_index],
                    report=outcome.report,
                    cached=outcome.cached,
                    runtime_seconds=outcome.runtime_seconds,
                    attempts=outcome.attempts,
                    error=outcome.error,
                )
        holes = [i for i, result in enumerate(results) if result is None]
        if holes:  # a shard payload lied about its job indices
            raise ServiceError(
                f"sharded sweep returned no result for job index(es) {holes}"
            )
        return results  # type: ignore[return-value]

    def _merge_shard_stores(
        self, stats: Mapping[int, ShardStats]
    ) -> MergeStats:
        """Fold every shard store back into the main store."""
        totals = MergeStats()
        with trace.span("sweep.merge"), ResultStore(self.cache_dir) as store:
            for shard_id in sorted(stats):
                path = shard_store_path(self.cache_dir, shard_id)
                if not os.path.exists(os.path.join(path, ResultStore.DB_NAME)):
                    continue
                totals = totals.combined(store.merge_from(path))
        return totals

    # -- helpers --------------------------------------------------------
    def _observe_shard(self, stats: ShardStats) -> None:
        if not trace.enabled():
            return
        trace.record(
            "sweep.shard",
            duration=stats.wall_seconds,
            shard=stats.shard_id,
            jobs=stats.num_jobs,
            attempts=stats.attempts,
            outcome="ok" if stats.ok else "failed",
        )
        trace.counter("sweep.shards").add(1)
        if not stats.ok:
            trace.counter("sweep.failed_shards").add(1)

    def _emit(
        self,
        kind: str,
        shard: SweepShard,
        done_shards: int,
        total_shards: int,
        label: str = "",
        error: Optional[str] = None,
    ) -> None:
        if self.progress is None:
            return
        self.progress(
            ShardProgress(
                kind=kind,
                shard_id=shard.shard_id,
                num_jobs=shard.num_jobs,
                done_shards=done_shards,
                total_shards=total_shards,
                label=label,
                error=error,
            )
        )


def run_sharded_sweep(
    designs: Sequence[Tuple[str, Netlist]],
    base: FinderConfig,
    grid: Mapping[str, Sequence[object]],
    num_shards: int,
    **kwargs,
) -> ShardedSweepOutcome:
    """One-call convenience over :class:`SweepCoordinator`."""
    design_paths = kwargs.pop("design_paths", None)
    coordinator = SweepCoordinator(num_shards, **kwargs)
    return coordinator.run(designs, base, grid, design_paths=design_paths)


__all__ = [
    "ShardProgress",
    "ShardStats",
    "ShardedSweepOutcome",
    "SweepCoordinator",
    "run_sharded_sweep",
    "shard_store_path",
]
