"""Parameter-sweep expansion with fingerprint-level deduplication.

A sweep is a cartesian grid of config overrides (e.g. ``lambda_skip x
num_seeds``) applied to a set of designs.  Grids routinely contain redundant
points — a grid value equal to the base config's value, or two axes that
collapse to the same effective config — so the planner deduplicates jobs by
content fingerprint: every distinct ``(netlist, config)`` pair is executed
exactly once and its report is fanned back out to all grid points that
requested it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import FinderError, ServiceError
from repro.finder.config import FinderConfig
from repro.netlist.hypergraph import Netlist
from repro.service.fingerprint import fingerprint_netlist, job_fingerprint
from repro.service.jobs import BatchRunner, DetectionJob, JobResult


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid.

    Attributes:
        design: label of the design this point runs on.
        overrides: the grid axis values applied at this point (axis -> value).
        job_index: index into :attr:`SweepPlan.jobs` of the deduplicated job
            that answers this point.
    """

    design: str
    overrides: Tuple[Tuple[str, object], ...]
    job_index: int

    def overrides_dict(self) -> Dict[str, object]:
        """The overrides as a plain dict."""
        return dict(self.overrides)


@dataclass
class SweepPlan:
    """Deduplicated execution plan of one sweep.

    Attributes:
        jobs: distinct jobs to execute (one per unique fingerprint).
        points: every grid point, referencing its job by index.
    """

    jobs: List[DetectionJob] = field(default_factory=list)
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def num_deduplicated(self) -> int:
        """Grid points answered by a job another point also requested."""
        return len(self.points) - len(self.jobs)


def expand_grid(
    base: FinderConfig, grid: Mapping[str, Sequence[object]]
) -> List[Tuple[Dict[str, object], FinderConfig]]:
    """Cartesian expansion of ``grid`` over ``base``.

    Returns ``(overrides, config)`` pairs in deterministic order (axes
    sorted by name, values in given order).  Raises :class:`ServiceError`
    for unknown config fields or empty axes; invalid field *values* raise
    the finder's own validation error.
    """
    axes = sorted(grid)
    known = set(FinderConfig.__dataclass_fields__)
    for axis in axes:
        if axis not in known:
            # Same shape as replace_checked's unknown-field error: name the
            # class and list what would have been accepted.
            valid = ", ".join(sorted(known))
            raise ServiceError(
                f"unknown sweep axis {axis!r} (not a FinderConfig field); "
                f"valid fields: {valid}"
            )
        if not grid[axis]:
            raise ServiceError(f"sweep axis {axis!r} has no values")
    combos: List[Tuple[Dict[str, object], FinderConfig]] = []
    for values in itertools.product(*(grid[axis] for axis in axes)):
        overrides = dict(zip(axes, values))
        try:
            config = base.with_overrides(**overrides)
        except FinderError as error:
            raise ServiceError(f"invalid sweep point {overrides}: {error}") from error
        combos.append((overrides, config))
    return combos


def plan_sweep(
    designs: Sequence[Tuple[str, Netlist]],
    base: FinderConfig,
    grid: Mapping[str, Sequence[object]],
) -> SweepPlan:
    """Build the deduplicated job list for ``designs x grid``.

    The netlist of each design is fingerprinted once and shared across all
    its grid points, so planning cost is ``O(designs + points)`` hashes of
    config-sized data rather than ``points`` netlist hashes.

    Nondeterministic points (``seed=None``) are never deduplicated: two grid
    points that collapse to the same config still describe two *independent*
    random samples, so sharing one run's report would silently halve the
    sweep's sample count.
    """
    if not designs:
        raise ServiceError("sweep needs at least one design")
    combos = expand_grid(base, grid)
    plan = SweepPlan()
    job_index_by_fingerprint: Dict[str, int] = {}
    for design_label, netlist in designs:
        netlist_fp = fingerprint_netlist(netlist)
        for overrides, config in combos:
            fingerprint = job_fingerprint(netlist, config, netlist_fingerprint=netlist_fp)
            deterministic = config.seed is not None
            index = job_index_by_fingerprint.get(fingerprint) if deterministic else None
            if index is None:
                job = DetectionJob.with_netlist_fingerprint(
                    netlist, config, design_label, netlist_fp
                )
                index = len(plan.jobs)
                plan.jobs.append(job)
                if deterministic:
                    job_index_by_fingerprint[fingerprint] = index
            plan.points.append(
                SweepPoint(
                    design=design_label,
                    overrides=tuple(sorted(overrides.items())),
                    job_index=index,
                )
            )
    return plan


@dataclass
class SweepOutcome:
    """Results of one executed sweep.

    Attributes:
        plan: the executed plan.
        job_results: one result per deduplicated job (plan order).
    """

    plan: SweepPlan
    job_results: List[JobResult]

    def point_results(self) -> List[Tuple[SweepPoint, JobResult]]:
        """Every grid point paired with the result that answers it."""
        return [(point, self.job_results[point.job_index]) for point in self.plan.points]


def run_sweep(
    designs: Sequence[Tuple[str, Netlist]],
    base: FinderConfig,
    grid: Mapping[str, Sequence[object]],
    runner: BatchRunner,
) -> SweepOutcome:
    """Plan and execute a sweep through ``runner``."""
    plan = plan_sweep(designs, base, grid)
    results = runner.run(plan.jobs)
    return SweepOutcome(plan=plan, job_results=results)
