"""Lossless JSON codecs for finder results.

The result store persists :class:`~repro.finder.result.FinderReport` objects
as JSON.  Python's ``json`` round-trips floats exactly (shortest-repr), so a
decoded report compares equal to the original — the cache-hit path returns
bit-identical results.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.errors import ServiceError
from repro.finder.config import FinderConfig
from repro.finder.result import GTL, FinderReport

#: Payload schema version, persisted next to every report.
CODEC_VERSION = 1


def config_to_dict(config: FinderConfig) -> Dict[str, Any]:
    """Plain-dict form of a :class:`FinderConfig`."""
    return dataclasses.asdict(config)


def config_from_dict(data: Dict[str, Any]) -> FinderConfig:
    """Rebuild a :class:`FinderConfig`; rejects unknown fields."""
    known = {field.name for field in dataclasses.fields(FinderConfig)}
    unknown = set(data) - known
    if unknown:
        raise ServiceError(f"unknown FinderConfig fields in payload: {sorted(unknown)}")
    return FinderConfig(**data)


def gtl_to_dict(gtl: GTL) -> Dict[str, Any]:
    """Plain-dict form of one GTL (cells as a sorted list)."""
    return {
        "cells": sorted(gtl.cells),
        "size": gtl.size,
        "cut": gtl.cut,
        "ngtl_score": gtl.ngtl_score,
        "gtl_sd_score": gtl.gtl_sd_score,
        "score": gtl.score,
        "seed": gtl.seed,
        "rent_exponent": gtl.rent_exponent,
    }


def gtl_from_dict(data: Dict[str, Any]) -> GTL:
    """Rebuild one GTL from its plain-dict form."""
    return GTL(
        cells=frozenset(data["cells"]),
        size=data["size"],
        cut=data["cut"],
        ngtl_score=data["ngtl_score"],
        gtl_sd_score=data["gtl_sd_score"],
        score=data["score"],
        seed=data["seed"],
        rent_exponent=data["rent_exponent"],
    )


def report_to_dict(report: FinderReport) -> Dict[str, Any]:
    """Plain-dict form of a full :class:`FinderReport`."""
    return {
        "version": CODEC_VERSION,
        "gtls": [gtl_to_dict(g) for g in report.gtls],
        "config": config_to_dict(report.config),
        "rent_exponent": report.rent_exponent,
        "num_orderings": report.num_orderings,
        "num_candidates": report.num_candidates,
        "runtime_seconds": report.runtime_seconds,
        "rent_fallback": report.rent_fallback,
    }


def report_from_dict(data: Dict[str, Any]) -> FinderReport:
    """Rebuild a :class:`FinderReport`; raises :class:`ServiceError` on a
    version or shape mismatch."""
    try:
        version = data["version"]
        if version != CODEC_VERSION:
            raise ServiceError(
                f"unsupported report payload version {version} "
                f"(expected {CODEC_VERSION})"
            )
        return FinderReport(
            gtls=tuple(gtl_from_dict(g) for g in data["gtls"]),
            config=config_from_dict(data["config"]),
            rent_exponent=data["rent_exponent"],
            num_orderings=data["num_orderings"],
            num_candidates=data["num_candidates"],
            runtime_seconds=data["runtime_seconds"],
            rent_fallback=data.get("rent_fallback", False),
        )
    except (KeyError, TypeError) as error:
        raise ServiceError(f"malformed report payload: {error}") from error
