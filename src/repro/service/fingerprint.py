"""Stable content fingerprints for netlists, configs and flow stages.

The service and flow layers recognize repeated work by hashing *content* —
not object identity — so a design loaded twice (or in two different
processes) maps to the same cache entry.  Hashes are SHA-256 over a
canonical byte stream, which makes them stable across process restarts and
machines (unlike the builtin ``hash``, which Python salts per process for
strings).

Three levels of key:

* :func:`fingerprint_netlist` — the full content of a design;
* :func:`fingerprint_frozen_config` — any frozen config dataclass, with
  execution-only knobs (e.g. ``workers``: they change how fast a stage
  runs, never what it returns) excluded;
* :func:`stage_fingerprint` — one flow stage: its name, its config
  fingerprint and the fingerprints of everything upstream of it (the
  design plus every prior stage), so *any* stage artifact — not just a
  detection report — is content-addressable.

:func:`job_fingerprint` (detection-specific, the PR-1 service key) is kept
and expressed in the same vocabulary.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional, Sequence

from repro.finder.config import FinderConfig
from repro.netlist.hypergraph import Netlist

#: Bump when the canonical serialization (or the meaning of a report) changes
#: so stale persisted caches are never read back under a new scheme.
FINGERPRINT_VERSION = 1

#: Config fields that do not influence detection results.
_EXECUTION_ONLY_FIELDS = frozenset({"workers"})

#: ``Netlist.derived_cache`` key memoizing :func:`fingerprint_netlist`.
#: Netlists are immutable, so the fingerprint is computed at most once per
#: object — and pack-file loads seed it straight from the header, making
#: cache lookups on mmap-loaded designs O(1) instead of O(content).
FINGERPRINT_CACHE_KEY = "netlist-fingerprint-v%d" % FINGERPRINT_VERSION


def _hash_update_str(digest: "hashlib._Hash", text: str) -> None:
    data = text.encode("utf-8")
    digest.update(len(data).to_bytes(8, "little"))
    digest.update(data)


def fingerprint_netlist(netlist: Netlist) -> str:
    """SHA-256 fingerprint of a netlist's full content.

    Covers cell names, areas, pin counts, fixed flags, net names and net
    membership (in index order — netlists are immutable, so index order is
    part of the content).

    Memoized in ``netlist.derived_cache`` (immutability makes that sound);
    pack files store this very fingerprint in their header, so loading one
    pre-seeds the memo and no content walk ever happens.
    """
    cached = netlist.derived_cache.get(FINGERPRINT_CACHE_KEY)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(b"repro-netlist-v%d" % FINGERPRINT_VERSION)
    digest.update(netlist.num_cells.to_bytes(8, "little"))
    digest.update(netlist.num_nets.to_bytes(8, "little"))
    for index in range(netlist.num_cells):
        _hash_update_str(digest, netlist.cell_name(index))
        _hash_update_str(digest, repr(netlist.cell_area(index)))
        digest.update(netlist.cell_pin_count(index).to_bytes(8, "little"))
        digest.update(b"\x01" if netlist.cell_is_fixed(index) else b"\x00")
    for index in range(netlist.num_nets):
        _hash_update_str(digest, netlist.net_name(index))
        cells = netlist.cells_of_net(index)
        digest.update(len(cells).to_bytes(8, "little"))
        for cell in cells:
            digest.update(cell.to_bytes(8, "little"))
    fingerprint = digest.hexdigest()
    netlist.derived_cache[FINGERPRINT_CACHE_KEY] = fingerprint
    return fingerprint


def _normalize_config_value(value, field_type) -> object:
    """Canonical JSON-safe form of one config field value.

    Integers land where floats are expected whenever configs come from JSON
    manifests (``2`` for ``2.0``); equal configs must fingerprint
    identically no matter where they were parsed.  Scalars are normalized
    to their declared field type — recursively through nested dataclasses
    (e.g. a ``Die`` inside a place config) — and declared-int fields are
    left untouched (coercing them through float would alias large seeds).
    Inside containers (grids, groups, pad coordinates) no declared type is
    available, so *every* non-bool int is canonicalized to float; container
    ints are cell indices, tile counts and coordinates, all far below the
    2**53 bound where that would alias distinct values.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _normalize_config_value(
                getattr(value, field.name), field.type
            )
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_normalize_config_value(item, "float") for item in value]
    if isinstance(value, dict):
        return {
            key: _normalize_config_value(item, "float")
            for key, item in value.items()
        }
    type_name = field_type if isinstance(field_type, str) else getattr(
        field_type, "__name__", str(field_type)
    )
    if (
        isinstance(value, int)
        and not isinstance(value, bool)
        and "float" in type_name
    ):
        return float(value)
    return value


def fingerprint_frozen_config(
    config, execution_only: frozenset = frozenset()
) -> str:
    """SHA-256 fingerprint of any frozen config dataclass.

    The canonical form is a sorted compact-JSON dump of the config's
    fields with ``execution_only`` fields dropped, numeric values
    normalized to their declared types (see :func:`_normalize_config_value`)
    and the config's class name mixed in (two stage configs with identical
    fields must not collide).
    """
    fields = {
        field.name: _normalize_config_value(getattr(config, field.name), field.type)
        for field in dataclasses.fields(config)
        if field.name not in execution_only
    }
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"), default=list)
    digest = hashlib.sha256()
    digest.update(b"repro-config-v%d" % FINGERPRINT_VERSION)
    _hash_update_str(digest, type(config).__name__)
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


def fingerprint_config(config: FinderConfig) -> str:
    """SHA-256 fingerprint of the result-relevant fields of a
    :class:`FinderConfig` (``workers`` excluded)."""
    return fingerprint_frozen_config(config, execution_only=_EXECUTION_ONLY_FIELDS)


def stage_fingerprint(
    stage_name: str,
    config_fingerprint: str,
    input_fingerprints: Sequence[str],
) -> str:
    """Fingerprint of one flow stage's output.

    ``input_fingerprints`` carries everything the stage can observe: the
    design fingerprint plus, in order, the fingerprint of every stage that
    ran before it.  Any upstream change therefore re-keys every downstream
    artifact — the conservative (always sound) invalidation rule.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-stage-v%d" % FINGERPRINT_VERSION)
    _hash_update_str(digest, stage_name)
    _hash_update_str(digest, config_fingerprint)
    digest.update(len(input_fingerprints).to_bytes(8, "little"))
    for fingerprint in input_fingerprints:
        _hash_update_str(digest, fingerprint)
    return digest.hexdigest()


def job_fingerprint(
    netlist: Netlist,
    config: FinderConfig,
    netlist_fingerprint: Optional[str] = None,
) -> str:
    """Fingerprint of one detection job (netlist content x config content).

    ``netlist_fingerprint`` may be supplied to amortize the netlist hash when
    many configs run against the same design (the sweep path).
    """
    netlist_part = netlist_fingerprint or fingerprint_netlist(netlist)
    digest = hashlib.sha256()
    digest.update(b"repro-job-v%d" % FINGERPRINT_VERSION)
    _hash_update_str(digest, netlist_part)
    _hash_update_str(digest, fingerprint_config(config))
    return digest.hexdigest()
