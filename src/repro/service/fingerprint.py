"""Stable content fingerprints for netlists and finder configurations.

The detection service recognizes repeated work by hashing the *content* of a
``(Netlist, FinderConfig)`` pair — not object identity — so a design loaded
twice (or in two different processes) maps to the same cache entry.  Hashes
are SHA-256 over a canonical byte stream, which makes them stable across
process restarts and machines (unlike the builtin ``hash``, which Python
salts per process for strings).

Execution-only knobs (currently ``workers``) are excluded from the config
fingerprint: they change how fast a detection runs, never what it returns.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional

from repro.finder.config import FinderConfig
from repro.netlist.hypergraph import Netlist

#: Bump when the canonical serialization (or the meaning of a report) changes
#: so stale persisted caches are never read back under a new scheme.
FINGERPRINT_VERSION = 1

#: Config fields that do not influence detection results.
_EXECUTION_ONLY_FIELDS = frozenset({"workers"})


def _hash_update_str(digest: "hashlib._Hash", text: str) -> None:
    data = text.encode("utf-8")
    digest.update(len(data).to_bytes(8, "little"))
    digest.update(data)


def fingerprint_netlist(netlist: Netlist) -> str:
    """SHA-256 fingerprint of a netlist's full content.

    Covers cell names, areas, pin counts, fixed flags, net names and net
    membership (in index order — netlists are immutable, so index order is
    part of the content).
    """
    digest = hashlib.sha256()
    digest.update(b"repro-netlist-v%d" % FINGERPRINT_VERSION)
    digest.update(netlist.num_cells.to_bytes(8, "little"))
    digest.update(netlist.num_nets.to_bytes(8, "little"))
    for index in range(netlist.num_cells):
        _hash_update_str(digest, netlist.cell_name(index))
        _hash_update_str(digest, repr(netlist.cell_area(index)))
        digest.update(netlist.cell_pin_count(index).to_bytes(8, "little"))
        digest.update(b"\x01" if netlist.cell_is_fixed(index) else b"\x00")
    for index in range(netlist.num_nets):
        _hash_update_str(digest, netlist.net_name(index))
        cells = netlist.cells_of_net(index)
        digest.update(len(cells).to_bytes(8, "little"))
        for cell in cells:
            digest.update(cell.to_bytes(8, "little"))
    return digest.hexdigest()


def fingerprint_config(config: FinderConfig) -> str:
    """SHA-256 fingerprint of the result-relevant fields of a config.

    Numeric values are normalized to the field's declared type first:
    ``FinderConfig(refine_length_factor=2)`` (e.g. from a JSON manifest)
    compares equal to the default ``2.0`` and must fingerprint identically.
    """
    float_fields = {
        field.name
        for field in dataclasses.fields(FinderConfig)
        if field.type in ("float", float)
    }
    fields = {}
    for name, value in dataclasses.asdict(config).items():
        if name in _EXECUTION_ONLY_FIELDS:
            continue
        if name in float_fields and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        fields[name] = value
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(b"repro-config-v%d" % FINGERPRINT_VERSION)
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


def job_fingerprint(
    netlist: Netlist,
    config: FinderConfig,
    netlist_fingerprint: Optional[str] = None,
) -> str:
    """Fingerprint of one detection job (netlist content x config content).

    ``netlist_fingerprint`` may be supplied to amortize the netlist hash when
    many configs run against the same design (the sweep path).
    """
    netlist_part = netlist_fingerprint or fingerprint_netlist(netlist)
    digest = hashlib.sha256()
    digest.update(b"repro-job-v%d" % FINGERPRINT_VERSION)
    _hash_update_str(digest, netlist_part)
    _hash_update_str(digest, fingerprint_config(config))
    return digest.hexdigest()
