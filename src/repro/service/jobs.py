"""Batch detection jobs: job/result records and the batch runner.

A :class:`DetectionJob` names one ``(netlist, config)`` detection;
:class:`BatchRunner` executes many of them through one shared
:class:`~repro.service.pool.WorkerPool`, consulting a
:class:`~repro.service.store.ResultStore` first so previously computed
(identical-content) jobs are answered from cache, and retrying jobs whose
workers die.

Caching is only sound for deterministic runs: a job whose config has
``seed=None`` is executed unconditionally and never stored.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, List, Optional, Sequence

from repro.errors import ReproError, ServiceError
from repro.finder.config import FinderConfig
from repro.finder.finder import TangledLogicFinder
from repro.finder.result import FinderReport
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.service.fingerprint import job_fingerprint
from repro.service.pool import WorkerPool
from repro.service.store import ResultStore
from repro.utils.timer import Timer

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DetectionJob:
    """One unit of detection work.

    Attributes:
        netlist: the design to scan.
        config: finder configuration (its ``workers`` field is ignored by
            the batch path — the runner's pool decides parallelism).
        label: caller-facing name (e.g. the design file), carried through to
            the result; not part of the fingerprint.
    """

    netlist: Netlist
    config: FinderConfig = field(default_factory=FinderConfig)
    label: str = ""

    @cached_property
    def fingerprint(self) -> str:
        """Content fingerprint of this job (cached after first computation)."""
        return job_fingerprint(self.netlist, self.config)

    @classmethod
    def with_netlist_fingerprint(
        cls,
        netlist: Netlist,
        config: FinderConfig,
        label: str,
        netlist_fingerprint: str,
    ) -> "DetectionJob":
        """Build a job whose fingerprint reuses a precomputed netlist hash.

        Callers creating many jobs over the same design (batch manifests,
        sweep grids) hash the netlist once and prime each job's cached
        fingerprint with it instead of re-hashing per job.
        """
        job = cls(netlist=netlist, config=config, label=label)
        job.__dict__["fingerprint"] = job_fingerprint(
            netlist, config, netlist_fingerprint=netlist_fingerprint
        )
        return job

    @property
    def deterministic(self) -> bool:
        """True when the job's config pins the RNG seed (cacheable)."""
        return self.config.seed is not None


@dataclass
class JobResult:
    """Outcome of one :class:`DetectionJob`.

    Attributes:
        job: the job this result answers.
        report: the finder report, or ``None`` when the job failed.
        cached: True when the report came from the result store.
        runtime_seconds: wall-clock spent answering this job (lookup or run).
        attempts: execution attempts made (0 for a cache hit).
        error: stringified terminal error when ``report`` is ``None``.
    """

    job: DetectionJob
    report: Optional[FinderReport]
    cached: bool
    runtime_seconds: float
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the job produced a report."""
        return self.report is not None


@dataclass(frozen=True)
class BatchProgress:
    """One progress event, handed to the runner's callback.

    Attributes:
        done: jobs finished so far (including this one).
        total: jobs in the batch.
        result: the finished job's result.
    """

    done: int
    total: int
    result: JobResult


ProgressCallback = Callable[[BatchProgress], None]


class BatchRunner:
    """Execute many detection jobs with shared workers and a shared cache.

    Args:
        workers: parallel seed trials per job (one pool shared by all jobs).
        store: result store for cache lookup/insert (``None`` = no caching).
        use_cache: master switch; ``False`` bypasses the store entirely —
            no lookups and no inserts (the ``--no-cache`` path).
        max_attempts: tries per job before recording a failure.
        progress: callback invoked after every finished job.
        pool: inject a pre-built :class:`WorkerPool` (owned by the caller);
            otherwise the runner creates and owns one.
    """

    def __init__(
        self,
        workers: int = 1,
        store: Optional[ResultStore] = None,
        use_cache: bool = True,
        max_attempts: int = 2,
        progress: Optional[ProgressCallback] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        if max_attempts < 1:
            raise ServiceError("BatchRunner max_attempts must be >= 1")
        self.store = store
        self.use_cache = use_cache
        self.max_attempts = max_attempts
        self.progress = progress
        self._pool = pool or WorkerPool(workers)
        self._owns_pool = pool is None

    @property
    def pool(self) -> WorkerPool:
        """The worker pool executing seed trials."""
        return self._pool

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[DetectionJob]) -> List[JobResult]:
        """Execute ``jobs`` in order and return one result per job."""
        results: List[JobResult] = []
        total = len(jobs)
        for job in jobs:
            result = self.run_one(job)
            results.append(result)
            if self.progress is not None:
                self.progress(BatchProgress(done=len(results), total=total, result=result))
        return results

    def run_one(self, job: DetectionJob) -> JobResult:
        """Execute a single job (cache lookup, run, cache insert)."""
        cacheable = self.use_cache and self.store is not None and job.deterministic
        cached_report = None
        job_span = trace.span(
            "service.job", label=job.label or job.fingerprint[:12]
        )
        with job_span, Timer() as timer:
            if cacheable:
                try:
                    cached_report = self.store.get(job.fingerprint)
                except ServiceError as store_error:
                    # A flaky cache (lock contention, bad disk) degrades to
                    # recomputation, never to an aborted batch.
                    logger.warning(
                        "cache lookup for %s failed, recomputing: %s",
                        job.label or job.fingerprint[:12],
                        store_error,
                    )
            if cached_report is None:
                report, attempts, error = self._execute(job)
                if report is not None and cacheable:
                    try:
                        self.store.put(job.fingerprint, report)
                    except ServiceError as store_error:
                        # The expensive work is done; a broken cache (full
                        # disk, lock contention) must not discard it.
                        logger.warning(
                            "result for %s computed but not cached: %s",
                            job.label or job.fingerprint[:12],
                            store_error,
                        )
            job_span.set(cache="hit" if cached_report is not None else "run")
        # Timer.elapsed is only assigned on block exit, so every JobResult is
        # built out here.
        if cached_report is not None:
            # The fingerprint ignores execution-only fields (workers), so a
            # hit may have been computed under a different worker count:
            # report the *requesting* job's config, not the producer's.
            if cached_report.config != job.config:
                cached_report = dataclasses.replace(cached_report, config=job.config)
            return JobResult(
                job=job,
                report=cached_report,
                cached=True,
                runtime_seconds=timer.elapsed,
                attempts=0,
            )
        return JobResult(
            job=job,
            report=report,
            cached=False,
            runtime_seconds=timer.elapsed,
            attempts=attempts,
            error=error,
        )

    def _execute(self, job: DetectionJob):
        """Run a job through the shared pool with retry-on-worker-failure."""
        last_error: Optional[str] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                finder = TangledLogicFinder(job.netlist, job.config)
                report = finder.run(pool=self._pool, pool_key=job.fingerprint)
                return report, attempt, None
            except ReproError as error:
                # Misconfiguration or exhausted pool retries: deterministic,
                # retrying cannot help.
                return None, attempt, str(error)
            except Exception as error:  # worker crash, pickling, OS pressure
                last_error = f"{type(error).__name__}: {error}"
        return None, self.max_attempts, last_error

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the pool if this runner created it."""
        if self._owns_pool:
            self._pool.shutdown()

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def summarize_results(results: Sequence[JobResult]) -> str:
    """One-line batch summary (jobs, hits, failures, total runtime)."""
    hits = sum(1 for r in results if r.cached)
    failed = sum(1 for r in results if not r.ok)
    runtime = sum(r.runtime_seconds for r in results)
    return (
        f"{len(results)} job(s): {hits} cache hit(s), "
        f"{len(results) - hits - failed} computed, {failed} failed, "
        f"{runtime:.2f}s total"
    )
