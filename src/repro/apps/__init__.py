"""Applications of detected GTLs (Chapter I of the paper).

The paper motivates GTL detection with three uses:

* **Routability** — cell inflation inside GTLs
  (:func:`repro.placement.inflate_cells`, exercised by Figure 7);
* **Floorplanning** — treat each GTL as a *soft block* whose members
  attract each other during placement (:mod:`repro.apps.soft_blocks`);
* **Logic re-synthesis** — re-instantiate a GTL with more area but less
  interconnect pressure by decomposing its complex gates
  (:mod:`repro.apps.resynthesis`).
"""

from repro.apps.soft_blocks import soft_block_nets, place_with_soft_blocks
from repro.apps.resynthesis import decompose_complex_gates

__all__ = [
    "soft_block_nets",
    "place_with_soft_blocks",
    "decompose_complex_gates",
]
