"""Logic re-synthesis of GTLs (paper, Chapter I).

"Prior to placement, a GTL could be resynthesized or re-instantiated to
utilize more area, but less interconnect, thereby reducing potential
hotspots.  Applying this technique to a small fraction of the design will
not increase area dramatically."

Synthesis packs function into pin-dense complex cells (NAND4, AOI22, ...);
re-instantiation reverses that: each wide gate becomes a tree of 2-input
gates plus inverters.  The cell count and area grow, the *pin density per
unit area falls*, and — decisive for routing — each original k-pin net's
load is split across the tree, shortening the wiring concentrated on one
spot.  We model this structurally: gates with more than 2 inputs are
decomposed into balanced 2-input trees whose intermediate wires become new
2-pin nets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import PlacementError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist


def decompose_complex_gates(
    netlist: Netlist,
    cells: Iterable[int],
    max_fanin: int = 2,
    stage_area: float = 0.9,
) -> Tuple[Netlist, Dict[int, List[int]]]:
    """Decompose the selected wide gates into trees of simple gates.

    A selected cell with ``d`` incident nets is interpreted as a gate with
    ``d - 1`` inputs and one output.  If it has more than ``max_fanin``
    inputs it is replaced by a balanced tree of ``max_fanin``-input stages:
    the first stage cells take over the original input nets, intermediate
    2-pin nets connect the stages, and the root keeps the output net.

    Args:
        netlist: the design.
        cells: cells to re-instantiate (typically a found GTL).
        max_fanin: maximum inputs per decomposed stage (>= 2).
        stage_area: area of each new stage cell.

    Returns:
        ``(new_netlist, mapping)`` where ``mapping[old_cell]`` lists the new
        cell indices that replaced it (a single-entry list when the cell was
        left intact).
    """
    if max_fanin < 2:
        raise PlacementError("max_fanin must be >= 2")
    selected: Set[int] = set(cells)
    for cell in selected:
        if not 0 <= cell < netlist.num_cells:
            raise PlacementError(f"cell index {cell} out of range")

    builder = NetlistBuilder()
    mapping: Dict[int, List[int]] = {}
    # net -> list of new cells attached to it
    net_members: Dict[int, List[int]] = {n: [] for n in range(netlist.num_nets)}
    extra_nets: List[Tuple[str, List[int]]] = []

    for cell in range(netlist.num_cells):
        view = netlist.cell(cell)
        nets = list(netlist.nets_of_cell(cell))
        decompose = (
            cell in selected and not view.fixed and len(nets) > max_fanin + 1
        )
        if not decompose:
            index = builder.add_cell(
                name=view.name,
                area=view.area,
                pin_count=view.pin_count,
                fixed=view.fixed,
            )
            mapping[cell] = [index]
            for net in nets:
                net_members[net].append(index)
            continue

        # Inputs = all nets but the last (the output); build a tree.
        *input_nets, output_net = nets
        level_handles: List[Tuple[str, int]] = [("net", n) for n in input_nets]
        serial = 0
        while len(level_handles) > 1:
            next_level: List[Tuple[str, int]] = []
            for base in range(0, len(level_handles), max_fanin):
                chunk = level_handles[base : base + max_fanin]
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                    continue
                stage = builder.add_cell(
                    name=f"{view.name}__rs{serial}",
                    area=stage_area,
                    pin_count=len(chunk) + 1,
                )
                serial += 1
                mapping.setdefault(cell, []).append(stage)
                for kind, handle in chunk:
                    if kind == "net":
                        net_members[handle].append(stage)
                    else:
                        extra_nets[handle][1].append(stage)
                if len(level_handles) <= max_fanin:
                    # This stage is the root: it drives the output net.
                    net_members[output_net].append(stage)
                    next_level.append(("root", stage))
                else:
                    wire_index = len(extra_nets)
                    extra_nets.append((f"{view.name}__rw{wire_index}", [stage]))
                    next_level.append(("wire", wire_index))
            level_handles = next_level

    for net in range(netlist.num_nets):
        members = net_members[net]
        if members:
            builder.add_net(netlist.net_name(net), members)
    for name, members in extra_nets:
        if len(members) >= 2:
            builder.add_net(name, members)
    return builder.build(), mapping
