"""Soft blocks: GTLs as placement attraction groups (paper, Chapter I).

"Since a GTL will stay together during placement, the designer may wish to
form a soft block for the gates in the GTL.  Then during placement, the
soft block can be translated into placement constraints (like attractions,
forces, or move bounds)."

We implement the attraction form: every GTL receives a set of lightweight
pseudo-nets (a random cycle plus chords over its members) that the
quadratic placer treats like ordinary springs.  The result keeps each GTL
coherent even when the design is placed with aggressive spreading.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Optional, Sequence

from repro.errors import PlacementError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist
from repro.placement.placer import Placement
from repro.placement.region import Die
from repro.utils.rng import RngLike, ensure_rng


def soft_block_nets(
    netlist: Netlist,
    groups: Sequence[Iterable[int]],
    chords_per_cell: float = 0.5,
    rng: RngLike = 0,
) -> Netlist:
    """Return a copy of ``netlist`` with attraction pseudo-nets per group.

    Each group gets a shuffled ring (guaranteeing cohesion) plus
    ``chords_per_cell * |group|`` random chords.  Pseudo-nets are named
    ``__soft<i>_<j>`` so downstream code can recognize and strip them.

    Args:
        netlist: the design.
        groups: cell-index groups (typically found GTLs).
        chords_per_cell: extra random 2-pin attractions per member.
        rng: seed for ring/chord selection.
    """
    generator = ensure_rng(rng)
    builder = NetlistBuilder()
    for cell in range(netlist.num_cells):
        view = netlist.cell(cell)
        builder.add_cell(
            name=view.name, area=view.area, pin_count=None, fixed=view.fixed
        )
    for net in range(netlist.num_nets):
        builder.add_net(netlist.net_name(net), netlist.cells_of_net(net))

    for g_index, group in enumerate(groups):
        members = sorted(set(group))
        if len(members) < 2:
            raise PlacementError(f"soft block {g_index} needs >= 2 cells")
        ring = list(members)
        generator.shuffle(ring)
        serial = 0
        for a, b in zip(ring, ring[1:] + ring[:1]):
            builder.add_net(f"__soft{g_index}_{serial}", [a, b])
            serial += 1
        for _ in range(int(chords_per_cell * len(members))):
            a, b = generator.sample(members, 2)
            builder.add_net(f"__soft{g_index}_{serial}", [a, b])
            serial += 1
    return builder.build()


def place_with_soft_blocks(
    netlist: Netlist,
    groups: Sequence[Iterable[int]],
    die: Optional[Die] = None,
    chords_per_cell: float = 0.5,
    rng: RngLike = 0,
    **place_kwargs,
) -> Placement:
    """Deprecated alias of :func:`repro.flow.place_with_soft_blocks`.

    The flow version (a declared ``soft_blocks -> place`` two-stage
    :class:`~repro.flow.flow.Flow`) produces identical results and adds
    per-stage fingerprint caching; this shim delegates to it.  ``rng`` must
    be an ``int`` seed (stage configs are content-fingerprinted, so they
    cannot carry live generator objects).
    """
    warnings.warn(
        "repro.apps.place_with_soft_blocks is deprecated; "
        "use repro.flow.place_with_soft_blocks",
        DeprecationWarning,
        stacklevel=2,
    )
    if not isinstance(rng, int) or isinstance(rng, bool):
        raise PlacementError(
            "place_with_soft_blocks now requires an int seed for rng "
            "(stage configs are content-fingerprinted)"
        )
    from repro.flow import place_with_soft_blocks as flow_place_with_soft_blocks

    return flow_place_with_soft_blocks(
        netlist,
        groups,
        die=die,
        chords_per_cell=chords_per_cell,
        seed=rng,
        **place_kwargs,
    )
