"""Zero-dependency observability layer: spans, metrics, run reports.

``repro.obs`` is the single place the rest of the codebase gets its
telemetry primitives from:

* :mod:`repro.obs.trace` — hierarchical spans with thread-local context
  propagation, a process-global :class:`~repro.obs.trace.Tracer`, and a
  no-op fast path when tracing is disabled (the default).
* :mod:`repro.obs.metrics` — typed ``Counter``/``Gauge``/``Histogram``
  aggregates with snapshot/merge for cross-process collection.
* :mod:`repro.obs.report` — :class:`~repro.obs.report.RunReport`, the
  aggregated view (span tree, per-phase totals, counter totals) exported
  by the CLI's ``--profile`` flag and embedded into benchmark records.
* :mod:`repro.obs.logcfg` — :func:`configure_logging`, the one place
  stdlib logging is configured (stderr, ISO timestamps,
  ``REPRO_LOG_LEVEL`` honored).
* :mod:`repro.obs.lint` — ``python -m repro.obs.lint`` walks ``src/``
  and fails on bare ``time.perf_counter()`` / ``print()`` calls outside
  this layer and the CLI.

Everything here is stdlib-only and cheap to import; hot code paths pay a
single attribute check per span when tracing is off.
"""

from repro.obs import trace
from repro.obs.logcfg import configure_logging
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.report import RunReport
from repro.obs.trace import (
    NULL_SPAN,
    JsonlSink,
    Span,
    Tracer,
    clock,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    get_tracer,
    histogram,
    record,
    span,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricRegistry",
    "RunReport",
    "Span",
    "Tracer",
    "clock",
    "configure_logging",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_tracer",
    "histogram",
    "record",
    "span",
    "trace",
]
