"""Telemetry-hygiene lint: ``python -m repro.obs.lint [ROOT]``.

Walks a source tree (default ``src/``) and fails on calls that bypass the
observability layer:

* ``time.perf_counter()`` / bare ``perf_counter()`` — all timing must go
  through :func:`repro.obs.trace.clock` (directly or via
  :class:`repro.utils.timer.Timer`) so there is exactly one monotonic
  clock to reason about.
* ``print(...)`` — library code reports through ``logging`` or returned
  values; stdout belongs to the CLI.

Exempt: the obs layer itself, the CLI front-end, and code inside
``if __name__ == "__main__":`` blocks (the experiment harnesses' ad-hoc
entry points).  The check is AST-based, so comments and strings never
trigger it.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Optional, Sequence, Tuple

#: ``/``-separated path prefixes (relative to the scanned root) that may
#: print and read the clock directly.
ALLOWED_PREFIXES = ("repro/obs/", "repro/cli.py")


def _guarded_ranges(tree: ast.Module) -> List[Tuple[int, int]]:
    """Line ranges of top-level ``if __name__ == "__main__":`` blocks."""
    ranges = []
    for node in tree.body:
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
        ):
            ranges.append((node.lineno, node.end_lineno or node.lineno))
    return ranges


def _forbidden_call(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name) and func.id in ("print", "perf_counter"):
        return func.id
    if isinstance(func, ast.Attribute) and func.attr == "perf_counter":
        return "time.perf_counter"
    return None


def check_source(source: str, rel_path: str) -> List[str]:
    """Violation messages for one file's source text."""
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as error:
        return [f"{rel_path}:{error.lineno or 0}: syntax error: {error.msg}"]
    guarded = _guarded_ranges(tree)
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _forbidden_call(node)
        if name is None:
            continue
        if any(start <= node.lineno <= end for start, end in guarded):
            continue
        violations.append(
            f"{rel_path}:{node.lineno}: bare {name}() — route timing through "
            "repro.obs (clock/Timer) and output through logging/return values"
        )
    return violations


def iter_source_files(root: str) -> List[str]:
    """All ``.py`` files under ``root``, sorted for stable output."""
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if filename.endswith(".py"):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def run(root: str) -> List[str]:
    """Lint every non-exempt source file under ``root``."""
    violations = []
    for path in iter_source_files(root):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(
            rel == prefix or rel.startswith(prefix) for prefix in ALLOWED_PREFIXES
        ):
            continue
        with open(path, encoding="utf-8") as handle:
            violations.extend(check_source(handle.read(), rel))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    root = argv[0] if argv else "src"
    if not os.path.isdir(root):
        print(f"repro.obs.lint: no such directory: {root}", file=sys.stderr)
        return 2
    violations = run(root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"repro.obs.lint: {len(violations)} violation(s) under {root}")
        return 1
    print(f"repro.obs.lint: OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
