"""The single place stdlib logging is configured for the package.

Every ``repro.*`` module creates its logger with plain
``logging.getLogger(__name__)`` and never touches handlers; callers (the
CLI, tests, embedding applications) call :func:`configure_logging` once
to decide where records go.  The configuration is deliberately minimal:
one stderr handler with ISO-8601 timestamps on the ``repro`` parent
logger, level from the explicit argument or the ``REPRO_LOG_LEVEL``
environment variable (default ``WARNING``).

Idempotent: repeated calls adjust the level but never stack handlers.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, Union

from repro.errors import ReproError

#: Environment variable consulted when no explicit level is given.
ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"
_DATE_FORMAT = "%Y-%m-%dT%H:%M:%S%z"


def _resolve_level(level: Optional[Union[str, int]]) -> int:
    if level is None:
        level = os.environ.get(ENV_LOG_LEVEL) or "WARNING"
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ReproError(
            f"unknown log level {level!r} "
            "(use DEBUG, INFO, WARNING, ERROR or CRITICAL)"
        )
    return resolved


def configure_logging(
    level: Optional[Union[str, int]] = None, stream=None
) -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root.

    Args:
        level: level name (``"debug"``) or numeric level; ``None`` falls
            back to ``$REPRO_LOG_LEVEL``, then ``WARNING``.
        stream: destination stream (default ``sys.stderr``).
    """
    logger = logging.getLogger("repro")
    logger.setLevel(_resolve_level(level))
    for handler in logger.handlers:
        if getattr(handler, "_repro_obs_handler", False):
            break
    else:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
        handler._repro_obs_handler = True
        logger.addHandler(handler)
        # Records are fully handled here; don't duplicate them through any
        # root-logger handlers the embedding application installed.
        logger.propagate = False
    return logger


__all__ = ["configure_logging", "ENV_LOG_LEVEL"]
