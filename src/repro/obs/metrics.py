"""Typed in-process metric aggregates: Counter, Gauge, Histogram.

Metrics are cheap running aggregates, not event streams: a counter is one
integer, a histogram is a handful of bucket counts.  Every metric can
:meth:`snapshot` itself into a plain dict (JSON-serializable, picklable)
and :meth:`merge` a snapshot back in, which is how worker processes ship
their tallies to the parent (see :meth:`repro.obs.trace.Tracer.capture`).

A :class:`MetricRegistry` names metrics and creates them on first use.
When tracing is disabled, the module-level accessors in
:mod:`repro.obs.trace` hand out the shared no-op instances below instead,
so instrumented code never branches on "is telemetry on?" itself.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ReproError

#: Default histogram bucket upper bounds (seconds-oriented log scale).
#: Observations above the last bound land in the open overflow bucket.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
)


class Counter:
    """A monotonically growing tally."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the tally by ``amount``."""
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge(self, snap: Mapping[str, Any]) -> None:
        self.value += snap["value"]


class Gauge:
    """A last-written value (e.g. a queue depth, a configuration knob)."""

    __slots__ = ("value", "updates")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value
        self.updates += 1

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "updates": self.updates}

    def merge(self, snap: Mapping[str, Any]) -> None:
        # A merged snapshot that was never written must not clobber a live
        # local value; otherwise the incoming (later) value wins.
        if snap.get("updates"):
            self.value = snap["value"]
            self.updates += snap["updates"]


class Histogram:
    """Count/total/min/max plus fixed log-scale buckets.

    Buckets are cumulative-free: ``buckets[i]`` counts observations with
    ``value <= bounds[i]`` (and above the previous bound); the final slot
    is the overflow bucket.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "bounds")
    kind = "histogram"

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect_right(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": list(self.buckets),
            "bounds": list(self.bounds),
        }

    def merge(self, snap: Mapping[str, Any]) -> None:
        if tuple(snap["bounds"]) != self.bounds:
            raise ReproError("cannot merge histograms with different bounds")
        if not snap["count"]:
            return
        if not self.count:
            self.min = snap["min"]
            self.max = snap["max"]
        else:
            self.min = min(self.min, snap["min"])
            self.max = max(self.max, snap["max"])
        self.count += snap["count"]
        self.total += snap["total"]
        for index, bucket in enumerate(snap["buckets"]):
            self.buckets[index] += bucket


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricRegistry:
    """Named metrics, created on first use, snapshot/merge as one unit."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self):
        """Registered metric names in insertion order."""
        return list(self._metrics)

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls()
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict (picklable) state of every metric."""
        return {name: metric.snapshot() for name, metric in self._metrics.items()}

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry, creating metrics that only the snapshot knows about."""
        for name, snap in snapshot.items():
            kind = snap.get("kind")
            cls = _KINDS.get(kind)
            if cls is None:
                raise ReproError(f"unknown metric kind {kind!r} for {name!r}")
            self._get(name, cls).merge(snap)


class _NullCounter:
    """Shared do-nothing counter handed out while tracing is disabled."""

    __slots__ = ()
    value = 0

    def add(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_BOUNDS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]
