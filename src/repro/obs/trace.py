"""Hierarchical span tracing with a disabled-mode no-op fast path.

One process-global :class:`Tracer` (reachable through the module-level
functions) produces nested :class:`Span` records: name, attributes,
monotonic start/duration and parent span id.  The current span is tracked
per thread, so ``with span(...)`` nests correctly across threads without
any caller bookkeeping.

Design constraints, in order:

1. **Disabled is free.**  ``span()`` returns the shared :data:`NULL_SPAN`
   singleton after a single attribute check; nothing is allocated, no
   clock is read.  Instrumentation can therefore live inside kernels.
2. **Telemetry never changes results.**  Nothing here feeds back into the
   algorithms or the content fingerprints; enabling tracing is observably
   a no-op apart from the trace itself (regression-tested).
3. **Works across process boundaries.**  Worker processes wrap their work
   in :meth:`Tracer.capture` and ship plain-dict spans/metric snapshots
   back; the parent re-parents them under its own task span with
   :meth:`Tracer.adopt` (see :mod:`repro.service.pool`).

The one monotonic clock of the codebase is :func:`clock`;
:class:`repro.utils.timer.Timer` wraps it too, so every reported duration
comes from the same time source.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricRegistry,
)


def clock() -> float:
    """The codebase's monotonic clock (fractional seconds)."""
    return time.perf_counter()


def _new_span_id() -> str:
    # Random ids (not a counter) so ids stay unique across worker
    # processes whose spans are merged into one trace.
    return uuid.uuid4().hex[:16]


class Span:
    """One traced unit of work; a context manager.

    Entering records the start time and pushes the span onto the calling
    thread's context stack (setting ``parent_id`` from the previous top);
    exiting computes the duration, pops the stack and hands the finished
    record to the tracer's sinks.
    """

    __slots__ = ("name", "span_id", "parent_id", "attrs", "start", "duration", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = _new_span_id()
        self.parent_id: Optional[str] = None
        self.start = 0.0
        self.duration = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def add(self, key: str, amount: float = 1) -> "Span":
        """Increment the numeric attribute ``key`` (created at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self.start = clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = clock() - self.start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finish(self.to_dict())
        return False

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSONL record)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": os.getpid(),
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    span_id = None
    parent_id = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def add(self, key: str, amount: float = 1) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class JsonlSink:
    """Writes each finished span as one compact JSON line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w")

    def emit(self, span_dict: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(span_dict, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Capture:
    """Spans and metric snapshots collected by :meth:`Tracer.capture`."""

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []
        self.metrics: Dict[str, Dict[str, Any]] = {}


_CURRENT = object()  # sentinel: "parent under the calling thread's span"


class Tracer:
    """Produces spans and owns the in-memory collector + optional sink."""

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = MetricRegistry()
        self._sink: Optional[JsonlSink] = None
        self._spans: List[Dict[str, Any]] = []
        self._local = threading.local()

    # -- internal ------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span_dict: Dict[str, Any]) -> None:
        self._spans.append(span_dict)
        if self._sink is not None:
            self._sink.emit(span_dict)

    # -- lifecycle -----------------------------------------------------
    def enable(self, jsonl_path: Optional[str] = None) -> None:
        """Start a fresh trace; optionally stream spans to ``jsonl_path``."""
        if self._sink is not None:
            self._sink.close()
        self._spans = []
        self.metrics = MetricRegistry()
        self._local = threading.local()
        self._sink = JsonlSink(jsonl_path) if jsonl_path else None
        self.enabled = True

    def disable(self) -> None:
        """Stop tracing and close the sink (collected spans are retained
        until the next :meth:`enable`)."""
        self.enabled = False
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    # -- span creation -------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """A context-managed span, or :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def record(
        self,
        name: str,
        duration: float,
        parent_id: Any = _CURRENT,
        start: float = 0.0,
        **attrs: Any,
    ) -> Optional[str]:
        """Emit an already-measured span and return its id.

        For work whose lifetime does not nest in the calling frame (e.g.
        overlapping pool tasks measured by their futures).  ``parent_id``
        defaults to the calling thread's current span.
        """
        if not self.enabled:
            return None
        if parent_id is _CURRENT:
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else None
        span_dict = {
            "name": name,
            "span_id": _new_span_id(),
            "parent_id": parent_id,
            "start": start,
            "duration": duration,
            "pid": os.getpid(),
            "attrs": attrs,
        }
        self._finish(span_dict)
        return span_dict["span_id"]

    def adopt(
        self, span_dicts: Iterable[Dict[str, Any]], parent_id: Optional[str]
    ) -> None:
        """Ingest spans captured elsewhere (a worker process), re-parenting
        their roots — spans whose parent is not in the shipped set — under
        ``parent_id``."""
        if not self.enabled:
            return
        span_dicts = list(span_dicts)
        local_ids = {d["span_id"] for d in span_dicts}
        for span_dict in span_dicts:
            if span_dict.get("parent_id") not in local_ids:
                span_dict = dict(span_dict)
                span_dict["parent_id"] = parent_id
            self._finish(span_dict)

    def merge_metrics(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a worker's metric snapshot into this tracer's registry."""
        if not self.enabled:
            return
        self.metrics.merge(snapshot)

    def finished_spans(self) -> List[Dict[str, Any]]:
        """All spans finished since the last :meth:`enable` (copy)."""
        return list(self._spans)

    @contextmanager
    def capture(self):
        """Collect spans/metrics into a :class:`Capture`, isolated from —
        and restoring — whatever tracing state was active before.

        Worker processes use this so their telemetry travels back as data
        instead of being written to a sink they do not own.
        """
        saved = (self.enabled, self.metrics, self._spans, self._sink, self._local)
        self.enabled = True
        self.metrics = MetricRegistry()
        self._spans = []
        self._sink = None
        self._local = threading.local()
        result = Capture()
        try:
            yield result
        finally:
            result.spans = self._spans
            result.metrics = self.metrics.snapshot()
            (self.enabled, self.metrics, self._spans, self._sink, self._local) = saved


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def enabled() -> bool:
    """True while the global tracer is collecting."""
    return _TRACER.enabled


def enable(jsonl_path: Optional[str] = None) -> None:
    """Enable the global tracer (fresh trace; optional JSONL sink)."""
    _TRACER.enable(jsonl_path)


def disable() -> None:
    """Disable the global tracer and close its sink."""
    _TRACER.disable()


def span(name: str, **attrs: Any):
    """A span on the global tracer (:data:`NULL_SPAN` when disabled)."""
    return _TRACER.span(name, **attrs)


def record(
    name: str,
    duration: float,
    parent_id: Any = _CURRENT,
    start: float = 0.0,
    **attrs: Any,
) -> Optional[str]:
    """Emit an already-measured span on the global tracer."""
    return _TRACER.record(name, duration, parent_id=parent_id, start=start, **attrs)


def counter(name: str):
    """The named global counter (shared no-op instance when disabled)."""
    if not _TRACER.enabled:
        return NULL_COUNTER
    return _TRACER.metrics.counter(name)


def gauge(name: str):
    """The named global gauge (shared no-op instance when disabled)."""
    if not _TRACER.enabled:
        return NULL_GAUGE
    return _TRACER.metrics.gauge(name)


def histogram(name: str):
    """The named global histogram (shared no-op instance when disabled)."""
    if not _TRACER.enabled:
        return NULL_HISTOGRAM
    return _TRACER.metrics.histogram(name)


__all__ = [
    "Capture",
    "JsonlSink",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "clock",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_tracer",
    "histogram",
    "record",
    "span",
]
