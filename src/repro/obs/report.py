"""RunReport: the aggregated, human- and machine-readable view of a trace.

A trace is a flat list of span dicts (see :class:`repro.obs.trace.Span`)
plus a metric snapshot.  :class:`RunReport` turns that into:

* :meth:`tree` — spans grouped by name along parent/child paths, with
  call counts, cumulative and *self* time (cumulative minus direct
  children) per node;
* :meth:`phase_totals` — the same aggregation flattened by span name,
  which is what benchmark records embed as their per-phase breakdown;
* :meth:`summary` — the renderable profile (span tree + counter totals)
  printed by the CLI's ``--profile`` flag.

Spans merged from worker processes carry per-process clocks, so only
durations — never raw ``start`` values — are compared across spans.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError


class RunReport:
    """Aggregates one finished trace (spans + metrics)."""

    def __init__(
        self,
        spans: Sequence[Dict[str, Any]],
        metrics: Optional[Mapping[str, Mapping[str, Any]]] = None,
    ) -> None:
        self.spans = list(spans)
        self.metrics = {name: dict(snap) for name, snap in (metrics or {}).items()}

    # -- constructors --------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer=None) -> "RunReport":
        """Build from a tracer's collected spans and metrics (the global
        tracer by default)."""
        from repro.obs import trace

        tracer = tracer or trace.get_tracer()
        return cls(tracer.finished_spans(), tracer.metrics.snapshot())

    @classmethod
    def from_jsonl(cls, path: str) -> "RunReport":
        """Build from a ``--trace`` JSONL file (spans only, no metrics)."""
        spans = []
        try:
            with open(path) as handle:
                for line_no, line in enumerate(handle, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        spans.append(json.loads(line))
                    except json.JSONDecodeError as error:
                        raise ReproError(
                            f"bad trace line {line_no} in {path}: {error}"
                        ) from error
        except OSError as error:
            raise ReproError(f"cannot read trace file {path}: {error}") from error
        return cls(spans)

    # -- aggregation ---------------------------------------------------
    def _children_map(self) -> Dict[Optional[str], List[Dict[str, Any]]]:
        known = {span["span_id"] for span in self.spans}
        children: Dict[Optional[str], List[Dict[str, Any]]] = {}
        for span in self.spans:
            parent = span.get("parent_id")
            if parent not in known:
                parent = None  # orphans (partial traces) become roots
            children.setdefault(parent, []).append(span)
        return children

    def tree(self) -> List[Dict[str, Any]]:
        """Aggregated span tree: siblings sharing a name merge into one
        node with ``count``/``total_s``/``self_s`` and nested children."""
        children = self._children_map()

        def aggregate(level: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
            groups: Dict[str, List[Dict[str, Any]]] = {}
            for span in level:
                groups.setdefault(span["name"], []).append(span)
            nodes = []
            for name, members in groups.items():
                total = sum(span["duration"] for span in members)
                child_spans = [
                    child
                    for span in members
                    for child in children.get(span["span_id"], ())
                ]
                child_nodes = aggregate(child_spans)
                child_total = sum(node["total_s"] for node in child_nodes)
                nodes.append(
                    {
                        "name": name,
                        "count": len(members),
                        "total_s": total,
                        "self_s": max(0.0, total - child_total),
                        "children": child_nodes,
                    }
                )
            nodes.sort(key=lambda node: -node["total_s"])
            return nodes

        return aggregate(children.get(None, []))

    def phase_totals(self) -> Dict[str, Dict[str, Any]]:
        """Per-span-name totals: call count, cumulative and self seconds.

        Self time subtracts only *direct* children, so parent names keep
        their own bookkeeping cost while nested phases attribute cleanly.
        """
        children = self._children_map()
        totals: Dict[str, Dict[str, Any]] = {}
        for span in self.spans:
            child_total = sum(
                child["duration"] for child in children.get(span["span_id"], ())
            )
            entry = totals.setdefault(
                span["name"], {"count": 0, "total_s": 0.0, "self_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += span["duration"]
            entry["self_s"] += max(0.0, span["duration"] - child_total)
        return totals

    def counters(self) -> Dict[str, int]:
        """Counter totals by name (the run's counter set)."""
        return {
            name: snap["value"]
            for name, snap in self.metrics.items()
            if snap.get("kind") == "counter"
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable aggregate (what benchmark records embed)."""
        return {
            "num_spans": len(self.spans),
            "tree": self.tree(),
            "phases": self.phase_totals(),
            "metrics": self.metrics,
        }

    # -- rendering -----------------------------------------------------
    def summary(self) -> str:
        """The human profile: span tree, then counters, then histograms."""
        lines: List[str] = []
        rows: List[tuple] = []

        def walk(nodes: List[Dict[str, Any]], depth: int) -> None:
            for node in nodes:
                rows.append(
                    (
                        "  " * depth + node["name"],
                        node["count"],
                        node["self_s"],
                        node["total_s"],
                    )
                )
                walk(node["children"], depth + 1)

        walk(self.tree(), 0)
        if rows:
            width = max(len("span"), max(len(row[0]) for row in rows))
            lines.append(
                f"{'span':<{width}}  {'count':>7}  {'self(s)':>10}  {'total(s)':>10}"
            )
            for name, count, self_s, total_s in rows:
                lines.append(
                    f"{name:<{width}}  {count:>7}  {self_s:>10.3f}  {total_s:>10.3f}"
                )
        else:
            lines.append("(no spans recorded)")

        counters = self.counters()
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]}")
        histograms = {
            name: snap
            for name, snap in self.metrics.items()
            if snap.get("kind") == "histogram" and snap.get("count")
        }
        if histograms:
            lines.append("histograms:")
            for name in sorted(histograms):
                snap = histograms[name]
                mean = snap["total"] / snap["count"]
                lines.append(
                    f"  {name}: n={snap['count']} mean={mean:.6f}s "
                    f"min={snap['min']:.6f}s max={snap['max']:.6f}s"
                )
        gauges = {
            name: snap
            for name, snap in self.metrics.items()
            if snap.get("kind") == "gauge" and snap.get("updates")
        }
        if gauges:
            lines.append("gauges:")
            for name in sorted(gauges):
                lines.append(f"  {name} = {gauges[name]['value']}")
        return "\n".join(lines)


__all__ = ["RunReport"]
