"""repro — reproduction of "Detecting Tangled Logic Structures in VLSI
Netlists" (Jindal et al., DAC 2010).

Public API highlights:

* :mod:`repro.flow` — **the composable pipeline API**: declared stage
  lists (``detect`` / ``partition`` / ``place`` / ``congestion`` /
  ``soft_blocks`` / ``resynthesis``) executed with per-stage content
  fingerprints and bit-identical result caching.  ``Flow``, the built-in
  stages, :func:`~repro.flow.detect` and :func:`~repro.io.load_design` are
  re-exported here (lazily — importing :mod:`repro` stays light).
* :class:`~repro.netlist.Netlist` / :class:`~repro.netlist.NetlistBuilder` —
  hypergraph netlists.
* :func:`~repro.finder.find_tangled_logic` — run the paper's three-phase
  GTL finder (the function ``DetectStage`` wraps).
* :mod:`repro.metrics` — nGTL-Score, density-aware GTL-Score, and all the
  baseline cluster metrics.
* :mod:`repro.generators` — planted random graphs, gate-level structures,
  ISPD-like and industrial-like designs.
* :mod:`repro.placement` / :mod:`repro.routing` — the placement and
  congestion substrates used by the routability experiments.
* :mod:`repro.experiments` — one harness per table/figure of the paper.
* :mod:`repro.service` — batched detection jobs, the worker pool and the
  persistent result store the flow layer caches into.
"""

from repro.errors import (
    FinderError,
    FlowError,
    GenerationError,
    MetricError,
    NetlistError,
    ParseError,
    PlacementError,
    ReproError,
    ServiceError,
    ValidationError,
)
from repro.netlist import Netlist, NetlistBuilder
from repro.finder import (
    GTL,
    FinderConfig,
    FinderReport,
    TangledLogicFinder,
    find_tangled_logic,
)
from repro.metrics import (
    ScoreContext,
    density_aware_gtl_score,
    gtl_score,
    normalized_gtl_score,
)

__version__ = "1.1.0"

#: Names served lazily from :mod:`repro.flow` (PEP 562) so ``import repro``
#: does not pull the placement/routing numeric stack until a flow is used.
_FLOW_EXPORTS = frozenset({
    "Flow",
    "FlowContext",
    "FlowResult",
    "Stage",
    "StageConfig",
    "StageResult",
    "DetectStage",
    "PartitionStage",
    "PlaceStage",
    "CongestionStage",
    "SoftBlocksStage",
    "ResynthesisStage",
    "flow_from_manifest",
    "detect",
})


def __getattr__(name: str):
    if name in _FLOW_EXPORTS:
        import repro.flow as flow

        return getattr(flow, name)
    if name == "load_design":
        from repro.io import load_design

        return load_design
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "ReproError",
    "NetlistError",
    "ValidationError",
    "ParseError",
    "MetricError",
    "FinderError",
    "PlacementError",
    "GenerationError",
    "ServiceError",
    "FlowError",
    "Netlist",
    "NetlistBuilder",
    "GTL",
    "FinderConfig",
    "FinderReport",
    "TangledLogicFinder",
    "find_tangled_logic",
    "ScoreContext",
    "gtl_score",
    "normalized_gtl_score",
    "density_aware_gtl_score",
    "load_design",
    *sorted(_FLOW_EXPORTS),
    "__version__",
]
