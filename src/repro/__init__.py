"""repro — reproduction of "Detecting Tangled Logic Structures in VLSI
Netlists" (Jindal et al., DAC 2010).

Public API highlights:

* :class:`~repro.netlist.Netlist` / :class:`~repro.netlist.NetlistBuilder` —
  hypergraph netlists.
* :func:`~repro.finder.find_tangled_logic` — run the paper's three-phase
  GTL finder.
* :mod:`repro.metrics` — nGTL-Score, density-aware GTL-Score, and all the
  baseline cluster metrics.
* :mod:`repro.generators` — planted random graphs, gate-level structures,
  ISPD-like and industrial-like designs.
* :mod:`repro.placement` / :mod:`repro.routing` — the placement and
  congestion substrates used by the routability experiments.
* :mod:`repro.experiments` — one harness per table/figure of the paper.
"""

from repro.errors import (
    FinderError,
    GenerationError,
    MetricError,
    NetlistError,
    ParseError,
    PlacementError,
    ReproError,
    ServiceError,
    ValidationError,
)
from repro.netlist import Netlist, NetlistBuilder
from repro.finder import (
    GTL,
    FinderConfig,
    FinderReport,
    TangledLogicFinder,
    find_tangled_logic,
)
from repro.metrics import (
    ScoreContext,
    density_aware_gtl_score,
    gtl_score,
    normalized_gtl_score,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "NetlistError",
    "ValidationError",
    "ParseError",
    "MetricError",
    "FinderError",
    "PlacementError",
    "GenerationError",
    "ServiceError",
    "Netlist",
    "NetlistBuilder",
    "GTL",
    "FinderConfig",
    "FinderReport",
    "TangledLogicFinder",
    "find_tangled_logic",
    "ScoreContext",
    "gtl_score",
    "normalized_gtl_score",
    "density_aware_gtl_score",
    "__version__",
]
