"""JSON-lines protocol spoken over the daemon's Unix socket.

Framing: every message — request and response alike — is one JSON object
on one ``\\n``-terminated line, UTF-8 encoded.  A connection carries a
sequence of requests; most requests get exactly one response line, while a
``submit`` with ``"stream": true`` holds the line open and emits one event
object per state transition until a terminal event.

Requests (``op`` selects the operation)::

    {"op": "ping"}
    {"op": "submit", "kind": "detect", "design": "/abs/path.hgr",
     "config": {...FinderConfig fields...}, "priority": "interactive",
     "label": "a", "stream": true}
    {"op": "submit", "kind": "flow", "design": "/abs/path.hgr",
     "stages": [{"stage": "detect", "seed": 1}, {"stage": "partition"}]}
    {"op": "submit", "kind": "detect", "design": "/abs/base.nla",
     "delta": {...NetlistDelta.to_dict() form...}, "config": {...}}
    {"op": "status"}                  # server-level stats
    {"op": "status", "job_id": "..."} # one job's lifecycle record
    {"op": "status", "group": "..."}  # stats + only that group's jobs
    {"op": "result", "job_id": "..."} # terminal payload of a finished job
    {"op": "cancel", "job_id": "..."}
    {"op": "shutdown", "drain": true}

Responses always carry ``"ok"`` (bool) and ``"event"`` (str).  Events:

* ``pong`` / ``status`` / ``jobs`` / ``cancelled`` / ``shutting-down`` —
  single-line acks.
* ``rejected`` — backpressure; carries ``retry_after_s`` and the current
  ``queue_depth``.  ``ok`` is false.
* ``queued`` -> ``started`` -> ``progress``* -> ``result`` | ``error`` —
  the streamed job lifecycle.  ``result`` carries the report payload
  (:func:`repro.service.codec.report_to_dict` form for detect jobs),
  ``cached`` and ``runtime_seconds``; ``error`` carries ``error``.

Requests are content-addressed: a ``submit`` whose fingerprint is already
in the daemon's result store is answered inline with a ``result`` event
(``cached: true``) without ever entering the queue.

Delta submits (protocol 2): a detect ``submit`` may carry a ``"delta"``
object (:meth:`repro.incremental.NetlistDelta.to_dict` form).  ``design``
then names the *base* design — typically already warm in the daemon's
design cache — and the daemon applies the delta server-side, so an edit
is shipped as a few KB of JSON instead of the whole netlist.  Delta jobs
run through incremental detection (dirty-region seed reuse, see
:mod:`repro.incremental.engine`); the ``result`` payload additionally
carries ``incremental`` provenance (mode, seeds recomputed, dirty cells).

Job groups (protocol 2, optional): a ``submit`` may carry a ``"group"``
string tagging the job as part of a larger unit of work — e.g. one shard
of a sharded sweep (``"sweep/shard-3"``).  A ``status`` request with a
``"group"`` restricts its ``jobs`` listing to that group, so a queued
sweep's shards are observable while they wait.  Absent fields keep the
pre-group behaviour, so version 2 stays wire-compatible.
"""

from __future__ import annotations

import json
import socket
from typing import Any, BinaryIO, Dict, Optional

from repro.errors import ServerError

#: Protocol version, exchanged in ``ping`` so client/daemon skew is visible.
#: Version 2 adds delta submits (``submit`` with a ``"delta"`` object).
PROTOCOL_VERSION = 2

#: Hard per-line bound (requests and responses); a 100K-cell report is
#: ~10 MB of JSON, so this leaves generous headroom while still bounding a
#: runaway/garbage peer.
MAX_LINE_BYTES = 256 * 1024 * 1024

#: Valid values of the request ``op`` field.
OPS = ("ping", "submit", "status", "result", "cancel", "shutdown")

#: Valid values of the submit ``kind`` field.
JOB_KINDS = ("detect", "flow")


def encode_line(message: Dict[str, Any]) -> bytes:
    """One protocol message as a compact JSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises :class:`ServerError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ServerError(
            f"protocol line exceeds {MAX_LINE_BYTES} bytes; dropping peer"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServerError(f"malformed protocol line: {error}") from error
    if not isinstance(message, dict):
        raise ServerError("protocol messages must be JSON objects")
    return message


def write_message(stream: BinaryIO, message: Dict[str, Any]) -> None:
    """Write one message line and flush it to the peer."""
    try:
        stream.write(encode_line(message))
        stream.flush()
    except (OSError, ValueError) as error:
        raise ServerError(f"peer connection lost: {error}") from error


def read_message(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one message line; ``None`` on a cleanly closed connection."""
    try:
        line = stream.readline(MAX_LINE_BYTES + 1)
    except (OSError, ValueError, socket.timeout) as error:
        raise ServerError(f"peer connection lost: {error}") from error
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ServerError("truncated or oversized protocol line")
    return decode_line(line)


def parse_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Validate the envelope of one request (op present and known)."""
    op = message.get("op")
    if op not in OPS:
        raise ServerError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    return message


def error_response(error: Exception, **fields: Any) -> Dict[str, Any]:
    """The single-line failure response for ``error``."""
    return {"ok": False, "event": "error", "error": str(error), **fields}


__all__ = [
    "JOB_KINDS",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "decode_line",
    "encode_line",
    "error_response",
    "parse_request",
    "read_message",
    "write_message",
]
