"""Client library for the detection daemon.

:class:`Client` speaks the JSON-lines protocol of
:mod:`repro.server.protocol` over the daemon's Unix socket.  Every
operation opens its own short-lived connection (Unix-domain connects cost
microseconds), so one ``Client`` is safe to share across threads and a
streaming ``submit`` never blocks an unrelated ``status`` probe.

>>> with Client("/tmp/repro-server.sock") as client:     # doctest: +SKIP
...     result = client.detect("designs/a.hgr", seed=7)  # doctest: +SKIP
...     print(result["report"]["summary"])               # doctest: +SKIP

``submit(..., wait=False)`` returns the ``queued`` acknowledgement
(carrying the job id) immediately; poll with :meth:`status` / fetch with
:meth:`result` later.  With ``wait=True`` (default) the call streams the
job's lifecycle — optionally surfacing each event through ``on_event`` —
and returns the terminal ``result`` payload, raising
:class:`~repro.errors.ServerError` on a failed or cancelled job.

Backpressure: a ``rejected`` response makes ``submit`` sleep the
advertised ``retry_after_s`` and retry, up to ``busy_retries`` times,
before surfacing :class:`~repro.errors.ServerBusy` to the caller.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import ServerBusy, ServerError
from repro.server import protocol

EventCallback = Callable[[Dict[str, Any]], None]


class Client:
    """Talk to a running :class:`~repro.server.daemon.ServerDaemon`.

    Args:
        socket_path: the daemon's Unix socket.
        timeout_s: per-read socket timeout while waiting for responses;
            streaming submits disable it (a queued sweep may legitimately
            sit for minutes).
        busy_retries: automatic retries after a backpressure rejection.
    """

    def __init__(
        self,
        socket_path: str,
        timeout_s: float = 30.0,
        busy_retries: int = 0,
    ) -> None:
        self.socket_path = socket_path
        self.timeout_s = timeout_s
        self.busy_retries = busy_retries

    # -- plumbing -------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout_s)
        try:
            sock.connect(self.socket_path)
        except OSError as error:
            sock.close()
            raise ServerError(
                f"cannot reach daemon at {self.socket_path} ({error}); "
                f"is `repro serve` running?"
            ) from error
        return sock

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one response line, connection closed."""
        with self._connect() as sock, sock.makefile("rwb") as stream:
            protocol.write_message(stream, request)
            response = protocol.read_message(stream)
        if response is None:
            raise ServerError("daemon closed the connection without replying")
        return self._checked(response)

    @staticmethod
    def _checked(response: Dict[str, Any]) -> Dict[str, Any]:
        if response.get("ok"):
            return response
        if response.get("event") == "rejected":
            raise ServerBusy(
                response.get("error", "daemon busy"),
                retry_after_s=float(response.get("retry_after_s", 1.0)),
            )
        raise ServerError(response.get("error", f"daemon error: {response}"))

    # -- operations -----------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Liveness + version probe; raises when no daemon answers."""
        return self._roundtrip({"op": "ping"})

    def status(
        self, job_id: Optional[str] = None, group: str = ""
    ) -> Dict[str, Any]:
        """Server-level stats, or one job's lifecycle record.

        ``group`` filters the server-level ``jobs`` listing to one job
        group (e.g. a sharded sweep's ``"sweep/shard-3"``).
        """
        request: Dict[str, Any] = {"op": "status"}
        if job_id is not None:
            request["job_id"] = job_id
        if group:
            request["group"] = group
        return self._roundtrip(request)

    def result(self, job_id: str) -> Dict[str, Any]:
        """Terminal payload of a finished job (state line while running)."""
        return self._roundtrip({"op": "result", "job_id": job_id})

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a still-queued job."""
        return self._roundtrip({"op": "cancel", "job_id": job_id})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Ask the daemon to stop (draining its backlog by default)."""
        return self._roundtrip({"op": "shutdown", "drain": drain})

    def submit(
        self,
        design: str,
        kind: str = "detect",
        config: Optional[Dict[str, Any]] = None,
        stages: Optional[List[Dict[str, Any]]] = None,
        priority: str = "batch",
        label: str = "",
        group: str = "",
        wait: bool = True,
        on_event: Optional[EventCallback] = None,
        delta: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit one job; stream it to completion unless ``wait=False``.

        Returns the terminal ``result`` event payload (``wait=True``) or
        the ``queued``/``result`` acknowledgement (``wait=False`` — warm
        submits complete inline, so even a no-wait call may come back with
        the full result).

        ``delta`` (protocol 2, detect only) is a
        :meth:`repro.incremental.NetlistDelta.to_dict` payload; ``design``
        then names the *base* design and the daemon reconstructs the
        edited netlist server-side — the edit travels as JSON, the design
        is never re-shipped.
        """
        request: Dict[str, Any] = {
            "op": "submit",
            "kind": kind,
            "design": design,
            "priority": priority,
            "stream": wait,
        }
        if label:
            request["label"] = label
        if group:
            request["group"] = group
        if config is not None:
            request["config"] = config
        if stages is not None:
            request["stages"] = stages
        if delta is not None:
            if kind != "detect":
                raise ServerError('delta submits must have kind "detect"')
            request["delta"] = delta

        attempts = 0
        while True:
            try:
                if not wait:
                    return self._roundtrip(request)
                return self._stream_submit(request, on_event)
            except ServerBusy as busy:
                attempts += 1
                if attempts > self.busy_retries:
                    raise
                time.sleep(busy.retry_after_s)

    def detect(self, design: str, **config: Any) -> Dict[str, Any]:
        """Convenience: synchronous detect submit with config kwargs.

        >>> client.detect("a.hgr", seed=7, workers=2)  # doctest: +SKIP
        """
        return self.submit(design, kind="detect", config=config)

    def _stream_submit(
        self, request: Dict[str, Any], on_event: Optional[EventCallback]
    ) -> Dict[str, Any]:
        for event in self._stream(request):
            if on_event is not None:
                on_event(event)
            if event["event"] == "result":
                return event
            if event["event"] in ("error", "cancelled"):
                raise ServerError(
                    event.get("error")
                    or f"job {event.get('job_id')} {event.get('state')}"
                )
        raise ServerError("daemon closed the stream before a terminal event")

    def _stream(self, request: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        with self._connect() as sock, sock.makefile("rwb") as stream:
            protocol.write_message(stream, request)
            first = protocol.read_message(stream)
            if first is None:
                raise ServerError(
                    "daemon closed the connection without replying"
                )
            yield self._checked(first)  # raises on rejected/error
            if first["event"] in ("result", "error", "cancelled"):
                return
            sock.settimeout(None)  # queued: the job may wait arbitrarily
            while True:
                event = protocol.read_message(stream)
                if event is None:
                    return
                yield event
                if event["event"] in ("result", "error", "cancelled"):
                    return

    # -- context management ---------------------------------------------
    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        pass  # connections are per-call; nothing held open


__all__ = ["Client", "EventCallback"]
