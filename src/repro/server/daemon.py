"""The long-lived detection daemon.

One :class:`ServerDaemon` process owns the expensive state every one-shot
CLI run pays to rebuild — a warm :class:`~repro.service.pool.WorkerPool`,
an open WAL-mode :class:`~repro.service.store.ResultStore` and an LRU of
loaded designs (:class:`DesignCache`, pack-index aware) — and serves
detect and flow jobs over a local Unix socket in the JSON-lines protocol
of :mod:`repro.server.protocol`.

Threading model:

* the **listener thread** accepts connections (``socketserver`` threading
  server; one daemon thread per connection);
* **connection threads** parse requests, answer warm (already-cached)
  submits inline from the store — no queueing, no process spawn — and
  enqueue cold submits into the :class:`~repro.server.queue.JobQueue`;
* one **scheduler thread** dispatches queued jobs priority-first
  (starvation-free) and executes them against the shared pool + store,
  publishing ``started``/``progress``/``result`` events that streaming
  connections relay as JSONL.

Shutdown is graceful by default: on SIGTERM (or a ``shutdown`` request)
the daemon stops accepting work, lets the scheduler finish everything
already admitted, then releases the pool, the store and the socket.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import signal
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError, ServerBusy, ServerError
from repro.flow.flow import Flow
from repro.flow.manifest import stage_from_entry
from repro.io import load_design, load_packed
from repro.io.corpus import load_pack_index
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.server import protocol
from repro.server.queue import (
    DEFAULT_PRIORITY,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobQueue,
    JobRecord,
)
from repro.service.codec import config_from_dict, report_to_dict
from repro.service.fingerprint import (
    fingerprint_netlist,
    job_fingerprint,
    stage_fingerprint,
)
from repro.service.pool import WorkerPool
from repro.service.store import ResultStore

logger = logging.getLogger(__name__)

#: Default Unix socket path (override with ``--socket``).
DEFAULT_SOCKET = "/tmp/repro-server.sock"


@dataclass(frozen=True)
class ServerConfig:
    """All knobs of one :class:`ServerDaemon`.

    Attributes:
        socket_path: Unix socket the daemon listens on.
        cache_dir: result-store directory (shared, WAL-mode safe).
        workers: worker processes in the shared pool.
        max_queue_depth: queued jobs admitted before backpressure.
        starvation_limit: scheduler dispatches a class may be passed over.
        retry_after_s: base backpressure retry hint.
        max_designs: designs kept loaded in the LRU.
        pack_index: corpus directory (or index file) of pre-packed designs
            to mmap instead of parsing text; empty disables.
        drain_timeout_s: how long shutdown waits for the scheduler to
            finish the backlog before giving up.
    """

    socket_path: str = DEFAULT_SOCKET
    cache_dir: str = ".repro-cache"
    workers: int = 1
    max_queue_depth: int = 64
    starvation_limit: int = 8
    retry_after_s: float = 0.25
    max_designs: int = 8
    pack_index: str = ""
    drain_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServerError("ServerConfig workers must be >= 1")
        if self.max_designs < 1:
            raise ServerError("ServerConfig max_designs must be >= 1")
        if self.drain_timeout_s <= 0:
            raise ServerError("ServerConfig drain_timeout_s must be positive")


@dataclass
class DesignCacheStats:
    """Live counters of one :class:`DesignCache`."""

    hits: int = 0
    misses: int = 0
    pack_loads: int = 0
    reloads: int = 0


class DesignCache:
    """Bounded LRU of loaded designs, keyed by absolute source path.

    Every entry remembers the source file's ``(mtime_ns, size)`` at load
    time; a request for a path whose stat changed reloads instead of
    serving a stale netlist.  When a pack index is supplied, a source
    whose stat still matches its pack-time signature is served by
    mmap-loading the pre-packed ``.nla`` twin — the parse cost is paid
    zero times, not once.
    """

    def __init__(self, max_designs: int = 8, pack_index: str = "") -> None:
        self.max_designs = max_designs
        self.stats = DesignCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[Netlist, str, Tuple[int, int]]]" = (
            OrderedDict()
        )
        self._pack_index = load_pack_index(pack_index) if pack_index else {}

    def get(self, path: str) -> Tuple[Netlist, str]:
        """``(netlist, fingerprint)`` for ``path``, loading on first use."""
        path = os.path.abspath(path)
        try:
            stat = os.stat(path)
        except OSError as error:
            raise ServerError(f"cannot stat design {path}: {error}") from error
        signature = (stat.st_mtime_ns, stat.st_size)
        # The lock covers the load too: two connections racing on the same
        # cold design must not parse it twice (and must see one netlist).
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None and entry[2] == signature:
                self._entries.move_to_end(path)
                self.stats.hits += 1
                return entry[0], entry[1]
            if entry is not None:
                self.stats.reloads += 1
            netlist = self._load(path)
            fingerprint = fingerprint_netlist(netlist)
            self._entries[path] = (netlist, fingerprint, signature)
            self._entries.move_to_end(path)
            while len(self._entries) > self.max_designs:
                self._entries.popitem(last=False)
            self.stats.misses += 1
            return netlist, fingerprint

    def _load(self, path: str) -> Netlist:
        packed = self._pack_index.get(path)
        if packed is not None and packed.matches(path):
            self.stats.pack_loads += 1
            return load_packed(packed.pack_path)
        return load_design(path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "loaded": len(self),
            "max_designs": self.max_designs,
            "pack_index_entries": len(self._pack_index),
            **dataclasses.asdict(self.stats),
        }


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One connection: a sequence of JSONL requests, dispatched in turn."""

    def handle(self) -> None:
        daemon: "ServerDaemon" = self.server.repro_daemon  # type: ignore[attr-defined]
        while True:
            try:
                message = protocol.read_message(self.rfile)
            except ServerError:
                return  # peer sent garbage framing or vanished; drop it
            if message is None:
                return
            try:
                request = protocol.parse_request(message)
                daemon.dispatch(request, self.wfile)
            except ServerBusy as busy:
                daemon.counters["rejected"] += 1
                self._respond(
                    {
                        "ok": False,
                        "event": "rejected",
                        "error": str(busy),
                        "retry_after_s": busy.retry_after_s,
                        "queue_depth": daemon.queue.depth(),
                    }
                )
            except ReproError as error:
                self._respond(protocol.error_response(error))
            except ServerError:
                return

    def _respond(self, payload: Dict[str, Any]) -> None:
        try:
            protocol.write_message(self.wfile, payload)
        except ServerError:
            pass  # peer already gone


class _SocketServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = False


def _claim_socket(socket_path: str) -> None:
    """Remove a stale socket file; refuse to displace a live daemon."""
    if not os.path.exists(socket_path):
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.5)
        probe.connect(socket_path)
    except OSError:
        os.unlink(socket_path)  # dead leftover from an unclean exit
    else:
        raise ServerError(
            f"a daemon is already listening on {socket_path}; "
            f"stop it first or choose another --socket"
        )
    finally:
        probe.close()


class ServerDaemon:
    """The daemon: warm pool + store + design LRU behind a local socket.

    >>> daemon = ServerDaemon(ServerConfig(socket_path=sock))  # doctest: +SKIP
    >>> daemon.start()                                         # doctest: +SKIP
    >>> ... clients connect ...                                # doctest: +SKIP
    >>> daemon.shutdown(drain=True)                            # doctest: +SKIP

    ``serve_forever()`` wraps start/wait/shutdown and installs
    SIGTERM/SIGINT handlers (graceful drain) when running on the main
    thread — the ``repro serve`` entry point.
    """

    def __init__(self, config: ServerConfig, start_scheduler: bool = True) -> None:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise ServerError("repro.server requires Unix-domain sockets")
        self.config = config
        self.store = ResultStore(config.cache_dir)
        self.pool = WorkerPool(config.workers)
        self.designs = DesignCache(
            max_designs=config.max_designs, pack_index=config.pack_index
        )
        self.queue = JobQueue(
            max_depth=config.max_queue_depth,
            starvation_limit=config.starvation_limit,
            retry_after_s=config.retry_after_s,
        )
        self.started_at = time.time()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "warm_hits": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
        }
        self._start_scheduler = start_scheduler
        self._scheduler: Optional[threading.Thread] = None
        self._listener: Optional[threading.Thread] = None
        self._server: Optional[_SocketServer] = None
        self._lifecycle = threading.Lock()
        self._started = False
        self._closed = threading.Event()
        self._drain_on_shutdown = True

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and start the listener (and scheduler) threads."""
        with self._lifecycle:
            if self._started:
                raise ServerError("daemon already started")
            self._started = True
        _claim_socket(self.config.socket_path)
        socket_dir = os.path.dirname(os.path.abspath(self.config.socket_path))
        os.makedirs(socket_dir, exist_ok=True)
        self._server = _SocketServer(self.config.socket_path, _ConnectionHandler)
        self._server.repro_daemon = self  # type: ignore[attr-defined]
        self._listener = threading.Thread(
            target=self._server.serve_forever,
            name="repro-server-listener",
            daemon=True,
        )
        self._listener.start()
        if self._start_scheduler:
            self._scheduler = threading.Thread(
                target=self._scheduler_loop, name="repro-server-scheduler"
            )
            self._scheduler.start()
        logger.info(
            "repro daemon listening on %s (workers=%d, cache=%s)",
            self.config.socket_path,
            self.config.workers,
            self.config.cache_dir,
        )

    def serve_forever(self) -> None:
        """``start()``, then block until a shutdown request or signal."""
        if threading.current_thread() is threading.main_thread():
            signal.signal(signal.SIGTERM, self._on_signal)
            signal.signal(signal.SIGINT, self._on_signal)
        self.start()
        self._closed.wait()

    def wait_until_stopped(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon has fully shut down (True when it has)."""
        return self._closed.wait(timeout)

    def _on_signal(self, signum, _frame) -> None:  # pragma: no cover - signals
        logger.info("signal %d: draining and shutting down", signum)
        self.request_shutdown(drain=True)

    def request_shutdown(self, drain: bool = True) -> None:
        """Trigger an asynchronous shutdown (idempotent, non-blocking)."""
        self._drain_on_shutdown = drain
        threading.Thread(
            target=self.shutdown, kwargs={"drain": drain}, daemon=True
        ).start()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the daemon; with ``drain`` finish the admitted backlog first."""
        with self._lifecycle:
            if self._closed.is_set():
                return
            if not self._started:
                self._closed.set()
                self.pool.shutdown()
                self.store.close()
                return
            self._started = False
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        dropped = self.queue.close(drain=drain)
        if dropped:
            logger.info("shutdown cancelled %d queued job(s)", len(dropped))
        if self._scheduler is not None:
            self._scheduler.join(timeout=self.config.drain_timeout_s)
            if self._scheduler.is_alive():  # pragma: no cover - pathological
                logger.warning(
                    "scheduler did not drain within %.0fs; abandoning",
                    self.config.drain_timeout_s,
                )
        self.pool.shutdown()
        self.store.close()
        if os.path.exists(self.config.socket_path):
            try:
                os.unlink(self.config.socket_path)
            except OSError:  # pragma: no cover - racing unlink
                pass
        self._closed.set()
        logger.info("repro daemon stopped")

    # -- request dispatch (connection threads) --------------------------
    def dispatch(self, request: Dict[str, Any], stream) -> None:
        """Handle one parsed request, writing response line(s) to ``stream``."""
        self.counters["requests"] += 1
        op = request["op"]
        if op == "ping":
            protocol.write_message(stream, self._pong())
        elif op == "submit":
            self._handle_submit(request, stream)
        elif op == "status":
            protocol.write_message(stream, self._handle_status(request))
        elif op == "result":
            protocol.write_message(stream, self._handle_result(request))
        elif op == "cancel":
            record = self.queue.cancel(self._job_id_of(request))
            protocol.write_message(
                stream,
                {"ok": True, "event": "cancelled", "job_id": record.job_id,
                 "state": record.state},
            )
        elif op == "shutdown":
            drain = bool(request.get("drain", True))
            protocol.write_message(
                stream, {"ok": True, "event": "shutting-down", "drain": drain}
            )
            self.request_shutdown(drain=drain)

    def _pong(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "event": "pong",
            "pid": os.getpid(),
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_s": time.time() - self.started_at,
        }

    @staticmethod
    def _job_id_of(request: Dict[str, Any]) -> str:
        job_id = request.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ServerError(f'{request["op"]} requires a string "job_id"')
        return job_id

    def _handle_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if "job_id" in request:
            record = self.queue.get(self._job_id_of(request))
            if record is None:
                raise ServerError(f"unknown job id {request['job_id']!r}")
            return {"ok": True, "event": "status", "job": record.to_dict()}
        group = request.get("group", "")
        if not isinstance(group, str):
            raise ServerError('status "group" must be a string')
        return {
            "ok": True,
            "event": "status",
            "pid": os.getpid(),
            "uptime_s": time.time() - self.started_at,
            "workers": self.config.workers,
            "queue": self.queue.snapshot(),
            "counters": dict(self.counters),
            "store": {
                "entries": len(self.store),
                "hits": self.store.stats.hits,
                "misses": self.store.stats.misses,
                "puts": self.store.stats.puts,
                "hit_rate": self.store.stats.hit_rate,
            },
            "pool": dataclasses.asdict(self.pool.stats),
            "designs": self.designs.snapshot(),
            "jobs": self.queue.jobs(limit=100 if group else 20, group=group),
        }

    def _handle_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        record = self.queue.get(self._job_id_of(request))
        if record is None:
            raise ServerError(f"unknown job id {request['job_id']!r}")
        if record.state not in TERMINAL_STATES:
            return {
                "ok": True,
                "event": "status",
                "job_id": record.job_id,
                "state": record.state,
            }
        if record.state == DONE:
            return {
                "ok": True,
                "event": "result",
                "job_id": record.job_id,
                "state": record.state,
                **(record.result or {}),
            }
        return protocol.error_response(
            ServerError(record.error or record.state),
            job_id=record.job_id,
            state=record.state,
        )

    # -- submit path ----------------------------------------------------
    def _handle_submit(self, request: Dict[str, Any], stream) -> None:
        record = self._build_record(request)
        warm = self._warm_probe(record)
        if warm is not None:
            self.counters["warm_hits"] += 1
            if trace.enabled():
                trace.counter("server.warm_hits").add(1)
            record.state = DONE
            record.cached = True
            record.finished_at = time.time()
            record.result = warm
            self.queue.remember(record)
            protocol.write_message(stream, record.publish("result", **warm))
            return

        streaming = bool(request.get("stream", True))
        subscriber = record.subscribe() if streaming else None
        try:
            position = self.queue.submit(record)
        except ServerBusy:
            if subscriber is not None:
                record.unsubscribe(subscriber)
            raise
        if trace.enabled():
            trace.gauge("server.queue_depth").set(self.queue.depth())
        record.publish(
            "queued",
            position=position,
            priority=record.priority,
            fingerprint=record.fingerprint,
        )
        if subscriber is None:
            protocol.write_message(
                stream,
                {"ok": True, "event": "queued", "job_id": record.job_id,
                 "state": QUEUED, "position": position,
                 "fingerprint": record.fingerprint},
            )
            return
        try:
            while True:
                event = subscriber.get()
                protocol.write_message(stream, event)
                if event["event"] in ("result", "error", "cancelled"):
                    return
        finally:
            record.unsubscribe(subscriber)

    def _build_record(self, request: Dict[str, Any]) -> JobRecord:
        """Validate a submit request and resolve its design + fingerprint."""
        kind = request.get("kind", "detect")
        if kind not in protocol.JOB_KINDS:
            raise ServerError(
                f"unknown job kind {kind!r}; expected one of "
                f"{protocol.JOB_KINDS}"
            )
        design = request.get("design")
        if not isinstance(design, str) or not design:
            raise ServerError('submit requires a string "design" path')
        priority = request.get("priority", DEFAULT_PRIORITY)
        label = request.get("label") or os.path.basename(design)
        group = request.get("group", "")
        if not isinstance(group, str):
            raise ServerError('submit "group" must be a string')
        netlist, design_fp = self.designs.get(design)

        delta_data = request.get("delta")
        if delta_data is not None and kind != "detect":
            raise ServerError('"delta" submits must have kind "detect"')

        if kind == "detect":
            config_data = request.get("config", {})
            if not isinstance(config_data, dict):
                raise ServerError('submit "config" must be a JSON object')
            config = config_from_dict(config_data)
            delta = None
            base_netlist = None
            if delta_data is not None:
                # Delta submit: "design" is the (usually warm) base; the
                # edited netlist is reconstructed daemon-side so the client
                # ships a few KB of JSON instead of the whole design.
                from repro.incremental import NetlistDelta, apply_delta

                if not isinstance(delta_data, dict):
                    raise ServerError('submit "delta" must be a JSON object')
                try:
                    delta = NetlistDelta.from_dict(delta_data)
                except ReproError as error:
                    raise ServerError(f"bad delta payload: {error}") from error
                base_netlist = netlist
                netlist = apply_delta(base_netlist, delta)
                design_fp = fingerprint_netlist(netlist)
            fingerprint = job_fingerprint(
                netlist, config, netlist_fingerprint=design_fp
            )
            record = JobRecord(
                kind=kind,
                priority=priority,
                request=request,
                label=label,
                fingerprint=fingerprint,
                group=group,
            )
            record.context = (netlist, config)  # type: ignore[attr-defined]
            if delta is not None:
                record.delta_context = (base_netlist, delta)  # type: ignore[attr-defined]
            return record

        stages_data = request.get("stages")
        if not isinstance(stages_data, list) or not stages_data:
            raise ServerError('flow submit requires a non-empty "stages" list')
        flow = Flow(
            [stage_from_entry(entry) for entry in stages_data],
            name=request.get("label", "flow"),
        )
        # The flow's identity is the final stage's chained fingerprint.
        chain = [design_fp]
        for stage in flow.stages:
            chain.append(
                stage_fingerprint(stage.name, stage.config_fingerprint(), chain)
            )
        record = JobRecord(
            kind=kind,
            priority=priority,
            request=request,
            label=label,
            fingerprint=chain[-1],
            group=group,
        )
        record.context = (netlist, flow, chain[1:])  # type: ignore[attr-defined]
        return record

    def _warm_probe(self, record: JobRecord) -> Optional[Dict[str, Any]]:
        """Answer a submit straight from the store when every row is warm.

        This is the daemon's fast path: no queueing, no scheduling, no
        process wake-up — a warm repeat request costs one (or, for flows,
        one-per-stage) SQLite primary-key lookup plus JSON decode.
        """
        began = trace.clock()
        if record.kind == "detect":
            netlist, config = record.context  # type: ignore[attr-defined]
            if config.seed is None:
                return None  # nondeterministic: never cached
            if record.fingerprint not in self.store:
                return None
            report = self.store.get(record.fingerprint)
            if report is None:
                return None  # stale row: evicted, take the cold path
            if report.config != config:
                report = dataclasses.replace(report, config=config)
            payload = {
                "report": report_to_dict(report),
                "fingerprint": record.fingerprint,
                "cached": True,
                "runtime_seconds": trace.clock() - began,
                "attempts": 0,
            }
        else:
            netlist, flow, stage_fps = record.context  # type: ignore[attr-defined]
            if not flow.deterministic:
                return None
            if not all(fp in self.store for fp in stage_fps):
                return None
            # No pool: a fully-warm flow computes nothing, and the shared
            # pool is the scheduler thread's — the rare stale-row recompute
            # runs in-process rather than racing on it.
            outcome = flow.run(netlist, store=self.store, use_cache=True)
            if not outcome.all_cached:
                # A row went stale between the probe and the run; the work
                # was recomputed (and re-cached) inline — still a result.
                logger.info("warm flow probe for %s partially recomputed",
                            record.label)
            payload = {
                "stages": [result.to_row() for result in outcome.results],
                "fingerprint": record.fingerprint,
                "cached": outcome.all_cached,
                "runtime_seconds": trace.clock() - began,
            }
        if trace.enabled():
            trace.histogram("server.warm_s").observe(payload["runtime_seconds"])
        return payload

    # -- scheduler (one thread) -----------------------------------------
    def _scheduler_loop(self) -> None:
        while True:
            record = self.queue.next_job()
            if record is None:
                return
            if record.state != QUEUED:  # cancelled in the dispatch race
                continue
            record.state = RUNNING
            record.started_at = time.time()
            wait_s = record.started_at - record.created_at
            if trace.enabled():
                trace.histogram(f"server.wait_s.{record.priority}").observe(wait_s)
                trace.gauge("server.queue_depth").set(self.queue.depth())
            record.publish("started", wait_s=wait_s)
            with trace.span(
                "server.job",
                kind=record.kind,
                priority=record.priority,
                label=record.label,
                fingerprint=record.fingerprint[:12],
            ) as job_span:
                try:
                    payload = self._execute(record)
                except ReproError as error:
                    self._finish_failed(record, str(error))
                    job_span.set(outcome="failed")
                except Exception as error:  # never kill the scheduler
                    logger.exception("job %s crashed", record.job_id)
                    self._finish_failed(
                        record, f"{type(error).__name__}: {error}"
                    )
                    job_span.set(outcome="failed")
                else:
                    record.state = DONE
                    record.finished_at = time.time()
                    record.result = payload
                    self.counters["done"] += 1
                    if trace.enabled():
                        trace.counter(f"server.done.{record.priority}").add(1)
                    job_span.set(outcome="done", cache="hit" if record.cached
                                 else "run")
                    record.publish("result", **payload)

    def _finish_failed(self, record: JobRecord, error: str) -> None:
        record.state = FAILED
        record.finished_at = time.time()
        record.error = error
        self.counters["failed"] += 1
        if trace.enabled():
            trace.counter("server.failed").add(1)
        record.publish("error", error=error)

    def _execute(self, record: JobRecord) -> Dict[str, Any]:
        if record.kind == "detect":
            return self._execute_detect(record)
        netlist, flow, _ = record.context  # type: ignore[attr-defined]
        outcome = flow.run(
            netlist,
            store=self.store,
            use_cache=True,
            pool=self.pool,
            progress=lambda result: record.publish(
                "progress",
                stage=result.stage,
                cache=result.cache_label,
                runtime_seconds=result.runtime_seconds,
            ),
        )
        record.cached = outcome.all_cached
        return {
            "stages": [result.to_row() for result in outcome.results],
            "fingerprint": record.fingerprint,
            "cached": outcome.all_cached,
            "runtime_seconds": outcome.runtime_seconds,
        }

    def _execute_detect(self, record: JobRecord) -> Dict[str, Any]:
        """Run one detect job through the incremental engine.

        Every deterministic detection persists its seed trace and advances
        the per-config head pointer, so a later delta submit (or a plain
        submit of an edited design) is answered by patching instead of
        recomputing.  Delta submits carry their base netlist explicitly;
        plain submits fall back to the head pointer.
        """
        from repro.incremental import detect_with_reuse

        netlist, config = record.context  # type: ignore[attr-defined]
        base_netlist, delta = getattr(record, "delta_context", (None, None))
        try:
            result = detect_with_reuse(
                netlist,
                config,
                self.store,
                base=base_netlist,
                delta=delta,
                pool=self.pool,
                pool_key=record.fingerprint,
            )
        except ReproError as error:
            raise ServerError(str(error)) from error
        record.cached = result.mode == "cached"
        payload = {
            "report": report_to_dict(result.report),
            "fingerprint": record.fingerprint,
            "cached": record.cached,
            "runtime_seconds": result.report.runtime_seconds,
            "attempts": 0 if record.cached else 1,
        }
        if result.mode != "cached":
            payload["incremental"] = result.provenance()
        return payload


__all__ = ["DEFAULT_SOCKET", "DesignCache", "ServerConfig", "ServerDaemon"]
