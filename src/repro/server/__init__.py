"""repro.server — the long-lived detection daemon and its client.

One warm daemon (:class:`~repro.server.daemon.ServerDaemon`) owns the
worker pool, the result store and an LRU of loaded designs, and serves
detect/flow jobs over a local Unix socket: a bounded priority queue with
explicit backpressure, starvation-free scheduling, streamed JSONL
lifecycle events and graceful drain on shutdown.  Talk to it with
:class:`~repro.server.client.Client` or the ``repro serve`` / ``repro
submit`` / ``repro status`` CLI.
"""

from repro.server.client import Client
from repro.server.daemon import (
    DEFAULT_SOCKET,
    DesignCache,
    ServerConfig,
    ServerDaemon,
)
from repro.server.queue import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    JobQueue,
    JobRecord,
)

__all__ = [
    "Client",
    "DEFAULT_PRIORITY",
    "DEFAULT_SOCKET",
    "DesignCache",
    "JobQueue",
    "JobRecord",
    "PRIORITIES",
    "ServerConfig",
    "ServerDaemon",
]
