"""Priority job queue of the detection daemon.

The queue is the daemon's admission-control and scheduling core:

* **Priority classes.**  Jobs carry one of three classes —
  ``interactive`` > ``batch`` > ``sweep`` — and the dispatcher serves the
  highest non-empty class first, FIFO within a class.
* **Starvation freedom.**  Strict priority alone would let a stream of
  interactive jobs starve a queued sweep forever.  Every dispatch that
  passes over a non-empty class increments that class's *skip counter*;
  once a class has been skipped ``starvation_limit`` times it is served
  next regardless of priority.  The scheme is count-based (no clocks), so
  scheduling order is deterministic and unit-testable: under sustained
  interactive load a sweep job is dispatched at least once every
  ``starvation_limit + 1`` dispatches.
* **Bounded depth + explicit backpressure.**  ``submit`` on a full queue
  raises :class:`~repro.errors.ServerBusy` carrying a ``retry_after_s``
  hint scaled by the backlog — the daemon turns that into a ``rejected``
  protocol response instead of letting latency grow without bound.
* **Job lifecycle.**  Every job moves ``queued -> running ->
  done | failed | cancelled``; records stay queryable by job id after
  completion (bounded history) and publish their state transitions as
  events to any number of stream subscribers.

The queue is thread-safe: connection threads submit/cancel/query while the
scheduler thread blocks in :meth:`JobQueue.next_job`.
"""

from __future__ import annotations

import itertools
import queue as _stdlib_queue
import threading
import time
import uuid
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional

from repro.errors import ServerBusy, ServerError

#: Priority classes, best-served first.
PRIORITIES = ("interactive", "batch", "sweep")

#: Default priority class of a submit request that names none.
DEFAULT_PRIORITY = "batch"

# Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


def validate_priority(priority: str) -> str:
    """Return ``priority`` or raise :class:`ServerError` naming the classes."""
    if priority not in PRIORITIES:
        raise ServerError(
            f"unknown priority {priority!r}; expected one of {PRIORITIES}"
        )
    return priority


class JobRecord:
    """One job owned by the daemon: request, lifecycle state, event stream.

    Attributes:
        job_id: server-assigned short hex id.
        kind: ``"detect"`` or ``"flow"``.
        priority: one of :data:`PRIORITIES`.
        label: caller-facing name (defaults to the design path).
        group: caller-assigned job-group tag (e.g. one sharded sweep's
            ``sweep/shard-3``); empty for ungrouped jobs.  Status queries
            can filter the recent-jobs listing by it.
        request: the parsed submit request (design path, config, ...).
        state: current lifecycle state.
        fingerprint: content fingerprint, set once the design is loaded.
        cached: True when the result was answered from the store.
        error: terminal error string when ``state == "failed"``.
        result: terminal result payload (the ``result`` event's body).
    """

    def __init__(
        self,
        kind: str,
        priority: str,
        request: Dict[str, Any],
        label: str = "",
        fingerprint: str = "",
        group: str = "",
    ) -> None:
        self.job_id = uuid.uuid4().hex[:12]
        self.kind = kind
        self.priority = validate_priority(priority)
        self.label = label
        self.group = group
        self.request = request
        self.fingerprint = fingerprint
        self.state = QUEUED
        self.cached = False
        self.error: Optional[str] = None
        self.result: Optional[Dict[str, Any]] = None
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._subscribers: List[_stdlib_queue.SimpleQueue] = []

    # -- event streaming ------------------------------------------------
    def publish(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record one lifecycle event and fan it out to all subscribers."""
        payload = {
            "ok": True,
            "event": event,
            "job_id": self.job_id,
            "state": self.state,
            **fields,
        }
        with self._lock:
            self._events.append(payload)
            for subscriber in self._subscribers:
                subscriber.put(payload)
        return payload

    def subscribe(self) -> _stdlib_queue.SimpleQueue:
        """A queue primed with the event history, then fed live events.

        Late subscribers (a client that reconnects to stream a job it
        submitted earlier) replay everything already published, so the
        terminal event is never missed.
        """
        subscriber: _stdlib_queue.SimpleQueue = _stdlib_queue.SimpleQueue()
        with self._lock:
            for event in self._events:
                subscriber.put(event)
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: _stdlib_queue.SimpleQueue) -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    # -- views ----------------------------------------------------------
    @property
    def wait_seconds(self) -> float:
        """Queue wait: submit to dispatch (or to now while still queued)."""
        reference = self.started_at or self.finished_at or time.time()
        return max(0.0, reference - self.created_at)

    @property
    def run_seconds(self) -> float:
        """Execution time: dispatch to completion (0.0 before dispatch)."""
        if self.started_at is None:
            return 0.0
        return max(0.0, (self.finished_at or time.time()) - self.started_at)

    def to_dict(self) -> Dict[str, Any]:
        """Status-query form of this record (no result payload)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "priority": self.priority,
            "label": self.label,
            "group": self.group,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "error": self.error,
            "created_at": self.created_at,
            "wait_s": self.wait_seconds,
            "run_s": self.run_seconds,
        }


class JobQueue:
    """Bounded, priority-classed, starvation-free job queue.

    Args:
        max_depth: queued (not yet dispatched) jobs admitted before
            ``submit`` rejects with :class:`ServerBusy`.
        starvation_limit: dispatches a non-empty class may be passed over
            before it is forcibly served next.
        retry_after_s: base of the backpressure hint; the advertised delay
            grows linearly with the backlog.
        history: completed records retained for status queries.
    """

    def __init__(
        self,
        max_depth: int = 64,
        starvation_limit: int = 8,
        retry_after_s: float = 0.25,
        history: int = 256,
    ) -> None:
        if max_depth < 1:
            raise ServerError("JobQueue max_depth must be >= 1")
        if starvation_limit < 1:
            raise ServerError("JobQueue starvation_limit must be >= 1")
        if retry_after_s <= 0:
            raise ServerError("JobQueue retry_after_s must be positive")
        self.max_depth = max_depth
        self.starvation_limit = starvation_limit
        self.retry_after_s = retry_after_s
        self.history = history
        self._condition = threading.Condition()
        self._queues: Dict[str, deque] = {p: deque() for p in PRIORITIES}
        self._skipped: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self._records: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._closed = False
        self._draining = False
        self.submitted = 0
        self.dispatched: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self.rejected = 0
        self.cancelled = 0

    # -- admission ------------------------------------------------------
    def submit(self, record: JobRecord) -> int:
        """Admit ``record``; returns its queue position (1-based).

        Raises :class:`ServerBusy` when the queue is at ``max_depth`` and
        :class:`ServerError` once the queue is closed to new work.
        """
        with self._condition:
            if self._closed:
                raise ServerError("daemon is shutting down; not accepting jobs")
            depth = self.depth()
            if depth >= self.max_depth:
                self.rejected += 1
                retry_after = self.retry_after_s * (1.0 + depth / self.max_depth)
                raise ServerBusy(
                    f"job queue full ({depth}/{self.max_depth} queued); "
                    f"retry in {retry_after:.2f}s",
                    retry_after_s=retry_after,
                )
            self._queues[record.priority].append(record)
            self._remember(record)
            self.submitted += 1
            position = depth + 1
            self._condition.notify()
        return position

    def remember(self, record: JobRecord) -> None:
        """Make a record queryable by job id without queueing it.

        The daemon's warm path answers a submit inline from the store; the
        job never enters the backlog, but its id must still resolve for
        ``status``/``result`` queries.
        """
        with self._condition:
            self._remember(record)

    def _remember(self, record: JobRecord) -> None:
        self._records[record.job_id] = record
        # Evict oldest *terminal* records beyond the history bound; live
        # jobs are never dropped no matter how old.
        while len(self._records) > self.history:
            for job_id, old in self._records.items():
                if old.state in TERMINAL_STATES:
                    del self._records[job_id]
                    break
            else:
                break

    # -- dispatch -------------------------------------------------------
    def _pick_class(self) -> Optional[str]:
        """The class to serve next, or ``None`` when nothing is queued."""
        candidates = [p for p in PRIORITIES if self._queues[p]]
        if not candidates:
            return None
        overdue = [
            p for p in candidates if self._skipped[p] >= self.starvation_limit
        ]
        if overdue:
            # Most-starved first; ties go to the higher class.
            chosen = max(overdue, key=lambda p: self._skipped[p])
        else:
            chosen = candidates[0]  # PRIORITIES is ordered best-first
        for p in candidates:
            if p != chosen:
                self._skipped[p] += 1
        self._skipped[chosen] = 0
        return chosen

    def next_job(self, timeout: Optional[float] = None) -> Optional[JobRecord]:
        """Block until a job is available; ``None`` on timeout or once the
        queue is closed and (when draining) empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                chosen = self._pick_class()
                if chosen is not None:
                    record = self._queues[chosen].popleft()
                    self.dispatched[chosen] += 1
                    return record
                if self._closed:
                    return None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._condition.wait(remaining)
                else:
                    self._condition.wait()

    # -- control --------------------------------------------------------
    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a *queued* job; raises :class:`ServerError` otherwise.

        Running jobs are not interruptible (a seed batch in flight inside
        the worker pool cannot be unwound safely); terminal jobs are
        already decided.
        """
        with self._condition:
            record = self._records.get(job_id)
            if record is None:
                raise ServerError(f"unknown job id {job_id!r}")
            if record.state != QUEUED:
                raise ServerError(
                    f"job {job_id} is {record.state}; only queued jobs "
                    f"can be cancelled"
                )
            self._queues[record.priority].remove(record)
            record.state = CANCELLED
            record.finished_at = time.time()
            self.cancelled += 1
        record.publish("cancelled")
        return record

    def close(self, drain: bool = True) -> List[JobRecord]:
        """Stop admitting jobs; returns the records cancelled (if any).

        With ``drain=True`` (graceful shutdown) everything already queued
        stays dispatchable — :meth:`next_job` keeps serving until the
        backlog is empty, then returns ``None``.  With ``drain=False`` the
        backlog is cancelled immediately.
        """
        dropped: List[JobRecord] = []
        with self._condition:
            self._closed = True
            self._draining = drain
            if not drain:
                for backlog in self._queues.values():
                    while backlog:
                        record = backlog.popleft()
                        record.state = CANCELLED
                        record.finished_at = time.time()
                        self.cancelled += 1
                        dropped.append(record)
            self._condition.notify_all()
        for record in dropped:
            record.publish("cancelled", reason="shutdown")
        return dropped

    # -- views ----------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._condition:
            return self._records.get(job_id)

    def depth(self) -> int:
        """Jobs currently queued (running/finished jobs excluded)."""
        return sum(len(backlog) for backlog in self._queues.values())

    def depths(self) -> Dict[str, int]:
        """Queued jobs per priority class."""
        with self._condition:
            return {p: len(self._queues[p]) for p in PRIORITIES}

    def snapshot(self) -> Dict[str, Any]:
        """Queue-level stats for the daemon's status response."""
        with self._condition:
            states: Dict[str, int] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
            return {
                "depth": self.depth(),
                "depths": {p: len(self._queues[p]) for p in PRIORITIES},
                "max_depth": self.max_depth,
                "submitted": self.submitted,
                "dispatched": dict(self.dispatched),
                "rejected": self.rejected,
                "cancelled": self.cancelled,
                "states": states,
                "closed": self._closed,
            }

    def jobs(self, limit: int = 50, group: str = "") -> List[Dict[str, Any]]:
        """Most recent job records (newest first); optionally one group's."""
        with self._condition:
            records = reversed(self._records.values())
            if group:
                records = (r for r in records if r.group == group)
            recent = list(itertools.islice(records, limit))
        return [record.to_dict() for record in recent]


__all__ = [
    "CANCELLED",
    "DEFAULT_PRIORITY",
    "DONE",
    "FAILED",
    "JobQueue",
    "JobRecord",
    "PRIORITIES",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "validate_priority",
]
