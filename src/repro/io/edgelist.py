"""Plain edge-list graph IO.

Lines are ``u v`` cell-name pairs; each line becomes a 2-pin net.  Handy for
running the finder on graph datasets and for interop with graph tools
(networkx round-trips through this format).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ParseError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist


def read_edgelist(path: str) -> Netlist:
    """Read a 2-pin-net netlist from an edge-list file."""
    builder = NetlistBuilder()
    known: Dict[str, int] = {}

    def cell_of(name: str) -> int:
        if name not in known:
            known[name] = builder.add_cell(name=name)
        return known[name]

    edge_serial = 0
    with open(path) as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ParseError(f"edge line needs two endpoints: {line!r}", path, line_no)
            a, b = cell_of(parts[0]), cell_of(parts[1])
            if a == b:
                continue  # self-loops carry no connectivity
            builder.add_net(f"e{edge_serial}", [a, b])
            edge_serial += 1
    return builder.build()


def write_edgelist(netlist: Netlist, path: str) -> None:
    """Write every net as a clique of name pairs (2-pin nets verbatim)."""
    with open(path, "w") as handle:
        for net in range(netlist.num_nets):
            cells = netlist.cells_of_net(net)
            for i, a in enumerate(cells):
                for b in cells[i + 1 :]:
                    handle.write(f"{netlist.cell_name(a)} {netlist.cell_name(b)}\n")
