"""UCLA Bookshelf reader/writer (the ISPD 2005/2006 benchmark format).

Supported files:

* ``.aux``   — index file naming the others;
* ``.nodes`` — cells with width/height, ``terminal`` marks fixed pads;
* ``.nets``  — nets with pin lists (pin offsets are parsed and ignored — the
  hypergraph model needs membership only);
* ``.pl``    — optional placement (returned as a coordinate dict).

Only the subset of Bookshelf exercised by the ISPD placement benchmarks is
implemented; ``.wts``/``.scl`` files are accepted in the ``.aux`` line and
skipped.  When the real ISPD benchmarks are available, ``read_bookshelf``
lets every experiment in this package run on them unchanged.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ParseError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist


def read_bookshelf(aux_path: str) -> Tuple[Netlist, Dict[int, Tuple[float, float]]]:
    """Read a Bookshelf design from its ``.aux`` file.

    Returns ``(netlist, placement)`` where ``placement`` maps cell index to
    ``(x, y)`` (empty when no ``.pl`` file is listed or present).
    """
    directory = os.path.dirname(os.path.abspath(aux_path))
    nodes_path = nets_path = pl_path = None
    with open(aux_path) as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            # "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl"
            parts = line.split(":", 1)
            names = (parts[1] if len(parts) == 2 else parts[0]).split()
            for name in names:
                lower = name.lower()
                if lower.endswith(".nodes"):
                    nodes_path = os.path.join(directory, name)
                elif lower.endswith(".nets"):
                    nets_path = os.path.join(directory, name)
                elif lower.endswith(".pl"):
                    pl_path = os.path.join(directory, name)
    if nodes_path is None or nets_path is None:
        raise ParseError("aux file names no .nodes/.nets pair", aux_path)

    builder = NetlistBuilder()
    _read_nodes(nodes_path, builder)
    _read_nets(nets_path, builder)
    netlist = builder.build(drop_singleton_nets=True)

    placement: Dict[int, Tuple[float, float]] = {}
    if pl_path and os.path.exists(pl_path):
        placement = _read_pl(pl_path, netlist)
    return netlist, placement


def _content_lines(path: str) -> Iterator[Tuple[int, str]]:
    """Yield (line_number, stripped_line), skipping comments/headers/blanks."""
    with open(path) as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.split("#", 1)[0].strip()
            if not line or line.startswith("UCLA"):
                continue
            yield line_no, line


def _read_nodes(path: str, builder: NetlistBuilder) -> None:
    for line_no, line in _content_lines(path):
        if line.startswith(("NumNodes", "NumTerminals")):
            continue
        parts = line.split()
        name = parts[0]
        try:
            width = float(parts[1]) if len(parts) > 1 else 1.0
            height = float(parts[2]) if len(parts) > 2 else 1.0
        except ValueError:
            raise ParseError(f"bad node line {line!r}", path, line_no) from None
        fixed = "terminal" in (p.lower() for p in parts[3:])
        area = max(width * height, 1e-9)
        builder.add_cell(name=name, area=area, fixed=fixed)


def _read_nets(path: str, builder: NetlistBuilder) -> None:
    pending: Optional[Tuple[str, int]] = None  # (net name, pins expected)
    members: List[int] = []
    net_serial = 0

    def flush() -> None:
        nonlocal pending, members, net_serial
        if pending is not None and members:
            builder.add_net(pending[0], members)
        pending = None
        members = []

    for line_no, line in _content_lines(path):
        if line.startswith(("NumNets", "NumPins")):
            continue
        if line.startswith("NetDegree"):
            flush()
            parts = line.replace(":", " ").split()
            try:
                degree = int(parts[1])
            except (IndexError, ValueError):
                raise ParseError(f"bad NetDegree line {line!r}", path, line_no) from None
            name = parts[2] if len(parts) > 2 else f"net{net_serial}"
            net_serial += 1
            pending = (name, degree)
            continue
        if pending is None:
            raise ParseError(f"pin line outside a net: {line!r}", path, line_no)
        node_name = line.split()[0]
        try:
            cell = builder.cell_index(node_name)
        except Exception:
            raise ParseError(f"unknown node {node_name!r}", path, line_no) from None
        if cell not in members:
            members.append(cell)
    flush()


def _read_pl(path: str, netlist: Netlist) -> Dict[int, Tuple[float, float]]:
    placement: Dict[int, Tuple[float, float]] = {}
    for line_no, line in _content_lines(path):
        parts = line.split()
        if len(parts) < 3:
            continue
        try:
            cell = netlist.cell_index(parts[0])
        except Exception:
            continue  # .pl may mention filler cells absent from .nodes
        try:
            placement[cell] = (float(parts[1]), float(parts[2]))
        except ValueError:
            raise ParseError(f"bad placement line {line!r}", path, line_no) from None
    return placement


def write_bookshelf(
    netlist: Netlist,
    directory: str,
    design: str,
    placement: Optional[Dict[int, Tuple[float, float]]] = None,
) -> str:
    """Write ``netlist`` as Bookshelf files; returns the ``.aux`` path."""
    os.makedirs(directory, exist_ok=True)
    nodes_name, nets_name, pl_name = (
        f"{design}.nodes",
        f"{design}.nets",
        f"{design}.pl",
    )

    with open(os.path.join(directory, nodes_name), "w") as handle:
        handle.write("UCLA nodes 1.0\n")
        handle.write(f"NumNodes : {netlist.num_cells}\n")
        terminals = sum(1 for c in range(netlist.num_cells) if netlist.cell_is_fixed(c))
        handle.write(f"NumTerminals : {terminals}\n")
        for cell in range(netlist.num_cells):
            width = netlist.cell_area(cell)
            suffix = " terminal" if netlist.cell_is_fixed(cell) else ""
            handle.write(f"  {netlist.cell_name(cell)} {width:g} 1{suffix}\n")

    with open(os.path.join(directory, nets_name), "w") as handle:
        handle.write("UCLA nets 1.0\n")
        handle.write(f"NumNets : {netlist.num_nets}\n")
        handle.write(f"NumPins : {netlist.num_incidences}\n")
        for net in range(netlist.num_nets):
            cells = netlist.cells_of_net(net)
            handle.write(f"NetDegree : {len(cells)} {netlist.net_name(net)}\n")
            for cell in cells:
                handle.write(f"  {netlist.cell_name(cell)} I : 0 0\n")

    if placement is not None:
        with open(os.path.join(directory, pl_name), "w") as handle:
            handle.write("UCLA pl 1.0\n")
            for cell in range(netlist.num_cells):
                x, y = placement.get(cell, (0.0, 0.0))
                handle.write(f"  {netlist.cell_name(cell)} {x:.4f} {y:.4f} : N\n")

    aux_path = os.path.join(directory, f"{design}.aux")
    with open(aux_path, "w") as handle:
        files = f"{nodes_name} {nets_name}"
        if placement is not None:
            files += f" {pl_name}"
        handle.write(f"RowBasedPlacement : {files}\n")
    return aux_path
