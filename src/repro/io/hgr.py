"""hMETIS-style hypergraph files (``.hgr``).

Header line: ``num_nets num_cells``.  Each following line lists one net's
member cells as 1-based indices.  This is the lingua franca of hypergraph
partitioning tools and a compact way to persist generated testcases.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist


def read_hgr(path: str) -> Netlist:
    """Read a netlist from an hMETIS hypergraph file."""
    with open(path) as handle:
        lines = [
            (line_no, line.split("%", 1)[0].strip())
            for line_no, line in enumerate(handle, 1)
        ]
    lines = [(n, l) for n, l in lines if l]
    if not lines:
        raise ParseError("empty hgr file", path)

    header_no, header = lines[0]
    parts = header.split()
    if len(parts) < 2:
        raise ParseError(f"bad header {header!r}", path, header_no)
    try:
        num_nets, num_cells = int(parts[0]), int(parts[1])
    except ValueError:
        raise ParseError(f"bad header {header!r}", path, header_no) from None

    builder = NetlistBuilder()
    builder.add_cells(num_cells, prefix="v")
    body = lines[1:]
    if len(body) != num_nets:
        raise ParseError(
            f"header promises {num_nets} nets, file has {len(body)}", path, header_no
        )
    for index, (line_no, line) in enumerate(body):
        try:
            members = [int(token) - 1 for token in line.split()]
        except ValueError:
            raise ParseError(f"bad net line {line!r}", path, line_no) from None
        if any(not 0 <= m < num_cells for m in members):
            raise ParseError(f"cell index out of range in {line!r}", path, line_no)
        builder.add_net(f"n{index}", members)
    return builder.build()


def write_hgr(netlist: Netlist, path: str) -> None:
    """Write ``netlist`` as an hMETIS hypergraph file."""
    with open(path, "w") as handle:
        handle.write(f"{netlist.num_nets} {netlist.num_cells}\n")
        for net in range(netlist.num_nets):
            members = " ".join(str(c + 1) for c in netlist.cells_of_net(net))
            handle.write(f"{members}\n")
