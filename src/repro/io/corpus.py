"""Pack-ahead corpora: pre-pack a manifest of designs for mmap serving.

``repro pack --out-dir packed/ manifest.json`` converts every design named
by a manifest into the binary ``.nla`` pack format once, ahead of time, and
writes a ``pack_index.json`` mapping each *source* path to its pack file
plus the source's ``(mtime_ns, size)`` stat at pack time.  A daemon started
with ``--pack-index packed/`` consults that index on every design load: a
request naming the original text design is served by mmap-loading the
pre-packed file instead of re-parsing text — provided the source file is
stat-identical to what was packed (a touched source falls back to a fresh
parse, never to a stale pack).

Packing is idempotent: a design whose pack file exists and whose source
stat matches the index entry is skipped on re-run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ParseError
from repro.io.binfmt import PACKED_EXTENSION, read_header
from repro.utils.jsonio import read_json_file

#: Index file written next to the pack files.
PACK_INDEX_NAME = "pack_index.json"

#: Index schema version.
PACK_INDEX_VERSION = 1


def _stat_signature(path: str) -> Tuple[int, int]:
    stat = os.stat(path)
    return stat.st_mtime_ns, stat.st_size


@dataclass(frozen=True)
class PackedEntry:
    """One corpus member: a source design and its pre-packed twin."""

    source: str
    pack_path: str
    fingerprint: str
    mtime_ns: int
    size: int
    packed: bool  # False when an up-to-date pack was reused

    def matches(self, path: str) -> bool:
        """True when ``path`` still stats exactly as it did at pack time."""
        try:
            return _stat_signature(path) == (self.mtime_ns, self.size)
        except OSError:
            return False


def corpus_designs_from_manifest(data: Any, base_dir: str) -> List[str]:
    """Design paths named by any of the repo's manifest dialects.

    Accepts ``{"designs": [...]}`` (sweep/flow manifests), ``{"jobs":
    [{"design": ...}, ...]}`` (batch manifests) or a bare JSON array of
    paths.  Paths resolve against ``base_dir`` and duplicates collapse.
    """
    if isinstance(data, dict):
        if isinstance(data.get("designs"), list):
            raw = data["designs"]
        elif isinstance(data.get("jobs"), list):
            raw = [
                entry.get("design")
                for entry in data["jobs"]
                if isinstance(entry, dict)
            ]
        else:
            raise ParseError(
                'pack manifest must carry "designs": [...] or "jobs": '
                '[{"design": ...}, ...]'
            )
    elif isinstance(data, list):
        raw = data
    else:
        raise ParseError("pack manifest must be a JSON object or array")

    designs: List[str] = []
    seen = set()
    for index, design in enumerate(raw):
        if not isinstance(design, str):
            raise ParseError(f"pack manifest design #{index} must be a string")
        path = design if os.path.isabs(design) else os.path.join(base_dir, design)
        path = os.path.abspath(path)
        if path not in seen:
            seen.add(path)
            designs.append(path)
    if not designs:
        raise ParseError("pack manifest names no designs")
    return designs


def _pack_name(source: str, taken: set) -> str:
    """Collision-free pack file name derived from the source stem."""
    stem = os.path.splitext(os.path.basename(source))[0]
    name = stem + PACKED_EXTENSION
    suffix = 2
    while name in taken:
        name = f"{stem}-{suffix}{PACKED_EXTENSION}"
        suffix += 1
    taken.add(name)
    return name


def pack_corpus(designs: Sequence[str], out_dir: str) -> List[PackedEntry]:
    """Pack every design into ``out_dir`` and (re)write the index.

    Designs already packed with a stat-matching index entry are reused,
    so re-running over a grown manifest only packs the new members.
    Returns one :class:`PackedEntry` per design, in manifest order.
    """
    from repro.io import pack_design  # local import: io.__init__ imports us

    os.makedirs(out_dir, exist_ok=True)
    previous = {
        entry.source: entry for entry in load_pack_index(out_dir).values()
    }
    entries: List[PackedEntry] = []
    taken: set = set()
    for source in designs:
        source = os.path.abspath(source)
        if not os.path.isfile(source):
            raise ParseError("design file does not exist", path=source)
        mtime_ns, size = _stat_signature(source)
        old = previous.get(source)
        if (
            old is not None
            and (old.mtime_ns, old.size) == (mtime_ns, size)
            and os.path.isfile(old.pack_path)
        ):
            taken.add(os.path.basename(old.pack_path))
            entries.append(
                PackedEntry(
                    source=source,
                    pack_path=old.pack_path,
                    fingerprint=old.fingerprint,
                    mtime_ns=mtime_ns,
                    size=size,
                    packed=False,
                )
            )
            continue
        pack_path = os.path.join(out_dir, _pack_name(source, taken))
        pack_design(source, pack_path)
        entries.append(
            PackedEntry(
                source=source,
                pack_path=os.path.abspath(pack_path),
                fingerprint=read_header(pack_path).fingerprint,
                mtime_ns=mtime_ns,
                size=size,
                packed=True,
            )
        )
    _write_index(out_dir, entries)
    return entries


def _write_index(out_dir: str, entries: Sequence[PackedEntry]) -> str:
    index_path = os.path.join(out_dir, PACK_INDEX_NAME)
    payload = {
        "version": PACK_INDEX_VERSION,
        "designs": {
            entry.source: {
                # Pack paths are stored relative to the index so a corpus
                # directory can be moved or mounted elsewhere wholesale.
                "pack": os.path.relpath(entry.pack_path, out_dir),
                "fingerprint": entry.fingerprint,
                "mtime_ns": entry.mtime_ns,
                "size": entry.size,
            }
            for entry in entries
        },
    }
    with open(index_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return index_path


def load_pack_index(path: str) -> Dict[str, PackedEntry]:
    """Load a corpus index: source abspath -> :class:`PackedEntry`.

    ``path`` may be the index file itself or the corpus directory holding
    it.  A missing index returns an empty mapping (a daemon started
    without a corpus just parses designs normally); a *malformed* one
    raises :class:`~repro.errors.ParseError`.
    """
    index_path = path
    if os.path.isdir(path):
        index_path = os.path.join(path, PACK_INDEX_NAME)
    if not os.path.exists(index_path):
        return {}
    data = read_json_file(index_path)
    if not isinstance(data, dict) or not isinstance(data.get("designs"), dict):
        raise ParseError(
            f'pack index must be {{"version": ..., "designs": {{...}}}}',
            path=index_path,
        )
    if data.get("version") != PACK_INDEX_VERSION:
        raise ParseError(
            f"unsupported pack index version {data.get('version')!r} "
            f"(expected {PACK_INDEX_VERSION})",
            path=index_path,
        )
    base_dir = os.path.dirname(os.path.abspath(index_path))
    entries: Dict[str, PackedEntry] = {}
    for source, fields in data["designs"].items():
        try:
            entries[os.path.abspath(source)] = PackedEntry(
                source=os.path.abspath(source),
                pack_path=os.path.join(base_dir, fields["pack"]),
                fingerprint=fields["fingerprint"],
                mtime_ns=int(fields["mtime_ns"]),
                size=int(fields["size"]),
                packed=True,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ParseError(
                f"malformed pack index entry for {source}: {error}",
                path=index_path,
            ) from error
    return entries


def pack_manifest(manifest_path: str, out_dir: str) -> List[PackedEntry]:
    """Pack every design named by ``manifest_path`` into ``out_dir``."""
    data = read_json_file(manifest_path)
    base_dir = os.path.dirname(os.path.abspath(manifest_path))
    return pack_corpus(corpus_designs_from_manifest(data, base_dir), out_dir)


__all__ = [
    "PACK_INDEX_NAME",
    "PACK_INDEX_VERSION",
    "PackedEntry",
    "corpus_designs_from_manifest",
    "load_pack_index",
    "pack_corpus",
    "pack_manifest",
]
