"""Versioned binary container for :class:`~repro.netlist.arrays.NetlistArrays`.

One on-disk layout serves every transport in the codebase: pack files on
disk (``.nla``, loaded zero-copy through ``mmap``), shared-memory segments
(:mod:`repro.service.pool` places one blob per design in
``multiprocessing.shared_memory`` and ships workers a tiny descriptor),
and the pickle fallback (:class:`~repro.netlist.backed.ArrayBackedNetlist`
pickles as this blob).

Layout (all integers little-endian)::

    offset 0   magic       8 bytes   b"REPRONLA"
    offset 8   version     uint32    FORMAT_VERSION
    offset 12  header_len  uint32    byte length of the JSON header
    offset 16  header      UTF-8 JSON (see below)
    ...        payload     sections, each 64-byte aligned, starting at
                           align64(16 + header_len)

The JSON header carries the design's SHA-256 content fingerprint (exactly
:func:`repro.service.fingerprint.fingerprint_netlist` of the packed
netlist), the cell/net/pin counts, the payload byte length and one entry
per section: ``{"dtype": "<i8", "shape": [n], "offset": o, "nbytes": b}``
with offsets relative to the payload base.  Everything cache-relevant —
the fingerprint in particular — is therefore readable from the header
alone, without faulting in a single payload page.

Sections are the nine :class:`NetlistArrays` fields plus four name-table
arrays (UTF-8 blob + int64 offsets for cell and net names):

========================  ========  =======================================
section                   dtype     shape
========================  ========  =======================================
``net_ptr``               ``<i8``   ``num_nets + 1``
``net_cells``             ``<i8``   ``num_incidences``
``cell_ptr``              ``<i8``   ``num_cells + 1``
``cell_nets``             ``<i8``   ``num_incidences``
``net_degrees``           ``<i8``   ``num_nets``
``pin_net``               ``<i8``   ``num_incidences``
``areas``                 ``<f8``   ``num_cells``
``pin_counts``            ``<i8``   ``num_cells``
``fixed_mask``            ``|b1``   ``num_cells``
``cell_name_offsets``     ``<i8``   ``num_cells + 1``
``cell_name_bytes``       ``|u1``   (total encoded cell-name bytes)
``net_name_offsets``      ``<i8``   ``num_nets + 1``
``net_name_bytes``        ``|u1``   (total encoded net-name bytes)
========================  ========  =======================================

Derived arrays (``net_degrees``, ``pin_net``) are stored rather than
recomputed so that *every* array a worker touches stays a view into the
shared buffer — recomputing them would cost O(pins) private memory per
process, exactly what this format exists to avoid.

All validation failures raise :class:`~repro.errors.ParseError` naming
the offending file and, where relevant, the expected magic/version.
"""

from __future__ import annotations

import json
import mmap
import struct
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import ParseError
from repro.netlist.arrays import NetlistArrays
from repro.netlist.backed import ArrayBackedNetlist, NameTable
from repro.netlist.hypergraph import Netlist

#: First 8 bytes of every pack file / shared-memory blob.
MAGIC = b"REPRONLA"

#: Bump on any layout change; readers reject other versions.
FORMAT_VERSION = 1

#: File extension registered with :func:`repro.io.load_design`.
PACKED_EXTENSION = ".nla"

_FIXED = struct.Struct("<8sII")  # magic, version, header_len
_ALIGN = 64

#: Required section name -> dtype string (also the serialization order).
SECTION_DTYPES = {
    "net_ptr": "<i8",
    "net_cells": "<i8",
    "cell_ptr": "<i8",
    "cell_nets": "<i8",
    "net_degrees": "<i8",
    "pin_net": "<i8",
    "areas": "<f8",
    "pin_counts": "<i8",
    "fixed_mask": "|b1",
    "cell_name_offsets": "<i8",
    "cell_name_bytes": "|u1",
    "net_name_offsets": "<i8",
    "net_name_bytes": "|u1",
}

_ARRAY_FIELDS = (
    "net_ptr",
    "net_cells",
    "cell_ptr",
    "cell_nets",
    "net_degrees",
    "pin_net",
    "areas",
    "pin_counts",
    "fixed_mask",
)


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class Section:
    """Location of one array inside the payload (offset is payload-relative)."""

    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class PackedHeader:
    """Parsed header of one pack blob — everything except the arrays.

    ``fingerprint`` is the design's content fingerprint
    (:func:`~repro.service.fingerprint.fingerprint_netlist`), stamped at
    pack time; reading it never materializes payload pages.
    """

    version: int
    fingerprint: str
    num_cells: int
    num_nets: int
    num_pins: int
    payload_base: int
    payload_bytes: int
    sections: Mapping[str, Section]

    @property
    def total_bytes(self) -> int:
        """Minimum valid blob size (header + payload)."""
        return self.payload_base + self.payload_bytes


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _section_arrays(netlist: Netlist) -> Dict[str, np.ndarray]:
    """The thirteen section arrays of ``netlist``, in layout order."""
    arrays = netlist.arrays
    if isinstance(netlist, ArrayBackedNetlist):
        cell_table, net_table = netlist._cell_table, netlist._net_table
    else:
        cell_table = NameTable.from_names(
            [netlist.cell_name(c) for c in range(netlist.num_cells)]
        )
        net_table = NameTable.from_names(
            [netlist.net_name(n) for n in range(netlist.num_nets)]
        )
    sections = {name: getattr(arrays, name) for name in _ARRAY_FIELDS}
    sections["cell_name_offsets"] = cell_table.offsets
    sections["cell_name_bytes"] = cell_table.blob
    sections["net_name_offsets"] = net_table.offsets
    sections["net_name_bytes"] = net_table.blob
    return sections


def serialize_netlist(netlist: Netlist) -> bytes:
    """One contiguous pack blob (header + payload) for ``netlist``.

    The identical bytes work as a ``.nla`` file, a shared-memory segment
    or a pickle payload.  The content fingerprint is computed here (or
    taken from the netlist's memoized value) and stamped into the header.
    """
    from repro.service.fingerprint import fingerprint_netlist

    sections = _section_arrays(netlist)
    specs: Dict[str, Dict] = {}
    offset = 0
    for name, array in sections.items():
        expected = SECTION_DTYPES[name]
        if array.dtype.str != expected:
            raise ParseError(
                f"section {name!r} has dtype {array.dtype.str}, expected "
                f"{expected} (non-little-endian platforms are unsupported)"
            )
        offset = _align(offset)
        specs[name] = {
            "dtype": expected,
            "shape": [int(dim) for dim in array.shape],
            "offset": offset,
            "nbytes": int(array.nbytes),
        }
        offset += int(array.nbytes)
    payload_bytes = offset

    header = {
        "version": FORMAT_VERSION,
        "fingerprint": fingerprint_netlist(netlist),
        "num_cells": netlist.num_cells,
        "num_nets": netlist.num_nets,
        "num_pins": netlist.num_pins,
        "payload_bytes": payload_bytes,
        "sections": specs,
    }
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    payload_base = _align(_FIXED.size + len(header_bytes))

    blob = bytearray(payload_base + payload_bytes)
    _FIXED.pack_into(blob, 0, MAGIC, FORMAT_VERSION, len(header_bytes))
    blob[_FIXED.size:_FIXED.size + len(header_bytes)] = header_bytes
    for name, array in sections.items():
        start = payload_base + specs[name]["offset"]
        blob[start:start + specs[name]["nbytes"]] = np.ascontiguousarray(
            array
        ).tobytes()
    return bytes(blob)


def write_packed(netlist: Netlist, path: str) -> int:
    """Write ``netlist`` as a pack file at ``path``; returns bytes written."""
    blob = serialize_netlist(netlist)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


# ----------------------------------------------------------------------
# Header parsing / validation
# ----------------------------------------------------------------------
def _parse_header(buf, size: int, source: str) -> PackedHeader:
    if size < _FIXED.size:
        raise ParseError(
            f"file is {size} byte(s), too short for the {_FIXED.size}-byte "
            f"fixed header (expected magic {MAGIC!r})",
            path=source,
        )
    magic, version, header_len = _FIXED.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ParseError(
            f"bad magic {bytes(magic)!r}; expected {MAGIC!r} "
            f"(NetlistArrays pack file)",
            path=source,
        )
    if version != FORMAT_VERSION:
        raise ParseError(
            f"unsupported pack format version {version}; this build reads "
            f"version {FORMAT_VERSION}",
            path=source,
        )
    if _FIXED.size + header_len > size:
        raise ParseError(
            f"truncated header: needs {_FIXED.size + header_len} bytes, "
            f"file has {size}",
            path=source,
        )
    try:
        header = json.loads(bytes(buf[_FIXED.size:_FIXED.size + header_len]))
    except ValueError as error:
        raise ParseError(f"corrupt JSON header: {error}", path=source) from None

    try:
        sections = {
            name: Section(
                dtype=str(spec["dtype"]),
                shape=tuple(int(dim) for dim in spec["shape"]),
                offset=int(spec["offset"]),
                nbytes=int(spec["nbytes"]),
            )
            for name, spec in header["sections"].items()
        }
        parsed = PackedHeader(
            version=int(header["version"]),
            fingerprint=str(header["fingerprint"]),
            num_cells=int(header["num_cells"]),
            num_nets=int(header["num_nets"]),
            num_pins=int(header["num_pins"]),
            payload_base=_align(_FIXED.size + header_len),
            payload_bytes=int(header["payload_bytes"]),
            sections=sections,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ParseError(f"malformed header: {error!r}", path=source) from None

    if set(sections) != set(SECTION_DTYPES):
        missing = sorted(set(SECTION_DTYPES) - set(sections))
        extra = sorted(set(sections) - set(SECTION_DTYPES))
        raise ParseError(
            f"header sections do not match the format: missing {missing}, "
            f"unknown {extra}",
            path=source,
        )
    if parsed.total_bytes > size:
        raise ParseError(
            f"truncated payload: header promises {parsed.total_bytes} bytes, "
            f"file has {size}",
            path=source,
        )
    for name, section in sections.items():
        if section.dtype != SECTION_DTYPES[name]:
            raise ParseError(
                f"section {name!r} has dtype {section.dtype}, expected "
                f"{SECTION_DTYPES[name]}",
                path=source,
            )
        expected_nbytes = int(
            np.prod(section.shape, dtype=np.int64) * np.dtype(section.dtype).itemsize
        )
        if section.nbytes != expected_nbytes:
            raise ParseError(
                f"section {name!r} declares {section.nbytes} bytes for shape "
                f"{section.shape} ({expected_nbytes} expected)",
                path=source,
            )
        if section.offset < 0 or section.offset + section.nbytes > parsed.payload_bytes:
            raise ParseError(
                f"section {name!r} extends outside the payload "
                f"([{section.offset}, {section.offset + section.nbytes}) of "
                f"{parsed.payload_bytes})",
                path=source,
            )
    counts = {
        "net_ptr": parsed.num_nets + 1,
        "cell_ptr": parsed.num_cells + 1,
        "net_degrees": parsed.num_nets,
        "areas": parsed.num_cells,
        "pin_counts": parsed.num_cells,
        "fixed_mask": parsed.num_cells,
        "cell_name_offsets": parsed.num_cells + 1,
        "net_name_offsets": parsed.num_nets + 1,
    }
    for name, expected_len in counts.items():
        if sections[name].shape != (expected_len,):
            raise ParseError(
                f"section {name!r} has shape {sections[name].shape}; header "
                f"counts require ({expected_len},)",
                path=source,
            )
    return parsed


def read_header(path: str) -> PackedHeader:
    """Parse and validate the header of the pack file at ``path``.

    Reads only the header bytes — the payload is never touched, which is
    what makes header-level fingerprint checks effectively free.
    """
    with open(path, "rb") as handle:
        prefix = handle.read(_FIXED.size)
        if len(prefix) >= _FIXED.size:
            _, _, header_len = _FIXED.unpack_from(prefix, 0)
            prefix += handle.read(header_len)
        handle.seek(0, 2)
        size = handle.tell()
    return _parse_header(prefix, size, path)


def packed_fingerprint(path: str) -> str:
    """Content fingerprint of a pack file, from the header alone."""
    return read_header(path).fingerprint


# ----------------------------------------------------------------------
# Zero-copy loading
# ----------------------------------------------------------------------
def _views(buf, header: PackedHeader) -> Dict[str, np.ndarray]:
    views = {}
    for name, section in header.sections.items():
        views[name] = np.frombuffer(
            buf,
            dtype=np.dtype(section.dtype),
            count=section.shape[0],
            offset=header.payload_base + section.offset,
        )
    return views


def _netlist_from_views(
    views: Dict[str, np.ndarray],
    fingerprint: str,
    owner: object,
    source: str,
) -> ArrayBackedNetlist:
    arrays = NetlistArrays(**{name: views[name] for name in _ARRAY_FIELDS})
    for array in vars(arrays).values():
        array.setflags(write=False)
    for name in ("cell_name_offsets", "cell_name_bytes",
                 "net_name_offsets", "net_name_bytes"):
        views[name].setflags(write=False)
    netlist = ArrayBackedNetlist(
        arrays,
        NameTable(views["cell_name_offsets"], views["cell_name_bytes"]),
        NameTable(views["net_name_offsets"], views["net_name_bytes"]),
        owner=owner,
        source=source,
    )
    from repro.service.fingerprint import FINGERPRINT_CACHE_KEY

    netlist.derived_cache[FINGERPRINT_CACHE_KEY] = fingerprint
    return netlist


def netlist_from_buffer(
    buf, source: str = "<buffer>", owner: object = None
) -> ArrayBackedNetlist:
    """Build an :class:`ArrayBackedNetlist` over ``buf`` without copying.

    ``buf`` is any buffer holding one pack blob (a ``bytes`` object, an
    ``mmap.mmap``, a ``SharedMemory.buf`` memoryview).  Every array of the
    returned netlist is a read-only view into ``buf``; pass the object
    that keeps the buffer alive as ``owner``.
    """
    buf = buf if isinstance(buf, (bytes, bytearray, mmap.mmap)) else memoryview(buf)
    header = _parse_header(buf, len(buf), source)
    return _netlist_from_views(
        _views(buf, header), header.fingerprint, owner if owner is not None else buf,
        source,
    )


def netlist_from_bytes(blob: bytes) -> ArrayBackedNetlist:
    """Rebuild a netlist from :func:`serialize_netlist` output (pickle hook)."""
    return netlist_from_buffer(blob, source="<pickled pack blob>", owner=blob)


def load_packed(path: str) -> ArrayBackedNetlist:
    """Load a ``.nla`` pack file zero-copy through ``mmap``.

    The file's pages are faulted in on demand and shared read-only with
    every other process mapping the same file — cold-load time is bounded
    by disk, not by parsing, and the content fingerprint comes straight
    from the header (no re-hash).
    """
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:  # zero-length file: cannot be mapped
            raise ParseError(
                f"file is 0 byte(s), too short for the {_FIXED.size}-byte "
                f"fixed header (expected magic {MAGIC!r})",
                path=path,
            ) from None
    header = _parse_header(mapped, len(mapped), path)
    return _netlist_from_views(_views(mapped, header), header.fingerprint,
                               mapped, path)


def netlist_from_netlist_arrays(netlist: Netlist) -> ArrayBackedNetlist:
    """Re-house any netlist as an :class:`ArrayBackedNetlist` (one copy)."""
    if isinstance(netlist, ArrayBackedNetlist):
        return netlist
    return netlist_from_bytes(serialize_netlist(netlist))


__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "PACKED_EXTENSION",
    "PackedHeader",
    "Section",
    "SECTION_DTYPES",
    "load_packed",
    "netlist_from_buffer",
    "netlist_from_bytes",
    "netlist_from_netlist_arrays",
    "packed_fingerprint",
    "read_header",
    "serialize_netlist",
    "write_packed",
]
