"""Netlist interchange formats.

* :mod:`repro.io.bookshelf` — the UCLA Bookshelf format used by the ISPD
  2005/2006 placement benchmarks (``.aux``, ``.nodes``, ``.nets``, ``.pl``).
* :mod:`repro.io.edgelist` — plain edge-list graphs.
* :mod:`repro.io.hgr` — hMETIS-style hypergraph files.
"""

from repro.io.bookshelf import read_bookshelf, write_bookshelf
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.hgr import read_hgr, write_hgr

__all__ = [
    "read_bookshelf",
    "write_bookshelf",
    "read_edgelist",
    "write_edgelist",
    "read_hgr",
    "write_hgr",
]
