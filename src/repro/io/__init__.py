"""Netlist interchange formats.

* :mod:`repro.io.bookshelf` — the UCLA Bookshelf format used by the ISPD
  2005/2006 placement benchmarks (``.aux``, ``.nodes``, ``.nets``, ``.pl``).
* :mod:`repro.io.edgelist` — plain edge-list graphs.
* :mod:`repro.io.hgr` — hMETIS-style hypergraph files.
* :mod:`repro.io.binfmt` — the versioned binary pack format (``.nla``),
  loaded zero-copy through ``mmap``.

:func:`load_design` dispatches on the file extension, so every consumer
(CLI, flow manifests, scripts) shares one loader; :func:`pack_design`
converts any supported text format to a pack file (the ``repro pack``
subcommand).
"""

from __future__ import annotations

import os

from repro.errors import ParseError
from repro.io.binfmt import (
    PACKED_EXTENSION,
    load_packed,
    packed_fingerprint,
    read_header,
    write_packed,
)
from repro.io.bookshelf import read_bookshelf, write_bookshelf
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.hgr import read_hgr, write_hgr
from repro.netlist.hypergraph import Netlist

#: Edge-list file extensions accepted by :func:`load_design`.
EDGELIST_EXTENSIONS = (".edges", ".edgelist", ".el", ".txt")

_SUPPORTED = (
    ".aux (Bookshelf)",
    ".hgr (hMETIS hypergraph)",
    "/".join(EDGELIST_EXTENSIONS) + " (edge list)",
    PACKED_EXTENSION + " (binary pack)",
)


def load_design(path: str) -> Netlist:
    """Load a design file, dispatching on its extension.

    Supports ``.aux`` (Bookshelf), ``.hgr`` (hMETIS),
    ``.edges``/``.edgelist``/``.el``/``.txt`` (edge list) and ``.nla``
    (binary pack, mmap-loaded zero-copy).  Raises
    :class:`~repro.errors.ParseError` for missing files and for unknown
    extensions, naming the supported formats.
    """
    if not os.path.exists(path):
        raise ParseError("design file does not exist", path=path)
    lower = path.lower()
    if lower.endswith(".aux"):
        netlist, _ = read_bookshelf(path)
        return netlist
    if lower.endswith(".hgr"):
        return read_hgr(path)
    if lower.endswith(PACKED_EXTENSION):
        return load_packed(path)
    if lower.endswith(EDGELIST_EXTENSIONS):
        return read_edgelist(path)
    extension = os.path.splitext(path)[1] or "(none)"
    raise ParseError(
        f"unsupported design extension {extension!r}; "
        f"supported formats: {', '.join(_SUPPORTED)}",
        path=path,
    )


def pack_design(source: str, destination: str) -> int:
    """Convert any supported design file into a pack file.

    Parse-once/convert semantics: ``source`` is loaded through
    :func:`load_design` (so ``.nla`` inputs re-pack losslessly too) and
    written at ``destination`` in the :mod:`repro.io.binfmt` layout.
    Returns the number of bytes written.
    """
    if not destination.lower().endswith(PACKED_EXTENSION):
        raise ParseError(
            f"pack output must use the {PACKED_EXTENSION!r} extension",
            path=destination,
        )
    return write_packed(load_design(source), destination)


__all__ = [
    "load_design",
    "pack_design",
    "EDGELIST_EXTENSIONS",
    "PACKED_EXTENSION",
    "load_packed",
    "packed_fingerprint",
    "read_header",
    "write_packed",
    "read_bookshelf",
    "write_bookshelf",
    "read_edgelist",
    "write_edgelist",
    "read_hgr",
    "write_hgr",
]
