"""The :class:`Flow` composer: run a declared stage list with per-stage
content-fingerprint caching.

A flow is an ordered list of stages.  Each stage's fingerprint covers the
design, the stage's own config, and every stage before it — so any change
upstream re-keys (and therefore recomputes) everything downstream, while an
unchanged prefix is answered from the
:class:`~repro.service.store.ResultStore` with bit-identical artifacts.

Caching is only sound for deterministic work: a stage is looked up /
stored only when it *and every stage upstream of it* is deterministic
(pinned seeds).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import FlowError, ReproError, ServiceError
from repro.flow.context import FlowContext
from repro.flow.stage import Stage, StageResult
from repro.netlist.hypergraph import Netlist
from repro.obs import trace
from repro.service.fingerprint import fingerprint_netlist, stage_fingerprint
from repro.service.store import ResultStore
from repro.utils.tables import format_table
from repro.utils.timer import Timer

logger = logging.getLogger(__name__)

ProgressCallback = Callable[[StageResult], None]


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow execution over one design.

    Attributes:
        name: the flow's name.
        design_fingerprint: content fingerprint of the input design.
        results: one :class:`StageResult` per declared stage, in order.
    """

    name: str
    design_fingerprint: str
    results: Tuple[StageResult, ...]

    def __getitem__(self, stage: str) -> StageResult:
        for result in self.results:
            if result.stage == stage:
                return result
        raise KeyError(
            f"no stage {stage!r} in flow {self.name!r}; "
            f"stages: {[r.stage for r in self.results]}"
        )

    def artifact(self, stage: str):
        """The artifact produced by the stage labelled ``stage``."""
        return self[stage].artifact

    @property
    def all_cached(self) -> bool:
        """True when every stage was answered from the result store."""
        return all(r.cached for r in self.results)

    @property
    def runtime_seconds(self) -> float:
        """Total wall-clock across all stages."""
        return sum(r.runtime_seconds for r in self.results)

    def summary(self) -> str:
        """Human-readable per-stage table."""
        headers = ["stage", "kind", "cache", "time", "summary"]
        rows = [
            [r.stage, r.kind, r.cache_label, f"{r.runtime_seconds:.2f}s",
             r.metadata_summary()]
            for r in self.results
        ]
        return format_table(headers, rows)


class Flow:
    """An ordered, named list of stages executed with per-stage caching.

    >>> flow = Flow([DetectStage(seed=1), PlaceStage(), CongestionStage()])
    ... # doctest: +SKIP
    >>> result = flow.run(netlist, store=ResultStore(".repro-cache"))
    ... # doctest: +SKIP

    When a flow declares the same stage twice, later occurrences are
    labelled ``<name>#2``, ``<name>#3``, ... so results stay addressable.
    """

    def __init__(self, stages: Sequence[Stage], name: str = "flow") -> None:
        stages = list(stages)
        if not stages:
            raise FlowError("a flow needs at least one stage")
        for stage in stages:
            if not isinstance(stage, Stage):
                raise FlowError(
                    f"flow stages must be Stage instances, got {type(stage).__name__}"
                )
        self.stages = stages
        self.name = name
        counts: dict = {}
        self.labels: List[str] = []
        for stage in stages:
            counts[stage.name] = counts.get(stage.name, 0) + 1
            suffix = f"#{counts[stage.name]}" if counts[stage.name] > 1 else ""
            self.labels.append(stage.name + suffix)

    @property
    def deterministic(self) -> bool:
        """True when every stage pins its randomness (fully cacheable)."""
        return all(stage.deterministic for stage in self.stages)

    # ------------------------------------------------------------------
    def run(
        self,
        netlist: Netlist,
        store: Optional[ResultStore] = None,
        use_cache: bool = True,
        pool=None,
        progress: Optional[ProgressCallback] = None,
    ) -> FlowResult:
        """Execute every stage in order over ``netlist``.

        Args:
            netlist: the design to run the flow on.
            store: result store consulted/filled per stage (``None`` = no
                caching).
            use_cache: master switch; ``False`` bypasses the store entirely.
            pool: shared :class:`~repro.service.pool.WorkerPool` handed to
                stages with internal parallelism.
            progress: callback invoked after every finished stage.
        """
        ctx = FlowContext(
            netlist=netlist, pool=pool, store=store if use_cache else None
        )
        design_fingerprint = fingerprint_netlist(netlist)
        chain: List[str] = [design_fingerprint]
        chain_deterministic = True

        with trace.span(
            "flow.run", flow=self.name, design=design_fingerprint[:12]
        ):
            results = self._run_stages(
                ctx, store, use_cache, progress, chain, chain_deterministic
            )

        return FlowResult(
            name=self.name,
            design_fingerprint=design_fingerprint,
            results=tuple(results),
        )

    def _run_stages(
        self, ctx, store, use_cache, progress, chain, chain_deterministic
    ) -> List[StageResult]:
        """The per-stage loop of :meth:`run` (one span per stage)."""
        results: List[StageResult] = []
        for label, stage in zip(self.labels, self.stages):
            fingerprint = stage_fingerprint(
                stage.name, stage.config_fingerprint(), chain
            )
            chain_deterministic = chain_deterministic and stage.deterministic
            cacheable = use_cache and store is not None and chain_deterministic

            artifact = None
            cached = False
            with trace.span(
                f"stage.{label}", kind=stage.kind, fingerprint=fingerprint[:12]
            ) as stage_span:
                with Timer() as timer:
                    if cacheable:
                        artifact = self._lookup(store, stage, fingerprint, ctx, label)
                        cached = artifact is not None
                    if artifact is None:
                        ctx.current_fingerprint = fingerprint
                        artifact = stage.compute(ctx)
                    stage.apply(ctx, artifact)
                if not cached and cacheable:
                    self._record(
                        store, stage, fingerprint, artifact, timer.elapsed, label
                    )
                stage_span.set(cache="hit" if cached else "run")

            result = StageResult(
                stage=label,
                kind=stage.kind,
                artifact=artifact,
                fingerprint=fingerprint,
                cached=cached,
                runtime_seconds=timer.elapsed,
                metadata=stage.metadata(artifact),
            )
            ctx.results.append(result)
            results.append(result)
            chain.append(fingerprint)
            if progress is not None:
                progress(result)

        return results

    # ------------------------------------------------------------------
    def _lookup(self, store, stage, fingerprint, ctx, label):
        """Cache lookup; degrades to recomputation on any store/codec issue."""
        try:
            payload = store.get_payload(fingerprint, kind=stage.kind)
        except ServiceError as error:
            logger.warning("cache lookup for stage %s failed: %s", label, error)
            return None
        if payload is None:
            return None
        try:
            return stage.decode_artifact(payload, ctx)
        except ReproError as error:
            # Structurally valid JSON that no longer decodes (artifact codec
            # skew): drop the row and recompute.
            logger.warning(
                "stale cached artifact for stage %s, recomputing: %s", label, error
            )
            try:
                store.demote_hit(fingerprint)
            except ServiceError:
                pass
            return None

    def _record(self, store, stage, fingerprint, artifact, elapsed, label):
        """Cache insert; the computed artifact survives a broken cache."""
        try:
            store.put_payload(
                fingerprint,
                stage.encode_artifact(artifact),
                kind=stage.kind,
                num_items=stage.cache_items(artifact),
                runtime_seconds=elapsed,
            )
        except (ServiceError, FlowError) as error:
            logger.warning("result of stage %s computed but not cached: %s", label, error)

    def __repr__(self) -> str:
        inner = ", ".join(repr(stage) for stage in self.stages)
        return f"Flow([{inner}], name={self.name!r})"


__all__ = ["Flow", "FlowResult"]
