"""Lossless JSON codecs for every stage artifact kind.

Extends the PR-1 report codec idea to the whole pipeline: each artifact
kind (finder report, partition, placement, congestion map, netlist,
resynthesis result) registers an ``encode(artifact) -> dict`` /
``decode(payload, ctx) -> artifact`` pair.  Python's ``json`` round-trips
floats exactly (shortest-repr), so decoded artifacts are bit-identical to
the originals — the cache-hit path of a flow returns exactly what the
compute path produced.

Payloads are versioned (``codec_version``); decoding a payload written by
an older codec raises :class:`~repro.errors.FlowError`, which the flow
layer converts into a cache miss + rewrite.  Decoders receive the
:class:`~repro.flow.context.FlowContext` because some artifacts reference
the design itself (a :class:`Placement` holds its netlist), which is
already fingerprint-addressed and never serialized twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.errors import FlowError, ReproError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hypergraph import Netlist
from repro.partition.fm import PartitionResult
from repro.placement.placer import Placement
from repro.placement.region import Die
from repro.routing.congestion import CongestionMap
from repro.service.codec import report_from_dict, report_to_dict

#: Bump when any artifact payload shape changes; older payloads then decode
#: as cache misses and are rewritten.
ARTIFACT_CODEC_VERSION = 1

KIND_FINDER_REPORT = "finder_report"
KIND_PARTITION = "partition"
KIND_PLACEMENT = "placement"
KIND_CONGESTION = "congestion"
KIND_NETLIST = "netlist"
KIND_RESYNTHESIS = "resynthesis"


@dataclass(frozen=True)
class ResynthesisResult:
    """Artifact of the resynthesis stage.

    Attributes:
        netlist: the re-instantiated design (wide gates decomposed).
        mapping: old cell index -> new cell indices that replaced it.
    """

    netlist: Netlist
    mapping: Dict[int, List[int]]

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResynthesisResult):
            return NotImplemented
        return self.mapping == other.mapping and _netlist_payload(
            self.netlist
        ) == _netlist_payload(other.netlist)


# ----------------------------------------------------------------------
# Netlist
# ----------------------------------------------------------------------
def _netlist_payload(netlist: Netlist) -> Dict[str, Any]:
    return {
        "cells": [
            [
                netlist.cell_name(c),
                netlist.cell_area(c),
                netlist.cell_pin_count(c),
                netlist.cell_is_fixed(c),
            ]
            for c in range(netlist.num_cells)
        ],
        "nets": [
            [netlist.net_name(n), list(netlist.cells_of_net(n))]
            for n in range(netlist.num_nets)
        ],
    }


def _netlist_from_payload(data: Dict[str, Any]) -> Netlist:
    builder = NetlistBuilder()
    for name, area, pin_count, fixed in data["cells"]:
        builder.add_cell(name=name, area=area, pin_count=pin_count, fixed=fixed)
    for name, members in data["nets"]:
        builder.add_net(name, members)
    return builder.build()


# ----------------------------------------------------------------------
# Per-kind encoders/decoders (raw payload body, no version envelope)
# ----------------------------------------------------------------------
def _encode_report(report) -> Dict[str, Any]:
    return report_to_dict(report)


def _decode_report(data: Dict[str, Any], ctx):
    return report_from_dict(data)


def _encode_partition(result: PartitionResult) -> Dict[str, Any]:
    return {
        "sides": [[cell, side] for cell, side in sorted(result.sides.items())],
        "cut": result.cut,
        "passes": result.passes,
    }


def _decode_partition(data: Dict[str, Any], ctx) -> PartitionResult:
    return PartitionResult(
        sides={cell: side for cell, side in data["sides"]},
        cut=data["cut"],
        passes=data["passes"],
    )


def _encode_placement(placement: Placement) -> Dict[str, Any]:
    die = placement.die
    return {
        "die": [die.width, die.height, die.num_rows],
        "x": [float(v) for v in placement.x],
        "y": [float(v) for v in placement.y],
    }


def _decode_placement(data: Dict[str, Any], ctx) -> Placement:
    width, height, num_rows = data["die"]
    return Placement(
        netlist=ctx.netlist,
        die=Die(width=width, height=height, num_rows=num_rows),
        x=np.asarray(data["x"], dtype=np.float64),
        y=np.asarray(data["y"], dtype=np.float64),
    )


def _encode_congestion(cmap: CongestionMap) -> Dict[str, Any]:
    return {
        "demand": [[float(v) for v in row] for row in cmap.demand],
        "capacity": cmap.capacity,
        "tile_width": cmap.tile_width,
        "tile_height": cmap.tile_height,
        "net_boxes": [list(b) if b is not None else None for b in cmap.net_boxes],
    }


def _decode_congestion(data: Dict[str, Any], ctx) -> CongestionMap:
    return CongestionMap(
        demand=np.asarray(data["demand"], dtype=np.float64),
        capacity=data["capacity"],
        tile_width=data["tile_width"],
        tile_height=data["tile_height"],
        net_boxes=[tuple(b) if b is not None else None for b in data["net_boxes"]],
    )


def _encode_netlist(netlist: Netlist) -> Dict[str, Any]:
    return _netlist_payload(netlist)


def _decode_netlist(data: Dict[str, Any], ctx) -> Netlist:
    return _netlist_from_payload(data)


def _encode_resynthesis(result: ResynthesisResult) -> Dict[str, Any]:
    return {
        "netlist": _netlist_payload(result.netlist),
        "mapping": [[old, list(new)] for old, new in sorted(result.mapping.items())],
    }


def _decode_resynthesis(data: Dict[str, Any], ctx) -> ResynthesisResult:
    return ResynthesisResult(
        netlist=_netlist_from_payload(data["netlist"]),
        mapping={old: list(new) for old, new in data["mapping"]},
    )


_Encoder = Callable[[Any], Dict[str, Any]]
_Decoder = Callable[[Dict[str, Any], Any], Any]

_CODECS: Dict[str, Tuple[_Encoder, _Decoder]] = {
    KIND_FINDER_REPORT: (_encode_report, _decode_report),
    KIND_PARTITION: (_encode_partition, _decode_partition),
    KIND_PLACEMENT: (_encode_placement, _decode_placement),
    KIND_CONGESTION: (_encode_congestion, _decode_congestion),
    KIND_NETLIST: (_encode_netlist, _decode_netlist),
    KIND_RESYNTHESIS: (_encode_resynthesis, _decode_resynthesis),
}


def artifact_kinds() -> Tuple[str, ...]:
    """All registered artifact kinds."""
    return tuple(_CODECS)


def encode_artifact(kind: str, artifact: Any) -> Dict[str, Any]:
    """Versioned JSON-safe payload of ``artifact``."""
    if kind not in _CODECS:
        raise FlowError(f"unknown artifact kind {kind!r}; known: {sorted(_CODECS)}")
    payload = _CODECS[kind][0](artifact)
    payload["codec_version"] = ARTIFACT_CODEC_VERSION
    payload["kind"] = kind
    return payload


def decode_artifact(kind: str, payload: Dict[str, Any], ctx) -> Any:
    """Rebuild an artifact from a payload produced by :func:`encode_artifact`.

    Raises :class:`FlowError` on a kind/version mismatch or a malformed
    payload — the flow layer treats that as a cache miss, not a crash.
    """
    if kind not in _CODECS:
        raise FlowError(f"unknown artifact kind {kind!r}; known: {sorted(_CODECS)}")
    version = payload.get("codec_version")
    if version != ARTIFACT_CODEC_VERSION:
        raise FlowError(
            f"artifact payload codec version {version!r} is not the current "
            f"{ARTIFACT_CODEC_VERSION}; treating the entry as stale"
        )
    if payload.get("kind") != kind:
        raise FlowError(
            f"artifact payload kind {payload.get('kind')!r} does not match "
            f"the requested kind {kind!r}"
        )
    try:
        return _CODECS[kind][1](payload, ctx)
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise FlowError(f"malformed {kind} artifact payload: {error}") from error


__all__ = [
    "ARTIFACT_CODEC_VERSION",
    "ResynthesisResult",
    "artifact_kinds",
    "encode_artifact",
    "decode_artifact",
    "KIND_FINDER_REPORT",
    "KIND_PARTITION",
    "KIND_PLACEMENT",
    "KIND_CONGESTION",
    "KIND_NETLIST",
    "KIND_RESYNTHESIS",
]
