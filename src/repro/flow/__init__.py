"""repro.flow — one composable stage API over detect / partition / place /
route, with per-stage fingerprint caching.

The public pipeline surface of the package.  Everything the service layer,
CLI, experiments and applications run is expressed as a :class:`Flow`: an
ordered list of :class:`Stage` objects, each with a frozen config
dataclass, executed over a shared :class:`FlowContext` and wrapped in a
uniform :class:`StageResult` envelope (artifact + content fingerprint +
timing + metadata).

Per-stage caching: a stage's fingerprint covers the design, its config and
every upstream stage, so *any* stage artifact — detection report,
partition, placement, congestion map, transformed netlist — is
content-addressable in a :class:`~repro.service.store.ResultStore`, and a
re-run with an unchanged prefix is answered bit-identically from cache.

Quick start::

    from repro.flow import CongestionStage, DetectStage, Flow, PlaceStage
    from repro.service import ResultStore

    flow = Flow([DetectStage(num_seeds=32, seed=1), PlaceStage(),
                 CongestionStage(grid=(32, 32))])
    with ResultStore(".repro-cache") as store:
        result = flow.run(netlist, store=store)
    report = result.artifact("detect")
    heat = result.artifact("congestion").occupancy

Manifests (``tangled-logic flow run flow.json``) declare the same thing as
JSON — see :mod:`repro.flow.manifest`.
"""

# Import order matters: stage/context/artifacts are the leaves; stages and
# the composer reach back into this (partially initialized) package.
from repro.flow.stage import Stage, StageConfig, StageResult
from repro.flow.context import FlowContext
from repro.flow.artifacts import (
    ARTIFACT_CODEC_VERSION,
    ResynthesisResult,
    artifact_kinds,
    decode_artifact,
    encode_artifact,
)
from repro.flow.stages import (
    BUILTIN_STAGES,
    CongestionConfig,
    CongestionStage,
    DetectStage,
    IncrementalDetectStage,
    PartitionConfig,
    PartitionStage,
    PlaceConfig,
    PlaceStage,
    ResynthesisConfig,
    ResynthesisStage,
    SoftBlocksConfig,
    SoftBlocksStage,
)
from repro.flow.flow import Flow, FlowResult
from repro.flow.manifest import FlowManifest, flow_from_manifest, stage_from_entry
from repro.flow.api import CACHE_ENV_VAR, detect, place_with_soft_blocks

__all__ = [
    "Stage",
    "StageConfig",
    "StageResult",
    "FlowContext",
    "Flow",
    "FlowResult",
    "ARTIFACT_CODEC_VERSION",
    "ResynthesisResult",
    "artifact_kinds",
    "encode_artifact",
    "decode_artifact",
    "BUILTIN_STAGES",
    "DetectStage",
    "IncrementalDetectStage",
    "PartitionConfig",
    "PartitionStage",
    "PlaceConfig",
    "PlaceStage",
    "CongestionConfig",
    "CongestionStage",
    "SoftBlocksConfig",
    "SoftBlocksStage",
    "ResynthesisConfig",
    "ResynthesisStage",
    "FlowManifest",
    "flow_from_manifest",
    "stage_from_entry",
    "CACHE_ENV_VAR",
    "detect",
    "place_with_soft_blocks",
]
