"""Built-in stages wrapping every subsystem of the reproduction.

================  ======================  ===========================
stage             artifact kind           wraps
================  ======================  ===========================
``detect``        ``finder_report``       :mod:`repro.finder`
``partition``     ``partition``           :mod:`repro.partition`
``place``         ``placement``           :mod:`repro.placement`
``congestion``    ``congestion``          :mod:`repro.routing`
``soft_blocks``   ``netlist``             :mod:`repro.apps.soft_blocks`
``resynthesis``   ``resynthesis``         :mod:`repro.apps.resynthesis`
================  ======================  ===========================

Stages that need upstream artifacts resolve them from the context by kind
(``congestion`` takes the latest placement; ``soft_blocks`` and
``resynthesis`` default their cell groups to the GTLs of the latest
detection report), so the same stage composes into many flows.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import FlowError
from repro.finder.config import FinderConfig
from repro.finder.finder import TangledLogicFinder
from repro.flow import artifacts
from repro.flow.stage import Stage, StageConfig, resolve_upstream
from repro.partition.fm import fm_bisect
from repro.placement.placer import Placement, place
from repro.placement.region import Die
from repro.routing.congestion import build_congestion_map


# ----------------------------------------------------------------------
# Detection
# ----------------------------------------------------------------------
class DetectStage(Stage):
    """Run the paper's three-phase GTL finder on the current design.

    Its config *is* :class:`~repro.finder.config.FinderConfig`; ``workers``
    is execution-only (excluded from the fingerprint), and a shared flow
    worker pool is used for the seed trials when the context carries one.
    """

    name = "detect"
    kind = artifacts.KIND_FINDER_REPORT
    Config = FinderConfig
    execution_only = frozenset({"workers"})

    @property
    def deterministic(self) -> bool:
        return self.config.seed is not None

    def compute(self, ctx):
        finder = TangledLogicFinder(ctx.netlist, self.config)
        if ctx.pool is not None:
            return finder.run(pool=ctx.pool, pool_key=ctx.current_fingerprint)
        return finder.run()

    def decode_artifact(self, payload, ctx):
        report = super().decode_artifact(payload, ctx)
        # The fingerprint ignores execution-only fields (workers), so a hit
        # may have been computed under a different worker count: report the
        # *requesting* stage's config, not the producer's.
        if report.config != self.config:
            report = dataclasses.replace(report, config=self.config)
        return report

    def metadata(self, report) -> Dict[str, object]:
        from repro.netlist.backend import resolve_backend

        best = report.gtls[0] if report.gtls else None
        return {
            "num_gtls": report.num_gtls,
            "best_size": best.size if best else None,
            "best_score": best.score if best else None,
            "rent_exponent": report.rent_exponent,
            # Execution detail, deliberately outside the fingerprint and the
            # artifact: both kernel backends produce identical reports, so
            # caches stay shared across backends.
            "kernel_backend": resolve_backend(),
        }

    def cache_items(self, report) -> int:
        return report.num_gtls


class IncrementalDetectStage(DetectStage):
    """Detection that patches a prior run instead of recomputing it.

    Behaves exactly like :class:`DetectStage` (same artifact kind, same
    parity-guaranteed report — see :mod:`repro.incremental.engine`), but
    routes execution through :func:`repro.incremental.detect_with_reuse`:
    when the flow's result store holds a traced base run under this
    config, only the seeds the netlist edit could have influenced are
    re-run.  ``halo`` and ``full_threshold`` tune reuse, not results, so
    they stay outside the stage fingerprint; without a store (or an
    unpinned seed) it degrades to a plain full detection.
    """

    name = "incremental_detect"

    def __init__(self, config=None, *, halo: int = 0,
                 full_threshold: Optional[float] = None, **overrides):
        from repro.incremental.engine import DEFAULT_FULL_THRESHOLD

        super().__init__(config, **overrides)
        self.halo = int(halo)
        self.full_threshold = (
            DEFAULT_FULL_THRESHOLD if full_threshold is None
            else float(full_threshold)
        )
        self._last_incremental = None

    def compute(self, ctx):
        from repro.incremental.engine import detect_with_reuse

        if ctx.store is None:
            return super().compute(ctx)
        result = detect_with_reuse(
            ctx.netlist,
            self.config,
            ctx.store,
            halo=self.halo,
            full_threshold=self.full_threshold,
            pool=ctx.pool,
            pool_key=ctx.current_fingerprint,
        )
        self._last_incremental = result
        return result.report

    def metadata(self, report) -> Dict[str, object]:
        data = super().metadata(report)
        last = self._last_incremental
        if last is not None and last.report is report:
            data["incremental_mode"] = last.mode
            data["seeds_recomputed"] = last.seeds_recomputed
            data["seeds_total"] = last.seeds_total
            data["dirty_cells"] = last.dirty_cells
        return data


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionConfig(StageConfig):
    """Knobs of one FM min-cut bisection.

    Attributes:
        balance_tolerance: allowed area imbalance between the two sides.
        max_passes: FM pass cap.
        seed: RNG seed of the initial random balanced split.
    """

    balance_tolerance: float = 0.1
    max_passes: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.balance_tolerance < 1:
            raise FlowError("balance_tolerance must be in [0, 1)")
        if self.max_passes < 1:
            raise FlowError("max_passes must be >= 1")


class PartitionStage(Stage):
    """FM min-cut bisection of the current design."""

    name = "partition"
    kind = artifacts.KIND_PARTITION
    Config = PartitionConfig

    def compute(self, ctx):
        return fm_bisect(
            ctx.netlist,
            balance_tolerance=self.config.balance_tolerance,
            rng=self.config.seed,
            max_passes=self.config.max_passes,
        )

    def metadata(self, result) -> Dict[str, object]:
        from repro.netlist.backend import resolve_backend

        sides = list(result.sides.values())
        return {
            "cut": result.cut,
            "passes": result.passes,
            "side0": sides.count(0),
            "side1": sides.count(1),
            # Execution detail, deliberately outside the fingerprint and the
            # artifact: both FM backends produce bit-identical partitions,
            # so caches stay shared across backends.
            "kernel_backend": resolve_backend(),
        }

    def cache_items(self, result) -> int:
        return result.cut


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlaceConfig(StageConfig):
    """Knobs of the analytic placement flow (see
    :func:`repro.placement.placer.place`).

    Attributes:
        die: explicit target die; sized from cell area when ``None``.
        pad_positions: explicit pad coordinates (cell -> ``(x, y)``);
            perimeter-assigned when ``None`` and fixed cells exist.
        utilization: cell-area utilization used to size a default die.
        spreading_iterations: anchored re-solve/re-spread rounds.
        regroup_weight: relative anchor weight during re-solve rounds.
        contraction_weight: absolute anchor spring of the optional final
            contraction solve (0 disables).
        max_utilization: local density cap enforced after contraction.
        legalize: snap cells to rows at the end.
    """

    die: Optional[Die] = None
    pad_positions: Optional[Mapping[int, Tuple[float, float]]] = None
    utilization: float = 0.6
    spreading_iterations: int = 1
    regroup_weight: float = 0.25
    contraction_weight: float = 0.0
    max_utilization: float = 1.0
    legalize: bool = False


class PlaceStage(Stage):
    """Place the current design (solving on the augmented netlist when a
    soft-blocks stage installed one, reporting against the real design)."""

    name = "place"
    kind = artifacts.KIND_PLACEMENT
    Config = PlaceConfig

    def compute(self, ctx):
        target = ctx.solve_netlist if ctx.solve_netlist is not None else ctx.netlist
        config = self.config
        solved = place(
            target,
            die=config.die,
            pad_positions=dict(config.pad_positions)
            if config.pad_positions is not None
            else None,
            utilization=config.utilization,
            spreading_iterations=config.spreading_iterations,
            regroup_weight=config.regroup_weight,
            contraction_weight=config.contraction_weight,
            max_utilization=config.max_utilization,
            legalize=config.legalize,
        )
        if target is not ctx.netlist:
            # Pseudo-nets steered the solve; the artifact references the
            # real design so wirelength/congestion never see them.
            return Placement(netlist=ctx.netlist, die=solved.die, x=solved.x, y=solved.y)
        return solved

    def metadata(self, placement) -> Dict[str, object]:
        return {
            "hpwl": placement.hpwl(),
            "die": [placement.die.width, placement.die.height],
        }


# ----------------------------------------------------------------------
# Congestion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CongestionConfig(StageConfig):
    """Knobs of the RUDY congestion estimate.

    Attributes:
        grid: ``(nx, ny)`` tile counts.
        capacity: per-tile routing capacity; calibrated from
            ``target_average_occupancy`` when ``None``.
        target_average_occupancy: average-occupancy calibration point.
    """

    grid: Tuple[int, int] = (32, 32)
    capacity: Optional[float] = None
    target_average_occupancy: float = 0.55


class CongestionStage(Stage):
    """RUDY congestion map of the latest upstream placement."""

    name = "congestion"
    kind = artifacts.KIND_CONGESTION
    Config = CongestionConfig

    def compute(self, ctx):
        placement = resolve_upstream(ctx, artifacts.KIND_PLACEMENT, self.name)
        return build_congestion_map(
            placement,
            grid=tuple(self.config.grid),
            capacity=self.config.capacity,
            target_average_occupancy=self.config.target_average_occupancy,
        )

    def metadata(self, cmap) -> Dict[str, object]:
        occupancy = cmap.occupancy
        return {
            "max_occupancy": float(occupancy.max()),
            "mean_occupancy": float(occupancy.mean()),
            "overfull_tiles": int(np.count_nonzero(occupancy >= 1.0)),
        }


# ----------------------------------------------------------------------
# Soft blocks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoftBlocksConfig(StageConfig):
    """Knobs of soft-block (attraction pseudo-net) construction.

    Attributes:
        groups: explicit cell groups; ``None`` takes the GTLs of the latest
            upstream detection report.
        chords_per_cell: extra random 2-pin attractions per member.
        seed: RNG seed for ring/chord selection.
    """

    groups: Optional[Tuple[Tuple[int, ...], ...]] = None
    chords_per_cell: float = 0.5
    seed: int = 0


class SoftBlocksStage(Stage):
    """Augment the design with attraction pseudo-nets per group; downstream
    placement solves on the augmented netlist."""

    name = "soft_blocks"
    kind = artifacts.KIND_NETLIST
    Config = SoftBlocksConfig

    def __init__(self, config=None, **overrides):
        if "groups" in overrides and overrides["groups"] is not None:
            overrides["groups"] = tuple(
                tuple(sorted(set(group))) for group in overrides["groups"]
            )
        super().__init__(config, **overrides)

    def compute(self, ctx):
        from repro.apps.soft_blocks import soft_block_nets

        groups = self.config.groups
        if groups is None:
            report = resolve_upstream(ctx, artifacts.KIND_FINDER_REPORT, self.name)
            groups = tuple(tuple(sorted(g.cells)) for g in report.gtls)
        return soft_block_nets(
            ctx.netlist,
            groups,
            chords_per_cell=self.config.chords_per_cell,
            rng=self.config.seed,
        )

    def apply(self, ctx, augmented):
        ctx.solve_netlist = augmented

    def metadata(self, augmented) -> Dict[str, object]:
        return {"num_nets": augmented.num_nets}


# ----------------------------------------------------------------------
# Resynthesis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResynthesisConfig(StageConfig):
    """Knobs of GTL re-instantiation (wide-gate decomposition).

    Attributes:
        cells: explicit cells to decompose; ``None`` takes the union of all
            GTL members of the latest upstream detection report.
        max_fanin: maximum inputs per decomposed stage (>= 2).
        stage_area: area of each new stage cell.
    """

    cells: Optional[Tuple[int, ...]] = None
    max_fanin: int = 2
    stage_area: float = 0.9


class ResynthesisStage(Stage):
    """Re-instantiate the selected cells; the decomposed netlist becomes the
    current design for every stage after this one."""

    name = "resynthesis"
    kind = artifacts.KIND_RESYNTHESIS
    Config = ResynthesisConfig

    def __init__(self, config=None, **overrides):
        if "cells" in overrides and overrides["cells"] is not None:
            overrides["cells"] = tuple(sorted(set(overrides["cells"])))
        super().__init__(config, **overrides)

    def compute(self, ctx):
        from repro.apps.resynthesis import decompose_complex_gates

        cells = self.config.cells
        if cells is None:
            report = resolve_upstream(ctx, artifacts.KIND_FINDER_REPORT, self.name)
            members = set()
            for gtl in report.gtls:
                members.update(gtl.cells)
            cells = tuple(sorted(members))
        netlist, mapping = decompose_complex_gates(
            ctx.netlist,
            cells,
            max_fanin=self.config.max_fanin,
            stage_area=self.config.stage_area,
        )
        return artifacts.ResynthesisResult(netlist=netlist, mapping=mapping)

    def apply(self, ctx, result):
        ctx.netlist = result.netlist
        ctx.solve_netlist = None

    def metadata(self, result) -> Dict[str, object]:
        decomposed = sum(1 for new in result.mapping.values() if len(new) > 1)
        return {
            "decomposed_cells": decomposed,
            "new_num_cells": result.netlist.num_cells,
            "new_num_nets": result.netlist.num_nets,
        }


#: Manifest stage-name registry (see :mod:`repro.flow.manifest`).
BUILTIN_STAGES = {
    DetectStage.name: DetectStage,
    IncrementalDetectStage.name: IncrementalDetectStage,
    PartitionStage.name: PartitionStage,
    PlaceStage.name: PlaceStage,
    CongestionStage.name: CongestionStage,
    SoftBlocksStage.name: SoftBlocksStage,
    ResynthesisStage.name: ResynthesisStage,
}

__all__ = [
    "DetectStage",
    "IncrementalDetectStage",
    "PartitionConfig",
    "PartitionStage",
    "PlaceConfig",
    "PlaceStage",
    "CongestionConfig",
    "CongestionStage",
    "SoftBlocksConfig",
    "SoftBlocksStage",
    "ResynthesisConfig",
    "ResynthesisStage",
    "BUILTIN_STAGES",
]
