"""The stage abstraction: one named, configured, fingerprintable unit of work.

A :class:`Stage` couples

* a **name** (``"detect"``, ``"place"``, ...) and an artifact **kind**
  (what its output decodes as),
* a **frozen config dataclass** (every knob of the stage; hashable content,
  validated overrides),
* a ``compute(ctx) -> artifact`` implementation over a
  :class:`~repro.flow.context.FlowContext`, and
* an ``apply(ctx, artifact)`` hook that installs the artifact's side
  effects into the context (e.g. a soft-blocks stage swapping in the
  augmented solve netlist) — called for computed *and* cache-hit
  artifacts, so a fully cached flow replays identically.

Every stage execution is wrapped in a uniform :class:`StageResult`
envelope: artifact + content fingerprint + timing + metadata.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.errors import FlowError
from repro.service.fingerprint import fingerprint_frozen_config
from repro.utils.configs import replace_checked


@dataclass(frozen=True)
class StageConfig:
    """Base class of all stage configs: a frozen dataclass with validated
    overrides."""

    def with_overrides(self, **kwargs) -> "StageConfig":
        """Copy of this config with some fields replaced.

        Unknown keys raise :class:`~repro.errors.FlowError` listing the
        valid field names.
        """
        return replace_checked(self, FlowError, **kwargs)


@dataclass(frozen=True)
class StageResult:
    """Uniform envelope around one executed (or cache-answered) stage.

    Attributes:
        stage: the stage's label inside its flow (the stage name, suffixed
            ``#2``, ``#3``, ... when a flow repeats a stage).
        kind: artifact kind (codec id), e.g. ``"finder_report"``.
        artifact: the stage's output object.
        fingerprint: content fingerprint keying the artifact in the store.
        cached: True when the artifact came from the result store.
        runtime_seconds: wall-clock spent answering this stage (lookup or
            compute).
        metadata: small stage-reported summary (counts, scores, sizes) for
            tables and JSONL rows; JSON-safe scalars only.
    """

    stage: str
    kind: str
    artifact: Any
    fingerprint: str
    cached: bool
    runtime_seconds: float
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def to_row(self) -> Dict[str, Any]:
        """JSON-safe summary row (artifact omitted)."""
        return {
            "stage": self.stage,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "runtime_seconds": self.runtime_seconds,
            "metadata": dict(self.metadata),
        }

    @property
    def cache_label(self) -> str:
        """``"hit"`` or ``"run"`` — the table/progress spelling of
        :attr:`cached`."""
        return "hit" if self.cached else "run"

    def metadata_summary(self) -> str:
        """One-line ``key=value`` rendering of :attr:`metadata` (shared by
        :meth:`FlowResult.summary` and the CLI table)."""
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        return ", ".join(
            f"{key}={fmt(value)}"
            for key, value in self.metadata.items()
            if value is not None
        )


class Stage:
    """Base class of all flow stages.

    Subclasses set the class attributes ``name`` (stage id), ``kind``
    (artifact codec id) and ``Config`` (a frozen config dataclass), and
    implement :meth:`compute`.  Construction takes either a ready config or
    keyword overrides on the config's defaults::

        DetectStage(FinderConfig(num_seeds=64, seed=1))
        PartitionStage(balance_tolerance=0.2)

    Attributes:
        execution_only: config fields excluded from the fingerprint because
            they affect speed, never results (e.g. ``workers``).
    """

    name: str = ""
    kind: str = ""
    Config: type = StageConfig
    execution_only: frozenset = frozenset()

    def __init__(self, config=None, **overrides) -> None:
        if config is not None and not isinstance(config, self.Config):
            raise FlowError(
                f"{type(self).__name__} expects a {self.Config.__name__} "
                f"config, got {type(config).__name__}"
            )
        base = config if config is not None else self.Config()
        if overrides:
            base = base.with_overrides(**overrides)
        self.config = base

    # ------------------------------------------------------------------
    @property
    def deterministic(self) -> bool:
        """True when identical inputs always produce identical artifacts
        (the precondition for caching this stage's output)."""
        return True

    def config_fingerprint(self) -> str:
        """Content fingerprint of this stage's config."""
        return fingerprint_frozen_config(self.config, self.execution_only)

    # ------------------------------------------------------------------
    def compute(self, ctx) -> Any:
        """Produce this stage's artifact from the flow context."""
        raise NotImplementedError

    def apply(self, ctx, artifact: Any) -> None:
        """Install ``artifact``'s context side effects (default: none).

        Runs after :meth:`compute` *and* after a cache hit, so cached and
        computed executions leave the context in the same state.
        """

    def metadata(self, artifact: Any) -> Dict[str, Any]:
        """Small JSON-safe summary of ``artifact`` for tables/JSONL."""
        return {}

    def cache_items(self, artifact: Any) -> int:
        """Item count recorded next to the cached payload (store metadata)."""
        return 0

    def decode_artifact(self, payload: Dict[str, Any], ctx) -> Any:
        """Rebuild this stage's artifact from its stored payload.

        The default defers to the kind's registered codec; stages may
        override to post-process (e.g. normalizing execution-only config
        fields on a cached detection report).
        """
        from repro.flow.artifacts import decode_artifact

        return decode_artifact(self.kind, payload, ctx)

    def encode_artifact(self, artifact: Any) -> Dict[str, Any]:
        """JSON-safe payload of ``artifact`` (defers to the kind codec)."""
        from repro.flow.artifacts import encode_artifact

        return encode_artifact(self.kind, artifact)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        changed = []
        for f in dataclasses.fields(self.config):
            value = getattr(self.config, f.name)
            if f.default is not dataclasses.MISSING and value != f.default:
                changed.append(f"{f.name}={value!r}")
        inner = ", ".join(changed)
        return f"{type(self).__name__}({inner})"


def resolve_upstream(ctx, kind: str, stage_name: str) -> Any:
    """Latest upstream artifact of ``kind``, or a clear :class:`FlowError`.

    Shared by stages that consume a predecessor's output (congestion needs
    a placement, soft blocks defaults its groups to detected GTLs).
    """
    artifact = ctx.latest_artifact(kind)
    if artifact is None:
        raise FlowError(
            f"stage {stage_name!r} needs an upstream {kind!r} artifact; "
            f"declare a stage producing one earlier in the flow"
        )
    return artifact


__all__ = ["Stage", "StageConfig", "StageResult", "resolve_upstream"]
