"""Convenience entry points expressed as flows.

These are the supported replacements for the pre-flow free functions: each
is literally a small :class:`~repro.flow.flow.Flow`, so it gets per-stage
fingerprint caching, the uniform :class:`StageResult` envelope and manifest
parity for free.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence

from repro.finder.config import FinderConfig
from repro.finder.result import FinderReport
from repro.flow.flow import Flow
from repro.flow.stages import DetectStage, PlaceStage, SoftBlocksStage
from repro.netlist.hypergraph import Netlist
from repro.placement.placer import Placement
from repro.placement.region import Die
from repro.service.store import ResultStore

#: Environment variable naming the default cache directory for the
#: convenience entry points (the experiment harnesses opt in through it).
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def _resolve_cache_dir(cache_dir: Optional[str]) -> str:
    if cache_dir is not None:
        return cache_dir
    return os.environ.get(CACHE_ENV_VAR, "")


def detect(
    netlist: Netlist,
    config: Optional[FinderConfig] = None,
    cache_dir: Optional[str] = None,
    **overrides,
) -> FinderReport:
    """Cache-aware detection as a one-stage flow.

    Drop-in for :func:`repro.finder.find_tangled_logic`.  When
    ``cache_dir`` (or the :data:`CACHE_ENV_VAR` environment variable) names
    a directory and the config is deterministic (``seed`` pinned), the
    stage artifact is served from / recorded into a
    :class:`~repro.service.store.ResultStore` there.
    """
    base = config or FinderConfig()
    if overrides:
        base = base.with_overrides(**overrides)
    stage = DetectStage(base)
    flow = Flow([stage], name="detect")
    directory = _resolve_cache_dir(cache_dir)
    if directory and stage.deterministic:
        with ResultStore(directory) as store:
            return flow.run(netlist, store=store).artifact("detect")
    return flow.run(netlist).artifact("detect")


def place_with_soft_blocks(
    netlist: Netlist,
    groups: Sequence[Iterable[int]],
    die: Optional[Die] = None,
    chords_per_cell: float = 0.5,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    **place_kwargs,
) -> Placement:
    """Soft-block constrained placement as a two-stage flow.

    Each group becomes a soft block (attraction pseudo-nets); the placement
    solves on the augmented netlist and the returned
    :class:`~repro.placement.placer.Placement` references the original
    design.  ``place_kwargs`` are :class:`~repro.flow.stages.PlaceConfig`
    fields (``utilization``, ``spreading_iterations``, ...).
    """
    flow = Flow(
        [
            SoftBlocksStage(
                groups=tuple(tuple(g) for g in groups),
                chords_per_cell=chords_per_cell,
                seed=seed,
            ),
            PlaceStage(die=die, **place_kwargs),
        ],
        name="soft-blocks",
    )
    directory = _resolve_cache_dir(cache_dir)
    if directory:
        with ResultStore(directory) as store:
            return flow.run(netlist, store=store).artifact("place")
    return flow.run(netlist).artifact("place")


__all__ = ["CACHE_ENV_VAR", "detect", "place_with_soft_blocks"]
