"""The mutable state a flow threads through its stages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.netlist.hypergraph import Netlist


@dataclass
class FlowContext:
    """Everything a stage can read (and the little it can write).

    Attributes:
        netlist: the current design.  Transform stages (resynthesis) may
            replace it, which re-designs everything downstream.
        solve_netlist: an augmented variant of ``netlist`` used only for
            solving (soft-block pseudo-nets); placement stages solve on it
            when set but report results against ``netlist``.
        pool: optional shared :class:`~repro.service.pool.WorkerPool` for
            stages with internal parallelism (detection seed trials).
        store: the :class:`~repro.service.store.ResultStore` the flow runs
            against (``None`` when caching is off).  Stages with their own
            reuse machinery (incremental detection) read it directly.
        results: :class:`~repro.flow.stage.StageResult` of every stage run
            so far, in declaration order.
        current_fingerprint: fingerprint of the stage being computed right
            now (stages use it e.g. as the worker-pool context key).
    """

    netlist: Netlist
    solve_netlist: Optional[Netlist] = None
    pool: Optional[Any] = None
    store: Optional[Any] = None
    results: List[Any] = field(default_factory=list)
    current_fingerprint: str = ""

    def latest_artifact(self, kind: str) -> Optional[Any]:
        """Most recent upstream artifact of ``kind``, or ``None``."""
        for result in reversed(self.results):
            if result.kind == kind:
                return result.artifact
        return None

    def result(self, stage: str) -> Optional[Any]:
        """The :class:`StageResult` labelled ``stage``, or ``None``."""
        for result in self.results:
            if result.stage == stage:
                return result
        return None


__all__ = ["FlowContext"]
