"""Flow manifests: declare a staged run as JSON, run it from the CLI.

Manifest shape (design paths are relative to the manifest file)::

    {"name": "routability",
     "designs": ["bench/a.hgr", "bench/b.aux"],
     "stages": [
        {"stage": "detect", "num_seeds": 32, "seed": 1},
        {"stage": "partition", "balance_tolerance": 0.1},
        {"stage": "place", "utilization": 0.6},
        {"stage": "congestion", "grid": [32, 32]}
     ]}

Every non-``stage`` key of a stage entry is a config field of that stage;
unknown fields are rejected with the valid field names.  A few fields take
JSON-friendly spellings: ``die`` as ``[width, height]`` (or
``[width, height, num_rows]``) and ``grid``/``groups``/``cells`` as plain
arrays.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import FlowError
from repro.flow.flow import Flow
from repro.flow.stages import BUILTIN_STAGES
from repro.placement.region import Die


@dataclass(frozen=True)
class FlowManifest:
    """A parsed flow manifest.

    Attributes:
        flow: the declared :class:`Flow`.
        designs: design file paths, resolved against the manifest location.
    """

    flow: Flow
    designs: Tuple[str, ...]


def _coerce(stage_name: str, key: str, value: Any) -> Any:
    """JSON spelling -> config value for the few structured fields."""
    if value is None:
        return None
    if key == "die":
        if not isinstance(value, list) or len(value) not in (2, 3):
            raise FlowError(
                f'stage {stage_name!r}: "die" must be [width, height] or '
                f"[width, height, num_rows]"
            )
        return Die(*value)
    if key == "grid":
        return tuple(value)
    if key == "pad_positions":
        if not isinstance(value, dict):
            raise FlowError(
                f'stage {stage_name!r}: "pad_positions" must be an object of '
                f"cell -> [x, y]"
            )
        return {int(cell): tuple(xy) for cell, xy in value.items()}
    if key == "groups":
        return tuple(tuple(group) for group in value)
    if key == "cells":
        return tuple(value)
    return value


def stage_from_entry(entry: Dict[str, Any]) -> Any:
    """Build one stage from a manifest entry (``{"stage": name, **fields}``)."""
    if not isinstance(entry, dict) or not isinstance(entry.get("stage"), str):
        raise FlowError(
            'each flow stage entry must be an object with a string "stage" key'
        )
    name = entry["stage"]
    stage_cls = BUILTIN_STAGES.get(name)
    if stage_cls is None:
        raise FlowError(
            f"unknown stage {name!r}; available stages: "
            f"{', '.join(sorted(BUILTIN_STAGES))}"
        )
    fields = {
        key: _coerce(name, key, value)
        for key, value in entry.items()
        if key != "stage"
    }
    return stage_cls(**fields)


def flow_from_manifest(data: Any, base_dir: str = "") -> FlowManifest:
    """Parse a manifest document into a :class:`FlowManifest`.

    Accepts ``"designs": [...]`` or a single ``"design": "path"``.
    """
    if not isinstance(data, dict) or not isinstance(data.get("stages"), list):
        raise FlowError(
            'flow manifest must be {"designs": [...], "stages": [{...}, ...]}'
        )
    if not data["stages"]:
        raise FlowError("flow manifest has no stages")

    raw_designs = data.get("designs")
    if raw_designs is None and isinstance(data.get("design"), str):
        raw_designs = [data["design"]]
    if not isinstance(raw_designs, list) or not raw_designs:
        raise FlowError('flow manifest needs a non-empty "designs" list')

    designs: List[str] = []
    for index, design in enumerate(raw_designs):
        if not isinstance(design, str):
            raise FlowError(f'flow manifest "designs" entry #{index} must be a string')
        designs.append(
            design if os.path.isabs(design) else os.path.join(base_dir, design)
        )

    stages = [stage_from_entry(entry) for entry in data["stages"]]
    name = data.get("name", "flow")
    if not isinstance(name, str):
        raise FlowError('flow manifest "name" must be a string')
    return FlowManifest(flow=Flow(stages, name=name), designs=tuple(designs))


__all__ = ["FlowManifest", "flow_from_manifest", "stage_from_entry"]
