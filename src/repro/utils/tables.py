"""Plain-text table rendering for experiment reports.

The experiment harnesses print tables shaped like the paper's Tables 1-3;
this module renders aligned monospace tables without external dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    text_rows: List[List[str]] = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} columns, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
