"""Disjoint-set (union-find) structure.

Used by the generators to guarantee connectivity of synthesized blocks and by
analysis code to group overlapping candidates.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable


class UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set (no-op if known)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Return the representative of ``item``'s set."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_count(self) -> int:
        """Number of disjoint sets currently tracked."""
        return sum(1 for item, parent in self._parent.items() if item == parent)
