"""Random-number helpers.

Every stochastic entry point in the package accepts either a seed, a
:class:`random.Random` instance, or ``None``; :func:`ensure_rng` normalizes
those into a :class:`random.Random` so results are reproducible when a seed
is supplied.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

RngLike = Union[None, int, random.Random]


def ensure_rng(rng: RngLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``rng``.

    ``None`` yields a fresh unseeded generator, an ``int`` seeds a new
    generator, and an existing :class:`random.Random` is passed through.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool) or not isinstance(rng, int):
        raise TypeError(f"rng must be None, int or random.Random, got {type(rng)!r}")
    return random.Random(rng)


def sample_distinct(
    population: Sequence[int], k: int, rng: RngLike = None
) -> list:
    """Sample ``min(k, len(population))`` distinct items from ``population``."""
    generator = ensure_rng(rng)
    k = min(k, len(population))
    if k <= 0:
        return []
    return generator.sample(list(population), k)


def spawn_seeds(rng: RngLike, count: int) -> list:
    """Derive ``count`` independent integer seeds from ``rng``.

    Used to hand one deterministic seed to each parallel finder run.
    """
    generator = ensure_rng(rng)
    return [generator.randrange(2**63) for _ in range(count)]
