"""A max-heap with lazy decrease/increase-key, keyed by item id.

Phase I of the tangled-logic finder repeatedly extracts the frontier cell
with the maximum connection weight while weights of many cells change after
every addition.  A binary heap with *lazy* updates (stale entries are skipped
at pop time) gives amortized ``O(log n)`` updates without the bookkeeping of
an indexed heap, matching the ``O(Z log |V|)`` bound of the paper's Phase I.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Hashable, Optional, Tuple


class LazyMaxHeap:
    """Max-heap over ``(primary, secondary)`` priorities with lazy updates.

    Items are arbitrary hashable keys.  ``push`` either inserts a new item or
    re-prioritizes an existing one.  Ordering: larger ``primary`` wins; ties
    broken by larger ``secondary``; remaining ties by insertion order (older
    first), which keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._current: dict = {}
        self._counter = itertools.count()
        #: Lifetime push count (inserts + re-prioritizations) — telemetry.
        self.pushes = 0

    def __len__(self) -> int:
        return len(self._current)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._current

    def push(self, item: Hashable, primary: float, secondary: float = 0.0) -> None:
        """Insert ``item`` or update its priority."""
        entry = (-primary, -secondary, next(self._counter), item)
        self._current[item] = (primary, secondary)
        self.pushes += 1
        heapq.heappush(self._heap, entry)

    def discard(self, item: Hashable) -> None:
        """Remove ``item`` if present (lazily; heap entry is skipped later)."""
        self._current.pop(item, None)

    def priority(self, item: Hashable) -> Optional[Tuple[float, float]]:
        """Current ``(primary, secondary)`` priority of ``item`` or ``None``."""
        return self._current.get(item)

    def pop(self) -> Tuple[Hashable, float, float]:
        """Remove and return ``(item, primary, secondary)`` with max priority.

        Raises :class:`KeyError` when empty.
        """
        while self._heap:
            neg_primary, neg_secondary, _, item = heapq.heappop(self._heap)
            live = self._current.get(item)
            if live is not None and live == (-neg_primary, -neg_secondary):
                del self._current[item]
                return item, -neg_primary, -neg_secondary
        raise KeyError("pop from empty LazyMaxHeap")

    def peek(self) -> Tuple[Hashable, float, float]:
        """Return the max entry without removing it."""
        while self._heap:
            neg_primary, neg_secondary, _, item = self._heap[0]
            live = self._current.get(item)
            if live is not None and live == (-neg_primary, -neg_secondary):
                return item, -neg_primary, -neg_secondary
            heapq.heappop(self._heap)
        raise KeyError("peek from empty LazyMaxHeap")
