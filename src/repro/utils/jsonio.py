"""Tiny JSON / JSON-Lines helpers shared by the CLI and the service layer."""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List


def read_json_file(path: str) -> Any:
    """Parse one JSON document from ``path``.

    Raises :class:`repro.errors.ParseError` with the offending path on
    malformed input, matching the package's other readers.
    """
    from repro.errors import ParseError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as error:
        raise ParseError(f"cannot read JSON file: {error}", path=path) from error
    except json.JSONDecodeError as error:
        raise ParseError(
            f"malformed JSON: {error.msg}", path=path, line=error.lineno
        ) from error


def write_jsonl(path: str, rows: Iterable[Dict[str, Any]]) -> int:
    """Write ``rows`` as JSON Lines; returns the number of rows written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSON-Lines file back into a list of dicts."""
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
