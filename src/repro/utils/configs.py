"""Validated dataclass-config overrides.

``dataclasses.replace`` surfaces an unknown keyword as a bare ``TypeError``
whose message names ``__init__`` instead of the config the caller typed.
:func:`replace_checked` front-loads the field check so every config in the
package (``FinderConfig``, the flow stage configs) rejects unknown keys with
an error that names the config class and lists its valid fields.
"""

from __future__ import annotations

import dataclasses
from typing import Type, TypeVar

ConfigT = TypeVar("ConfigT")


def replace_checked(
    config: ConfigT, error_cls: Type[Exception], **overrides
) -> ConfigT:
    """``dataclasses.replace`` that rejects unknown fields helpfully.

    Args:
        config: a dataclass instance to copy-with-changes.
        error_cls: exception type raised on unknown keys (each subsystem
            keeps its own error family, e.g. ``FinderError`` / ``FlowError``).
        **overrides: field values to replace.

    Raises:
        ``error_cls`` naming the unknown key(s) and listing valid fields.
    """
    valid = [field.name for field in dataclasses.fields(config) if field.init]
    unknown = sorted(set(overrides) - set(valid))
    if unknown:
        cls = type(config).__name__
        raise error_cls(
            f"unknown {cls} field(s) {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(valid)}"
        )
    return dataclasses.replace(config, **overrides)
