"""Wall-clock timing helper used by the experiment harnesses.

A thin wrapper over the observability layer's :func:`repro.obs.trace.clock`
— the codebase's single monotonic clock — so stage timings, job durations
and span durations all come from the same time source.
"""

from __future__ import annotations

from repro.obs import trace


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = trace.clock()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = trace.clock() - self.start

    @property
    def minutes(self) -> float:
        """Elapsed time in minutes (the unit Table 2 reports)."""
        return self.elapsed / 60.0
