"""Small generic utilities shared across the package."""

from repro.utils.rng import ensure_rng, sample_distinct
from repro.utils.timer import Timer
from repro.utils.lazyheap import LazyMaxHeap
from repro.utils.unionfind import UnionFind
from repro.utils.tables import format_table
from repro.utils.jsonio import read_json_file, read_jsonl, write_jsonl

__all__ = [
    "ensure_rng",
    "sample_distinct",
    "Timer",
    "LazyMaxHeap",
    "UnionFind",
    "format_table",
    "read_json_file",
    "read_jsonl",
    "write_jsonl",
]
