"""Small generic utilities shared across the package."""

from repro.utils.rng import ensure_rng, sample_distinct
from repro.utils.timer import Timer
from repro.utils.lazyheap import LazyMaxHeap
from repro.utils.unionfind import UnionFind
from repro.utils.tables import format_table

__all__ = [
    "ensure_rng",
    "sample_distinct",
    "Timer",
    "LazyMaxHeap",
    "UnionFind",
    "format_table",
]
