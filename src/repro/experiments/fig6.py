"""Figures 1 + 6 — congestion hotspots coincide with the found GTLs.

Figure 1 shows the routing-congestion map of the placed industrial design
with hotspots over the dissolved-ROM regions; Figure 6 shows the
tangled-logic finder's solutions on the same placement and the paper notes
they "match almost exactly".  This harness places the industrial-like
design, builds the RUDY congestion map, and measures that coincidence: the
fraction of >=100% tiles containing found-GTL cells, and the mean occupancy
of GTL tiles versus the rest of the die.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.flow import detect
from repro.finder import FinderConfig
from repro.generators.industrial import IndustrialSpec, generate_industrial
from repro.placement import place
from repro.routing import build_congestion_map, congestion_stats

#: Calibration shared by fig6/fig7: average tile occupancy of a routable
#: technology; hotspots are the tail above 100%.
TARGET_AVERAGE_OCCUPANCY = 0.32
GRID: Tuple[int, int] = (24, 24)
UTILIZATION = 0.5


def ascii_congestion_map(occupancy: np.ndarray) -> str:
    """ASCII heat map: '#' >=100%, '+' >=90%, '.' >=50% of capacity."""
    nx, ny = occupancy.shape
    lines = []
    for j in range(ny - 1, -1, -1):
        row = []
        for i in range(nx):
            value = occupancy[i, j]
            row.append("#" if value >= 1 else "+" if value >= 0.9 else "." if value >= 0.5 else " ")
        lines.append("".join(row))
    return "\n".join(lines)


def run_fig6(
    spec: Optional[IndustrialSpec] = None,
    num_seeds: int = 128,
    seed: int = 2010,
    workers: int = 1,
    show_map: bool = True,
) -> ExperimentResult:
    """Reproduce Figures 1 and 6 on the industrial-like design."""
    if spec is None:
        spec = IndustrialSpec()
    netlist, _ = generate_industrial(spec, seed=seed)
    report = detect(
        netlist, FinderConfig(num_seeds=num_seeds, seed=seed + 1, workers=workers)
    )
    placement = place(netlist, utilization=UTILIZATION)
    cmap = build_congestion_map(
        placement, grid=GRID, target_average_occupancy=TARGET_AVERAGE_OCCUPANCY
    )
    occupancy = cmap.occupancy
    stats = congestion_stats(cmap)

    nx, ny = GRID
    gtl_cells = set()
    for gtl in report.gtls:
        gtl_cells.update(gtl.cells)
    gtl_tiles = set()
    for cell in gtl_cells:
        i = min(int(placement.x[cell] / cmap.tile_width), nx - 1)
        j = min(int(placement.y[cell] / cmap.tile_height), ny - 1)
        gtl_tiles.add((i, j))
    hot_tiles = {
        (i, j) for i in range(nx) for j in range(ny) if occupancy[i, j] >= 1.0
    }
    coincidence = (
        len(hot_tiles & gtl_tiles) / len(hot_tiles) if hot_tiles else 0.0
    )
    gtl_occ = float(np.mean([occupancy[t] for t in gtl_tiles])) if gtl_tiles else 0.0
    other = [
        occupancy[i, j]
        for i in range(nx)
        for j in range(ny)
        if (i, j) not in gtl_tiles
    ]
    other_occ = float(np.mean(other)) if other else 0.0

    result = ExperimentResult(
        name="Figures 1+6 — hotspots coincide with found GTLs",
        headers=["quantity", "value"],
        rows=[
            ["GTLs found", report.num_gtls],
            ["hot (>=100%) tiles", len(hot_tiles)],
            ["hot tiles containing GTL cells", len(hot_tiles & gtl_tiles)],
            ["hot-tile/GTL coincidence", round(coincidence, 2)],
            ["mean occupancy of GTL tiles", round(gtl_occ, 2)],
            ["mean occupancy elsewhere", round(other_occ, 2)],
            ["peak occupancy", round(stats.max_occupancy, 2)],
        ],
    )
    if show_map:
        result.notes.append("congestion map (Fig 1):\n" + ascii_congestion_map(occupancy))
    result.notes.append(
        "paper: the GTLs captured in Fig 6 match almost exactly the routing "
        "hotspots in the upper part of Fig 1"
    )
    return result


if __name__ == "__main__":
    print(run_fig6().render())
