"""Table 3 — GTLs found on the industrial circuit.

Paper setup: a 65 nm commercial ASIC whose five dissolved-ROM blocks are
the ground-truth GTLs (sizes 31880/31914/31754/32002/10932); the method
recovers each within tens of cells (e.g. 31880 designed -> 31835 found),
with cuts of a few dozen nets and GTL-Scores ~0.025.

This harness runs on the industrial-like substitute (DESIGN.md §4), which
preserves the ground-truth ROM membership so designed-vs-found sizes are
exact.  Default block sizes are ~1/50 of the paper's; pass a custom
``spec`` for larger runs.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.overlap import match_to_ground_truth
from repro.experiments.common import ExperimentResult
from repro.flow import detect
from repro.finder import FinderConfig
from repro.generators.industrial import IndustrialSpec, generate_industrial


def run_table3(
    spec: Optional[IndustrialSpec] = None,
    num_seeds: int = 128,
    seed: int = 2010,
    workers: int = 1,
) -> ExperimentResult:
    """Reproduce Table 3.

    Args:
        spec: industrial-like design parameters (default: five dissolved
            ROMs, four large + one small, in ~12K gates of modular glue).
        num_seeds: finder seeds (the small block needs ~100+ to be hit).
        seed: RNG seed.
        workers: process-parallel seed runs.
    """
    if spec is None:
        spec = IndustrialSpec()
    netlist, truth = generate_industrial(spec, seed=seed)
    config = FinderConfig(num_seeds=num_seeds, seed=seed + 1, workers=workers)
    report = detect(netlist, config)
    matches = match_to_ground_truth(truth, report.gtls)

    result = ExperimentResult(
        name="Table 3 — GTLs found on the industrial-like circuit",
        headers=[
            "size of GTL in design",
            "size of GTL found",
            "cut",
            "GTL-Score",
            "miss%",
            "over%",
        ],
    )
    for match in matches:
        if match.found is None:
            result.rows.append([len(match.truth), "(missed)", "-", "-", 100.0, 0.0])
        else:
            result.rows.append(
                [
                    len(match.truth),
                    match.found.size,
                    match.found.cut,
                    round(match.found.gtl_sd_score, 4),
                    round(100.0 * match.miss, 2),
                    round(100.0 * match.over, 2),
                ]
            )
    result.notes.append(
        "paper: designed 31880/31914/31754/32002/10932 -> found within ~50 "
        "cells each, cuts 28-36, GTL-Score 0.025-0.028"
    )
    return result


if __name__ == "__main__":
    print(run_table3().render())
