"""Figure 5 — nGTL-S / GTL-SD / ratio-cut along one Bigblue1 ordering.

The paper extracts groups from a single linear ordering of Bigblue1 cells
and plots all three metrics against the group size:

* the ratio-cut curve is much flatter and its global minimum sits at the
  right end — ratio cut overly favors large groups;
* both GTL metrics share an interior global minimum (they identify the
  same GTL), with the density-aware score dipping lowest;
* the nGTL-Score hovers around 1 away from the GTL, confirming the
  normalization.
"""

from __future__ import annotations

from repro.analysis.curves import metric_comparison_curves
from repro.experiments.common import ExperimentResult
from repro.flow import detect
from repro.finder import FinderConfig
from repro.generators.ispd_like import default_bigblue1_like, generate_ispd_like
from repro.utils.rng import ensure_rng


def run_fig5(
    scale: float = 0.25,
    seed: int = 2010,
    probe_seeds: int = 24,
) -> ExperimentResult:
    """Reproduce Figure 5 on the bigblue1-like design.

    A quick finder pass locates the GTLs; the figure's single linear
    ordering is grown from a seed inside the *weakest* one (the paper's
    bigblue1 GTL has ratio cut ~0.06 — a moderately tangled structure) and
    extended far past it, so the ratio-cut curve has room to keep falling
    toward its right end while the GTL metrics bottom out at the structure
    boundary.
    """
    spec = default_bigblue1_like(scale)
    netlist, _ = generate_ispd_like(spec, seed=seed)
    report = detect(
        netlist, FinderConfig(num_seeds=probe_seeds, seed=seed + 1)
    )
    rng = ensure_rng(seed + 2)
    # The ordering must stay well short of the full design: absorbing
    # (nearly) everything drives the cut toward zero and every metric down,
    # which is why the paper caps Z at 100K on million-cell designs.
    cap = int(0.5 * netlist.num_cells)
    if report.gtls:
        target = report.gtls[-1]  # weakest score = most moderate structure
        seed_cell = rng.choice(sorted(target.cells))
        max_length = min(cap, max(12 * target.size, 2000))
    else:
        seed_cell = rng.choice(netlist.movable_cells())
        max_length = min(cap, max(2000, netlist.num_cells // 4))

    curves = metric_comparison_curves(netlist, seed_cell, max_length)

    result = ExperimentResult(name="Figure 5 — metric comparison along one ordering")
    for curve in curves:
        result.series[curve.label] = list(zip(curve.sizes, curve.values))

    by_label = {c.label: c for c in curves}
    ngtl, gtl_sd, ratio = by_label["nGTL-S"], by_label["GTL-SD"], by_label["ratio-cut"]
    n_min_size, n_min = ngtl.minimum
    d_min_size, d_min = gtl_sd.minimum
    r_min_size, _ = ratio.minimum
    ordering_length = ngtl.sizes[-1]

    result.notes.append(
        f"nGTL-S min {n_min:.3f} at size {n_min_size}; GTL-SD min {d_min:.4f} "
        f"at size {d_min_size}; both interior (ordering length {ordering_length})"
    )
    result.notes.append(
        f"ratio-cut min at size {r_min_size} "
        f"({'right end' if r_min_size >= 0.95 * ordering_length else 'interior'})"
        " — paper: ratio cut is flat with its minimum at the right end"
    )
    mean_ngtl = sum(ngtl.values) / len(ngtl.values)
    result.notes.append(
        f"nGTL-S mean over ordering {mean_ngtl:.2f}; paper: values mostly around 1"
    )
    return result


if __name__ == "__main__":
    print(run_fig5().render())
