"""Figure 3 — density-aware GTL-Score version of Figure 2.

Same workload as Figure 2; the paper's point is that the density-aware
GTL-SD score reveals the same planted GTL but with a much more dramatic
local-minimum contrast.  The harness therefore also reports the
minimum-contrast ratio of the two metrics (an ablation of the density
exponent scaling — DESIGN.md §6).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig2 import run_fig2


def run_fig3(
    num_cells: int = 25_000,
    gtl_size: int = 4_000,
    seed: int = 2010,
) -> ExperimentResult:
    """Reproduce Figure 3 and the Fig2-vs-Fig3 contrast comparison."""
    sd = run_fig2(
        num_cells=num_cells,
        gtl_size=gtl_size,
        seed=seed,
        metric="gtl_sd",
        name="Figure 3 — density-aware GTL-Score vs group size",
    )
    ngtl = run_fig2(num_cells=num_cells, gtl_size=gtl_size, seed=seed)

    def contrast(result: ExperimentResult) -> float:
        points = result.series["seed inside GTL"]
        values = [v for _, v in points]
        minimum = min(values)
        peak = max(values)
        return peak / max(minimum, 1e-12)

    sd_contrast = contrast(sd)
    ngtl_contrast = contrast(ngtl)
    sd.notes.append(
        f"minimum contrast (peak/min of inside curve): GTL-SD {sd_contrast:.1f}x "
        f"vs nGTL-S {ngtl_contrast:.1f}x; paper: GTL-SD contrast is "
        "'more dramatic'"
    )
    return sd


if __name__ == "__main__":
    print(run_fig3().render())
