"""Experiment harnesses — one per table and figure of the paper.

Every harness is a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose ``render()``
prints the same rows/series the paper reports.  Scales default to
laptop-size workloads; pass ``scale=1.0`` (and the paper's seed counts) to
approach paper scale.

| Paper artifact | Harness |
|----------------|---------|
| Table 1        | :func:`repro.experiments.table1.run_table1` |
| Table 2        | :func:`repro.experiments.table2.run_table2` |
| Table 3        | :func:`repro.experiments.table3.run_table3` |
| Figure 2       | :func:`repro.experiments.fig2.run_fig2` |
| Figure 3       | :func:`repro.experiments.fig3.run_fig3` |
| Figure 4       | :func:`repro.experiments.fig4.run_fig4` |
| Figure 5       | :func:`repro.experiments.fig5.run_fig5` |
| Figures 1+6    | :func:`repro.experiments.fig6.run_fig6` |
| Figure 7       | :func:`repro.experiments.fig7.run_fig7` |
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7

__all__ = [
    "ExperimentResult",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
]
