"""Figure 2 — nGTL-Score versus group size for two cell agglomerations.

Paper setup: a random graph with 250K cells containing one planted GTL of
40K cells.  Growing a group from a seed *outside* the GTL yields a curve
that starts ~0.3 and asymptotically approaches ~0.9; growing from a seed
*inside* rises past 1.5 and then drops precipitously to a local minimum of
~0.1 exactly when the whole GTL has been absorbed, rising again afterwards.

Default scale is 1/10 of the paper (25K cells / 4K GTL).
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.curves import agglomeration_curve
from repro.experiments.common import ExperimentResult
from repro.generators.random_gtl import planted_gtl_graph
from repro.utils.rng import ensure_rng


def run_fig2(
    num_cells: int = 25_000,
    gtl_size: int = 4_000,
    seed: int = 2010,
    metric: str = "ngtl_s",
    name: str = "Figure 2 — nGTL-Score vs group size",
) -> ExperimentResult:
    """Reproduce Figure 2 (and, with ``metric="gtl_sd"``, Figure 3).

    Args:
        num_cells: graph size (paper: 250K).
        gtl_size: planted GTL size (paper: 40K).
        seed: RNG seed.
        metric: ``"ngtl_s"`` (Fig 2) or ``"gtl_sd"`` (Fig 3).
        name: result title.
    """
    netlist, truth = planted_gtl_graph(num_cells, [gtl_size], seed=seed)
    gtl = truth[0]
    rng = ensure_rng(seed + 1)
    inside_seed = rng.choice(sorted(gtl))
    outside = [c for c in range(netlist.num_cells) if c not in gtl]
    outside_seed = rng.choice(outside)

    max_length = min(netlist.num_cells - 1, int(2.5 * gtl_size))
    inside_curve = agglomeration_curve(
        netlist, inside_seed, max_length, metric=metric, label="seed inside GTL"
    )
    outside_curve = agglomeration_curve(
        netlist, outside_seed, max_length, metric=metric, label="seed outside GTL"
    )

    result = ExperimentResult(name=name)
    result.series["seed inside GTL"] = list(
        zip(inside_curve.sizes, inside_curve.values)
    )
    result.series["seed outside GTL"] = list(
        zip(outside_curve.sizes, outside_curve.values)
    )

    min_size, min_value = inside_curve.minimum
    result.notes.append(
        f"inside-seed minimum {min_value:.3f} at size {min_size} "
        f"(planted GTL size {gtl_size}); paper: ~0.1 at the GTL boundary"
    )
    tail = outside_curve.values[-max(1, len(outside_curve.values) // 10) :]
    result.notes.append(
        f"outside-seed tail average {sum(tail) / len(tail):.3f}; paper: "
        "curve asymptotically approaches ~0.9"
    )
    return result


if __name__ == "__main__":
    print(run_fig2().render())
