"""Figure 7 — routing congestion after cell inflation using GTL information.

Paper setup: every cell inside the found GTLs is inflated 4x and the design
is re-placed in the same die; compared to the original placement the number
of nets passing through 100%-congested tiles drops from 179K to 36K (~5x),
through 90%-congested tiles from 217K to 113K (~2x), and the average
congestion metric (worst-20% nets) from 136% to 91%.

The shape to reproduce: inflation yields a multi-x reduction of
100%-congested-tile nets, a ~2x reduction at 90%, and pushes the average
congestion below 100%.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult
from repro.flow import detect
from repro.experiments.fig6 import (
    GRID,
    TARGET_AVERAGE_OCCUPANCY,
    UTILIZATION,
    ascii_congestion_map,
)
from repro.finder import FinderConfig
from repro.generators.industrial import IndustrialSpec, generate_industrial
from repro.placement import inflate_cells, place
from repro.routing import build_congestion_map, congestion_stats


def run_fig7(
    spec: Optional[IndustrialSpec] = None,
    num_seeds: int = 128,
    seed: int = 2010,
    inflation: float = 4.0,
    workers: int = 1,
    show_maps: bool = False,
) -> ExperimentResult:
    """Reproduce Figure 7 (and the congestion numbers of Section 5.1.3)."""
    if spec is None:
        spec = IndustrialSpec()
    netlist, _ = generate_industrial(spec, seed=seed)
    report = detect(
        netlist, FinderConfig(num_seeds=num_seeds, seed=seed + 1, workers=workers)
    )
    gtl_cells = set()
    for gtl in report.gtls:
        gtl_cells.update(gtl.cells)

    placement = place(netlist, utilization=UTILIZATION)
    before_map = build_congestion_map(
        placement, grid=GRID, target_average_occupancy=TARGET_AVERAGE_OCCUPANCY
    )
    before = congestion_stats(before_map)

    inflated = inflate_cells(netlist, gtl_cells, factor=inflation)
    re_placement = place(inflated, die=placement.die)
    after_map = build_congestion_map(
        re_placement, grid=GRID, capacity=before_map.capacity
    )
    after = congestion_stats(after_map)

    def ratio(a: int, b: int) -> float:
        return a / b if b else float("inf")

    result = ExperimentResult(
        name="Figure 7 — congestion after 4x cell inflation inside GTLs",
        headers=["metric", "before", "after", "reduction"],
        rows=[
            [
                "nets through 100% tiles",
                before.nets_through_100,
                after.nets_through_100,
                f"{ratio(before.nets_through_100, after.nets_through_100):.1f}x",
            ],
            [
                "nets through 90% tiles",
                before.nets_through_90,
                after.nets_through_90,
                f"{ratio(before.nets_through_90, after.nets_through_90):.1f}x",
            ],
            [
                "avg congestion (worst 20% nets)",
                f"{before.average_congestion:.0%}",
                f"{after.average_congestion:.0%}",
                "-",
            ],
            [
                "peak tile occupancy",
                f"{before.max_occupancy:.0%}",
                f"{after.max_occupancy:.0%}",
                "-",
            ],
        ],
    )
    result.notes.append(
        f"GTLs found: {report.num_gtls}; cells inflated: {len(gtl_cells)} "
        f"({len(gtl_cells) / netlist.num_cells:.0%} of the design) by "
        f"{inflation:g}x"
    )
    result.notes.append(
        "paper: 179K->36K (5x) through 100% tiles, 217K->113K (~2x) through "
        "90% tiles, average congestion 136%->91%"
    )
    if show_maps:
        result.notes.append("before:\n" + ascii_congestion_map(before_map.occupancy))
        result.notes.append("after:\n" + ascii_congestion_map(after_map.occupancy))
    return result


if __name__ == "__main__":
    print(run_fig7(show_maps=True).render())
