"""Table 2 — experiments on ISPD 05/06-shaped placement benchmarks.

Paper setup: six ISPD placement benchmarks (bigblue1-3, adaptec1-3,
211K-1.1M cells), 100 seeds each; reported: number of GTLs found, the top-3
GTLs' size / cut / GTL-S / GTL-SD, and the runtime in minutes.

This harness runs the synthetic ISPD-like suite by default (see DESIGN.md
§4).  Real Bookshelf benchmarks can be substituted by passing parsed
netlists via ``netlists``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.flow import detect
from repro.finder import FinderConfig
from repro.generators.ispd_like import generate_ispd_like, ispd_like_suite
from repro.netlist.hypergraph import Netlist


def run_table2(
    scale: float = 0.25,
    num_seeds: int = 100,
    seed: int = 2010,
    workers: int = 1,
    top_k: int = 3,
    netlists: Optional[Sequence[Tuple[str, Netlist]]] = None,
) -> ExperimentResult:
    """Reproduce Table 2.

    Args:
        scale: size multiplier on the synthetic suite (0.25 default; 1.0 is
            ~17K-65K cells per design — the paper's designs are ~15x that).
        num_seeds: finder seeds per benchmark (paper: 100).
        seed: RNG seed.
        workers: process-parallel seed runs (paper: 8 pthreads).
        top_k: how many top GTLs to report per benchmark (paper: 3).
        netlists: optional explicit ``(name, netlist)`` benchmarks, e.g.
            parsed from real ISPD Bookshelf files.
    """
    result = ExperimentResult(
        name="Table 2 — ISPD-like placement benchmarks",
        headers=[
            "case",
            "|V|",
            "#seeds",
            "#GTLs",
            "structure",
            "GTL size",
            "cut",
            "GTL-S",
            "GTL-SD",
            "runtime(m)",
        ],
    )

    if netlists is None:
        benches = []
        for index, spec in enumerate(ispd_like_suite(scale)):
            netlist, _ = generate_ispd_like(spec, seed=seed + index)
            benches.append((spec.name, netlist))
    else:
        benches = list(netlists)

    for bench_index, (name, netlist) in enumerate(benches):
        config = FinderConfig(
            num_seeds=num_seeds, seed=seed + bench_index, workers=workers
        )
        report = detect(netlist, config)
        # The report's own runtime, not wall clock around detect(): a cache
        # hit must still show the detection time the paper column compares.
        runtime_minutes = round(report.runtime_seconds / 60.0, 2)
        top = report.top(top_k)
        if not top:
            result.rows.append(
                [name, netlist.num_cells, num_seeds, 0, "-", "-", "-", "-", "-",
                 runtime_minutes]
            )
            continue
        for rank, gtl in enumerate(top, start=1):
            first = rank == 1
            result.rows.append(
                [
                    name if first else "",
                    netlist.num_cells if first else "",
                    num_seeds if first else "",
                    report.num_gtls if first else "",
                    f"Structure {rank}",
                    gtl.size,
                    gtl.cut,
                    round(gtl.ngtl_score, 3),
                    round(gtl.gtl_sd_score, 3),
                    runtime_minutes if first else "",
                ]
            )

    result.notes.append(
        "paper: 54-112 GTLs per design, top GTL sizes 297-13888, "
        "GTL-S 0.065-0.686, runtimes 77-159 minutes at 8 threads"
    )
    return result


if __name__ == "__main__":
    print(run_table2().render())
