"""Figure 4 — GTLs found in Bigblue1, visualized on the placement.

The paper plots the placed design with each found GTL in its own color;
the GTLs appear as compact colored clots, i.e. a placer puts the cells of a
GTL close together.  Without a display we quantify the same statement: the
spatial dispersion (mean distance to centroid) of each found GTL is
compared against equally sized random cell groups — GTLs should be several
times more compact — and an ASCII map marks GTL locations.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.flow import detect
from repro.finder import FinderConfig
from repro.generators.ispd_like import default_bigblue1_like, generate_ispd_like
from repro.placement import place
from repro.utils.rng import ensure_rng


def _dispersion(x: np.ndarray, y: np.ndarray, cells: List[int]) -> float:
    xs, ys = x[cells], y[cells]
    return float(
        np.hypot(xs - xs.mean(), ys - ys.mean()).mean()
    )


def ascii_placement_map(
    placement, groups: List[List[int]], grid: int = 32
) -> str:
    """ASCII rendering of the placement: digits mark GTL tiles."""
    die = placement.die
    tw, th = die.width / grid, die.height / grid
    canvas = [[" "] * grid for _ in range(grid)]
    movable = placement.netlist.movable_cells()
    for cell in movable:
        i = min(int(placement.x[cell] / tw), grid - 1)
        j = min(int(placement.y[cell] / th), grid - 1)
        canvas[j][i] = "."
    for index, group in enumerate(groups):
        mark = str(index % 10)
        for cell in group:
            i = min(int(placement.x[cell] / tw), grid - 1)
            j = min(int(placement.y[cell] / th), grid - 1)
            canvas[j][i] = mark
    return "\n".join("".join(row) for row in reversed(canvas))


def run_fig4(
    scale: float = 0.25,
    num_seeds: int = 64,
    seed: int = 2010,
    workers: int = 1,
    show_map: bool = True,
) -> ExperimentResult:
    """Reproduce Figure 4 on the bigblue1-like design."""
    spec = default_bigblue1_like(scale)
    netlist, _ = generate_ispd_like(spec, seed=seed)
    report = detect(
        netlist, FinderConfig(num_seeds=num_seeds, seed=seed + 1, workers=workers)
    )
    placement = place(netlist)

    rng = ensure_rng(seed + 2)
    movable = netlist.movable_cells()
    result = ExperimentResult(
        name="Figure 4 — found GTLs cluster spatially after placement",
        headers=["GTL", "size", "dispersion", "random dispersion", "compactness x"],
    )
    groups = []
    for index, gtl in enumerate(report.gtls, start=1):
        cells = sorted(gtl.cells)
        groups.append(cells)
        own = _dispersion(placement.x, placement.y, cells)
        random_groups = [rng.sample(movable, len(cells)) for _ in range(5)]
        random_dispersion = float(
            np.mean(
                [_dispersion(placement.x, placement.y, g) for g in random_groups]
            )
        )
        result.rows.append(
            [
                index,
                len(cells),
                round(own, 1),
                round(random_dispersion, 1),
                round(random_dispersion / max(own, 1e-9), 2),
            ]
        )
    if show_map and groups:
        result.notes.append(
            "placement map (digits = GTL cells, dots = other logic):\n"
            + ascii_placement_map(placement, groups)
        )
    result.notes.append(
        "paper: Fig 4 shows each found GTL as a compact colored clot in the "
        "Bigblue1 placement"
    )
    return result


if __name__ == "__main__":
    print(run_fig4().render())
