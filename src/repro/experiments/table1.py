"""Table 1 — experiments on random graphs with planted GTLs.

Paper setup: four random graphs (10K..800K nodes) with known planted GTLs
(500x1, 2K+15K, 5K, 40Kx6), 100 seeds each; reported per planted GTL: the
found size, nGTL-Score, density-aware GTL-Score, miss%, over%.  The paper
finds every GTL, misses at most 0.14% of nodes and over-includes at most
0.5%.

Default scale here is 1/10 of the paper (Python single-process); pass
``scale=1.0`` for paper-size graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.overlap import match_to_ground_truth
from repro.experiments.common import ExperimentResult
from repro.flow import detect
from repro.finder import FinderConfig
from repro.generators.random_gtl import planted_gtl_graph

#: The paper's four cases: (|V|, planted sizes).
PAPER_CASES: Tuple[Tuple[int, Tuple[int, ...]], ...] = (
    (10_000, (500,)),
    (100_000, (2_000, 15_000)),
    (100_000, (5_000,)),
    (800_000, (40_000,) * 6),
)


def scaled_cases(scale: float) -> List[Tuple[int, Tuple[int, ...]]]:
    """The paper's cases with every size multiplied by ``scale``."""
    cases = []
    for num_cells, sizes in PAPER_CASES:
        cases.append(
            (
                max(1000, int(num_cells * scale)),
                tuple(max(50, int(s * scale)) for s in sizes),
            )
        )
    return cases


def run_table1(
    scale: float = 0.1,
    num_seeds: int = 100,
    seed: int = 2010,
    workers: int = 1,
    cases: Optional[Sequence[Tuple[int, Sequence[int]]]] = None,
) -> ExperimentResult:
    """Reproduce Table 1.

    Args:
        scale: size multiplier on the paper's graphs (0.1 default).
        num_seeds: finder seeds per case (paper: 100).
        seed: RNG seed for generation and the finder.
        workers: process-parallel seed runs.
        cases: explicit ``(num_cells, gtl_sizes)`` cases (overrides scale).
    """
    if cases is None:
        cases = scaled_cases(scale)

    result = ExperimentResult(
        name="Table 1 — random graphs with planted GTLs",
        headers=[
            "case",
            "|V|",
            "planted",
            "#seeds",
            "#found",
            "size found",
            "nGTL-S",
            "GTL-SD",
            "miss%",
            "over%",
        ],
    )

    for case_index, (num_cells, gtl_sizes) in enumerate(cases, start=1):
        netlist, truth = planted_gtl_graph(
            num_cells, list(gtl_sizes), seed=seed + case_index
        )
        config = FinderConfig(
            num_seeds=num_seeds, seed=seed + 100 + case_index, workers=workers
        )
        report = detect(netlist, config)
        matches = match_to_ground_truth(truth, report.gtls)
        detected = sum(1 for m in matches if m.detected)

        planted_text = "+".join(str(len(t)) for t in truth)
        first = True
        for match in matches:
            if match.found is None:
                row = [
                    case_index if first else "",
                    num_cells if first else "",
                    planted_text if first else "",
                    num_seeds if first else "",
                    detected if first else "",
                    "(missed)",
                    "-",
                    "-",
                    100.0,
                    0.0,
                ]
            else:
                row = [
                    case_index if first else "",
                    num_cells if first else "",
                    planted_text if first else "",
                    num_seeds if first else "",
                    detected if first else "",
                    match.found.size,
                    round(match.found.ngtl_score, 4),
                    round(match.found.gtl_sd_score, 4),
                    round(100.0 * match.miss, 2),
                    round(100.0 * match.over, 2),
                ]
            result.rows.append(row)
            first = False

    result.notes.append(
        "paper: all GTLs found, miss <= 0.14%, over <= 0.5%, scores ~0.001-0.1"
    )
    return result


if __name__ == "__main__":
    print(run_table1().render())
