"""Shared experiment-result container and cached detection entry point.

Experiment harnesses call :func:`detect` instead of
:func:`repro.finder.find_tangled_logic` directly.  When the environment
variable :data:`CACHE_ENV_VAR` names a directory, deterministic runs are
served from (and recorded into) a :class:`repro.service.store.ResultStore`
there — re-running a table harness after an interrupted session only pays
for the rows it has not seen yet.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import write_csv
from repro.finder.config import FinderConfig
from repro.finder.finder import find_tangled_logic
from repro.finder.result import FinderReport
from repro.netlist.hypergraph import Netlist
from repro.utils.tables import format_table

#: Set this to a directory path to memoize experiment detection runs.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def detect(netlist: Netlist, config: Optional[FinderConfig] = None, **overrides) -> FinderReport:
    """Cache-aware drop-in for :func:`repro.finder.find_tangled_logic`.

    Without :data:`CACHE_ENV_VAR` in the environment (or for
    nondeterministic configs, ``seed=None``) this is a plain finder call.
    """
    base = config or FinderConfig()
    if overrides:
        base = base.with_overrides(**overrides)
    cache_dir = os.environ.get(CACHE_ENV_VAR, "")
    if not cache_dir or base.seed is None:
        return find_tangled_logic(netlist, base)

    # Deliberately not routed through BatchRunner: a crash in an in-process
    # experiment run is a bug to surface with its original type and
    # traceback, not a transient worker failure to stringify and retry.
    from repro.service.fingerprint import job_fingerprint
    from repro.service.store import ResultStore

    with ResultStore(cache_dir) as store:
        fingerprint = job_fingerprint(netlist, base)
        report = store.get(fingerprint)
        if report is None:
            report = find_tangled_logic(netlist, base)
            store.put(fingerprint, report)
    return report


@dataclass
class ExperimentResult:
    """Output of one table/figure harness.

    Attributes:
        name: experiment id, e.g. ``"Table 1"``.
        headers: table column names.
        rows: table rows (paper-shaped).
        series: named data series for figures: label -> (x, y) pairs.
        notes: free-form observations (e.g. paper-vs-measured commentary).
    """

    name: str
    headers: Sequence[str] = field(default_factory=list)
    rows: List[Sequence] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report."""
        parts = [f"== {self.name} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        for label, points in self.series.items():
            if not points:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            min_index = min(range(len(ys)), key=ys.__getitem__)
            parts.append(
                f"series {label}: {len(points)} points, "
                f"x in [{xs[0]:g}, {xs[-1]:g}], "
                f"min {ys[min_index]:.4g} at x={xs[min_index]:g}, "
                f"last {ys[-1]:.4g}"
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def write_series_csv(self, path: str) -> None:
        """Dump all series to one CSV (columns: series, x, y)."""
        rows = []
        for label, points in self.series.items():
            for x, y in points:
                rows.append((label, x, y))
        write_csv(path, ["series", "x", "y"], rows)
