"""Shared experiment-result container (and a deprecated detection shim).

Experiment harnesses call :func:`repro.flow.detect` — a one-stage flow —
instead of :func:`repro.finder.find_tangled_logic` directly.  When the
environment variable ``REPRO_CACHE_DIR`` names a directory, deterministic
runs are served from (and recorded into) a
:class:`repro.service.store.ResultStore` there — re-running a table harness
after an interrupted session only pays for the rows it has not seen yet.

The :func:`detect` defined here is a deprecated alias kept for callers of
the pre-flow API.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import write_csv
from repro.finder.config import FinderConfig
from repro.finder.result import FinderReport
from repro.netlist.hypergraph import Netlist
from repro.utils.tables import format_table

#: Same value as :data:`repro.flow.api.CACHE_ENV_VAR`, duplicated as a
#: literal so importing this module (every experiment harness does) never
#: pulls in the flow/placement stack.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def detect(netlist: Netlist, config: Optional[FinderConfig] = None, **overrides) -> FinderReport:
    """Deprecated alias of :func:`repro.flow.detect` (identical results)."""
    warnings.warn(
        "repro.experiments.common.detect is deprecated; use repro.flow.detect",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.flow import detect as flow_detect

    return flow_detect(netlist, config, **overrides)


@dataclass
class ExperimentResult:
    """Output of one table/figure harness.

    Attributes:
        name: experiment id, e.g. ``"Table 1"``.
        headers: table column names.
        rows: table rows (paper-shaped).
        series: named data series for figures: label -> (x, y) pairs.
        notes: free-form observations (e.g. paper-vs-measured commentary).
    """

    name: str
    headers: Sequence[str] = field(default_factory=list)
    rows: List[Sequence] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report."""
        parts = [f"== {self.name} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        for label, points in self.series.items():
            if not points:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            min_index = min(range(len(ys)), key=ys.__getitem__)
            parts.append(
                f"series {label}: {len(points)} points, "
                f"x in [{xs[0]:g}, {xs[-1]:g}], "
                f"min {ys[min_index]:.4g} at x={xs[min_index]:g}, "
                f"last {ys[-1]:.4g}"
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def write_series_csv(self, path: str) -> None:
        """Dump all series to one CSV (columns: series, x, y)."""
        rows = []
        for label, points in self.series.items():
            for x, y in points:
                rows.append((label, x, y))
        write_csv(path, ["series", "x", "y"], rows)
