"""Nested structures + image output.

Shows two extensions built on the paper's machinery:

1. *Hierarchical GTL detection* — "structures within structures": the
   finder runs recursively inside each found GTL and reports sub-structures
   that are even more tangled than their parent.
2. *PPM image output* — congestion heat maps (Fig 1/7 style) and placement
   maps with colored GTLs (Fig 4/6 style) written as ``.ppm`` files that
   any image viewer opens.

Run:  python examples/hierarchy_and_images.py
"""

from repro import FinderConfig
from repro.analysis import save_congestion_ppm, save_placement_ppm
from repro.finder import find_hierarchical_gtls
from repro.generators import IndustrialSpec, generate_industrial
from repro.placement import place
from repro.routing import build_congestion_map


def main() -> None:
    spec = IndustrialSpec(
        glue_gates=8000, rom_blocks=((6, 48), (5, 32)), num_pads=96
    )
    netlist, _ = generate_industrial(spec, seed=12)
    print(f"design: {netlist}")

    forest = find_hierarchical_gtls(
        netlist, FinderConfig(num_seeds=64, seed=13), max_depth=2
    )
    print(f"\n{len(forest)} top-level GTL(s); nested structure:")
    for index, node in enumerate(forest, start=1):
        print(f"GTL {index}:")
        print(node.summary(indent="  "))

    placement = place(netlist, utilization=0.5)
    groups = [sorted(node.gtl.cells) for node in forest]
    save_placement_ppm(placement, "placement_gtls.ppm", groups=groups)
    print("\nwrote placement_gtls.ppm (colored GTLs on the placed die)")

    cmap = build_congestion_map(
        placement, grid=(32, 32), target_average_occupancy=0.32
    )
    save_congestion_ppm(cmap, "congestion.ppm")
    print("wrote congestion.ppm (RUDY heat map, red = over capacity)")


if __name__ == "__main__":
    main()
