"""Worked observability example: trace one detection run end to end.

Enables the :mod:`repro.obs` tracer around a planted-GTL detection run,
writes the span stream to ``finder_trace.jsonl`` (one JSON object per
line), and prints the aggregated profile — the span tree with self vs.
cumulative time, then the kernel counters (seeds examined, absorb steps,
heap pushes/compactions).

This is the library-level equivalent of the CLI flags::

    tangled-logic find-gtl design.hgr --seeds 16   # no telemetry
    tangled-logic flow run flow.json --trace out.jsonl --profile

Run:  python examples/trace_finder.py [--cells N] [--seeds K]
The checked-in ``examples/finder_trace.jsonl`` was produced by the
default (small) invocation; re-running overwrites it deterministically
apart from timings and span ids.
"""

import argparse
import os

from repro import FinderConfig
from repro.finder.finder import TangledLogicFinder
from repro.generators import planted_gtl_graph
from repro.obs import RunReport, trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=2_000)
    parser.add_argument("--seeds", type=int, default=8)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "finder_trace.jsonl"),
    )
    args = parser.parse_args()

    netlist, _ = planted_gtl_graph(
        num_cells=args.cells, gtl_sizes=[max(50, args.cells // 10)], seed=42
    )
    config = FinderConfig(num_seeds=args.seeds, metric="gtl_sd", seed=7)

    trace.enable(jsonl_path=args.out)
    try:
        report = TangledLogicFinder(netlist, config).run()
        run_report = RunReport.from_tracer()
    finally:
        trace.disable()

    print(f"detected {report.num_gtls} GTL(s) on {netlist}")
    print(f"wrote {len(run_report.spans)} span(s) to {args.out}\n")
    print(run_report.summary())

    # The JSONL file round-trips: a later process can rebuild the profile
    # without the tracer that produced it.
    replayed = RunReport.from_jsonl(args.out)
    assert len(replayed.spans) == len(run_report.spans)


if __name__ == "__main__":
    main()
