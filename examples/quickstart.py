"""Quickstart: find tangled logic in a graph with a known planted structure.

Generates a 10K-cell random hypergraph containing one 800-cell group that
is far more interconnected internally than externally, runs the paper's
three-phase finder, and checks the result against the ground truth.

Run:  python examples/quickstart.py
"""

from repro import FinderConfig, find_tangled_logic
from repro.generators import planted_gtl_graph


def main() -> None:
    netlist, ground_truth = planted_gtl_graph(
        num_cells=10_000, gtl_sizes=[800], seed=42
    )
    print(f"generated {netlist} with one planted 800-cell GTL")

    config = FinderConfig(
        num_seeds=32,  # independent random seed runs (paper: 100)
        metric="gtl_sd",  # density-aware GTL-Score for Phase II minima
        seed=7,  # reproducible run
    )
    report = find_tangled_logic(netlist, config)
    print(report.summary())

    planted = ground_truth[0]
    best = max(report.gtls, key=lambda g: len(g.cells & planted))
    missed = len(planted - best.cells)
    extra = len(best.cells - planted)
    print(
        f"\nbest match vs ground truth: found {best.size} cells, "
        f"missed {missed}, extra {extra}"
    )
    print(
        f"scores: nGTL-S={best.ngtl_score:.4f}, GTL-SD={best.gtl_sd_score:.4f} "
        f"(an average-quality group scores ~1; below ~0.1 is a strong GTL)"
    )


if __name__ == "__main__":
    main()
