"""Quickstart: find tangled logic in a graph with a known planted structure.

Generates a 10K-cell random hypergraph containing one 800-cell group that
is far more interconnected internally than externally, runs the paper's
three-phase finder as a one-stage :class:`repro.flow.Flow`, and checks the
result against the ground truth.

Run:  python examples/quickstart.py
Environment: REPRO_QUICKSTART_CELLS / REPRO_QUICKSTART_SEEDS shrink the
workload (used by CI smoke runs).
"""

import os

from repro import FinderConfig
from repro.flow import DetectStage, Flow
from repro.generators import planted_gtl_graph


def main() -> None:
    num_cells = int(os.environ.get("REPRO_QUICKSTART_CELLS", 10_000))
    num_seeds = int(os.environ.get("REPRO_QUICKSTART_SEEDS", 32))
    # 800 planted cells at the default 10K size, scaled proportionally.
    gtl_size = max(50, num_cells * 800 // 10_000)
    netlist, ground_truth = planted_gtl_graph(
        num_cells=num_cells, gtl_sizes=[gtl_size], seed=42
    )
    print(f"generated {netlist} with one planted {gtl_size}-cell GTL")

    config = FinderConfig(
        num_seeds=num_seeds,  # independent random seed runs (paper: 100)
        metric="gtl_sd",  # density-aware GTL-Score for Phase II minima
        seed=7,  # reproducible run (also makes the stage cacheable)
    )
    flow = Flow([DetectStage(config)], name="quickstart")
    result = flow.run(netlist)
    print(result.summary())
    report = result.artifact("detect")
    print(report.summary())

    planted = ground_truth[0]
    if not report.gtls:
        print("\nno GTLs found at this scale; raise REPRO_QUICKSTART_SEEDS")
        return
    best = max(report.gtls, key=lambda g: len(g.cells & planted))
    missed = len(planted - best.cells)
    extra = len(best.cells - planted)
    print(
        f"\nbest match vs ground truth: found {best.size} cells, "
        f"missed {missed}, extra {extra}"
    )
    print(
        f"scores: nGTL-S={best.ngtl_score:.4f}, GTL-SD={best.gtl_sd_score:.4f} "
        f"(an average-quality group scores ~1; below ~0.1 is a strong GTL)"
    )


if __name__ == "__main__":
    main()
