"""Serving round trip: start the daemon, submit jobs, stream events.

Spins up a :class:`repro.server.ServerDaemon` in-process on a private
socket (exactly what ``repro serve`` runs), generates a small design, and
walks the client-facing surface:

1. ``ping`` — liveness and protocol version;
2. a **cold** detect submit, streaming its ``queued -> started -> result``
   lifecycle events;
3. the identical **warm** submit — answered inline from the result store,
   typically ~1 ms and never touching the worker pool;
4. a fire-and-forget submit (``wait=False``) polled by job id;
5. a two-stage **flow** submit with per-stage progress events;
6. ``status`` — queue depths, cache hit ratios, recent jobs;
7. graceful drain-and-shutdown.

Run:  python examples/serve_client.py
Environment: REPRO_SERVE_EXAMPLE_CELLS / REPRO_SERVE_EXAMPLE_SEEDS shrink
the workload (used by CI smoke runs).

Against a daemon started separately (``repro serve --socket …``), skip the
ServerDaemon part and just use ``Client(socket_path)``.
"""

import os
import tempfile
import time

from repro.generators import planted_gtl_graph
from repro.io.hgr import write_hgr
from repro.server import Client, ServerConfig, ServerDaemon


def main() -> None:
    num_cells = int(os.environ.get("REPRO_SERVE_EXAMPLE_CELLS", 2_000))
    num_seeds = int(os.environ.get("REPRO_SERVE_EXAMPLE_SEEDS", 16))
    workdir = tempfile.mkdtemp(prefix="repro-serve-")
    design = os.path.join(workdir, "design.hgr")
    netlist, _ = planted_gtl_graph(
        num_cells=num_cells, gtl_sizes=[max(50, num_cells // 10)], seed=42
    )
    write_hgr(netlist, design)
    print(f"generated {netlist} -> {design}")

    daemon = ServerDaemon(
        ServerConfig(
            socket_path=os.path.join(workdir, "repro.sock"),
            cache_dir=os.path.join(workdir, "cache"),
            workers=1,
        )
    )
    daemon.start()
    print(f"daemon listening on {daemon.config.socket_path}")
    try:
        client = Client(daemon.config.socket_path)
        pong = client.ping()
        print(f"ping: pid={pong['pid']} protocol=v{pong['protocol']}")

        config = {"num_seeds": num_seeds, "seed": 7}

        print("\n-- cold submit (streamed lifecycle) --")
        start = time.perf_counter()
        cold = client.submit(
            design,
            config=config,
            priority="interactive",
            on_event=lambda e: print(f"   event: {e['event']}"),
        )
        print(
            f"cold: {len(cold['report']['gtls'])} GTL(s) in "
            f"{time.perf_counter() - start:.3f}s (cached={cold['cached']})"
        )

        print("\n-- warm repeat (inline from the result store) --")
        start = time.perf_counter()
        warm = client.submit(design, config=config)
        warm_ms = (time.perf_counter() - start) * 1e3
        assert warm["cached"] and warm["report"] == cold["report"]
        print(f"warm: bit-identical report in {warm_ms:.2f}ms")

        print("\n-- fire-and-forget, polled by job id --")
        ack = client.submit(
            design, config={"num_seeds": num_seeds, "seed": 8}, wait=False
        )
        job_id = ack["job_id"]
        while client.status(job_id)["job"]["state"] not in (
            "done", "failed", "cancelled",
        ):
            time.sleep(0.05)
        polled = client.result(job_id)
        print(f"job {job_id}: {polled['state']} (cached={polled['cached']})")

        print("\n-- flow submit with per-stage progress --")
        flow = client.submit(
            design,
            kind="flow",
            stages=[
                {"stage": "detect", "num_seeds": num_seeds, "seed": 7},
                {"stage": "partition"},
            ],
            on_event=lambda e: print(
                f"   {e['event']}"
                + (f": {e['stage']} ({e['cache']})" if e["event"] == "progress" else "")
            ),
        )
        for row in flow["stages"]:
            print(f"   {row['stage']}: cached={row['cached']} "
                  f"({row['runtime_seconds']:.3f}s)")

        status = client.status()
        print(
            f"\nstatus: {status['counters']['done']} done, "
            f"{status['counters']['warm_hits']} warm hit(s), "
            f"store hit rate {status['store']['hit_rate']:.0%}"
        )

        client.shutdown(drain=True)
    finally:
        daemon.wait_until_stopped(timeout=60)
        daemon.shutdown(drain=False)  # no-op when already stopped
    print("daemon drained and stopped")


if __name__ == "__main__":
    main()
