"""Congestion relief on an industrial-style design (the paper's Figs 1/6/7).

Scenario: a design whose ROM blocks were dissolved into ordinary logic for
timing closure.  The dissolved blocks are tangled — a placer packs them
tightly and creates routing hotspots.  The flow below:

1. generate the design (ground-truth ROM membership retained),
2. find the GTLs with the tangled-logic finder,
3. place and estimate routing congestion (RUDY),
4. inflate the found GTL cells 4x, re-place, and compare congestion.

Run:  python examples/congestion_relief.py
"""

from repro import FinderConfig, find_tangled_logic
from repro.experiments.fig6 import ascii_congestion_map
from repro.generators import IndustrialSpec, generate_industrial
from repro.placement import inflate_cells, place
from repro.routing import build_congestion_map, congestion_stats


def main() -> None:
    spec = IndustrialSpec(
        glue_gates=10_000,
        rom_blocks=((6, 64), (6, 64), (5, 32)),
        num_pads=96,
    )
    netlist, ground_truth = generate_industrial(spec, seed=3)
    print(f"design: {netlist}")
    print(f"dissolved ROM blocks (ground truth): {[len(b) for b in ground_truth]}")

    report = find_tangled_logic(netlist, FinderConfig(num_seeds=96, seed=5))
    print(f"\nfinder: {report.num_gtls} GTL(s) in {report.runtime_seconds:.1f}s")
    print(report.summary())

    placement = place(netlist, utilization=0.5)
    before_map = build_congestion_map(
        placement, grid=(24, 24), target_average_occupancy=0.32
    )
    before = congestion_stats(before_map)
    print("\nBEFORE inflation:", before.summary())
    print(ascii_congestion_map(before_map.occupancy))

    gtl_cells = set()
    for gtl in report.gtls:
        gtl_cells.update(gtl.cells)
    inflated = inflate_cells(netlist, gtl_cells, factor=4.0)
    re_placement = place(inflated, die=placement.die)
    after_map = build_congestion_map(
        re_placement, grid=(24, 24), capacity=before_map.capacity
    )
    after = congestion_stats(after_map)
    print("\nAFTER 4x inflation of GTL cells:", after.summary())
    print(ascii_congestion_map(after_map.occupancy))

    if after.nets_through_100:
        factor = before.nets_through_100 / after.nets_through_100
        print(f"\nnets through fully congested tiles reduced {factor:.1f}x")
    else:
        print("\nall fully congested tiles eliminated")


if __name__ == "__main__":
    main()
