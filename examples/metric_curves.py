"""Reproduce the paper's metric curves (Figures 2, 3 and 5) as CSV files.

Writes three CSVs into the working directory:

* ``fig2_ngtl_curves.csv``  — nGTL-Score vs group size, seeds inside and
  outside a planted GTL;
* ``fig3_gtlsd_curves.csv`` — the density-aware version (sharper minimum);
* ``fig5_metric_comparison.csv`` — nGTL-S / GTL-SD / ratio-cut along one
  linear ordering of a bigblue1-like design.

Run:  python examples/metric_curves.py
"""

from repro.experiments import run_fig2, run_fig3, run_fig5


def main() -> None:
    fig2 = run_fig2(num_cells=25_000, gtl_size=4_000, seed=2010)
    fig2.write_series_csv("fig2_ngtl_curves.csv")
    print(fig2.render())
    print("-> fig2_ngtl_curves.csv\n")

    fig3 = run_fig3(num_cells=25_000, gtl_size=4_000, seed=2010)
    fig3.write_series_csv("fig3_gtlsd_curves.csv")
    print(fig3.render())
    print("-> fig3_gtlsd_curves.csv\n")

    fig5 = run_fig5(scale=0.5, seed=2010)
    fig5.write_series_csv("fig5_metric_comparison.csv")
    print(fig5.render())
    print("-> fig5_metric_comparison.csv")


if __name__ == "__main__":
    main()
