"""Bookshelf round-trip + placement correlation (the paper's Fig 4 flow).

Generates an ISPD-2005-shaped benchmark with embedded logic structures,
writes it in the Bookshelf format the real ISPD benchmarks use, reads it
back, finds the GTLs, places the design, and shows that each found GTL
lands as a compact spatial cluster.

Drop in a real ISPD .aux file to run the identical flow on the original
benchmarks:  python examples/ispd_flow.py [path/to/bigblue1.aux]

Run:  python examples/ispd_flow.py
"""

import sys
import tempfile

import numpy as np

from repro import FinderConfig, find_tangled_logic
from repro.experiments.fig4 import ascii_placement_map
from repro.generators import default_bigblue1_like, generate_ispd_like
from repro.io.bookshelf import read_bookshelf, write_bookshelf
from repro.placement import place


def main() -> None:
    if len(sys.argv) > 1:
        aux_path = sys.argv[1]
        print(f"reading Bookshelf design {aux_path}")
        netlist, _ = read_bookshelf(aux_path)
    else:
        spec = default_bigblue1_like(scale=0.25)
        generated, truth = generate_ispd_like(spec, seed=11)
        print(f"generated {spec.name}: {generated}")
        print(f"embedded structures: { {k: len(v) for k, v in truth.items()} }")

        # Round-trip through the Bookshelf format (what real ISPD files use).
        with tempfile.TemporaryDirectory() as tmp:
            aux_path = write_bookshelf(generated, tmp, "bigblue1_like")
            netlist, _ = read_bookshelf(aux_path)
        print(f"bookshelf round-trip OK: {netlist}")

    report = find_tangled_logic(netlist, FinderConfig(num_seeds=64, seed=9))
    print(f"\n{report.summary()}")

    placement = place(netlist)
    print("\nspatial compactness of each found GTL (vs random groups):")
    movable = netlist.movable_cells()
    rng = np.random.default_rng(1)
    groups = []
    for index, gtl in enumerate(report.gtls, start=1):
        cells = sorted(gtl.cells)
        groups.append(cells)
        xs, ys = placement.x[cells], placement.y[cells]
        own = float(np.hypot(xs - xs.mean(), ys - ys.mean()).mean())
        sample = rng.choice(movable, size=len(cells), replace=False)
        xr, yr = placement.x[sample], placement.y[sample]
        rand = float(np.hypot(xr - xr.mean(), yr - yr.mean()).mean())
        print(
            f"  GTL {index}: {len(cells)} cells, dispersion {own:.1f} "
            f"vs random {rand:.1f} ({rand / own:.1f}x more compact)"
        )

    print("\nplacement map (digits = GTLs, dots = other logic):")
    print(ascii_placement_map(placement, groups))


if __name__ == "__main__":
    main()
