"""Bookshelf round-trip + a declared detect -> place -> congestion flow.

Generates an ISPD-2005-shaped benchmark with embedded logic structures,
writes it in the Bookshelf format the real ISPD benchmarks use, reads it
back, and runs a three-stage :class:`repro.flow.Flow` on it: GTL
detection, analytic placement, RUDY congestion.  It then shows that each
found GTL lands as a compact spatial cluster.

Drop in a real ISPD .aux file to run the identical flow on the original
benchmarks:  python examples/ispd_flow.py [path/to/bigblue1.aux]

Run:  python examples/ispd_flow.py
Environment: REPRO_ISPD_SCALE / REPRO_ISPD_SEEDS shrink the workload
(used by CI smoke runs); REPRO_CACHE_DIR enables per-stage caching.
"""

import os
import sys
import tempfile

import numpy as np

from repro import FinderConfig
from repro.experiments.fig4 import ascii_placement_map
from repro.flow import CongestionStage, DetectStage, Flow, PlaceStage
from repro.generators import default_bigblue1_like, generate_ispd_like
from repro.io import load_design
from repro.io.bookshelf import write_bookshelf
from repro.service import ResultStore


def main() -> None:
    scale = float(os.environ.get("REPRO_ISPD_SCALE", 0.25))
    num_seeds = int(os.environ.get("REPRO_ISPD_SEEDS", 64))
    if len(sys.argv) > 1:
        aux_path = sys.argv[1]
        print(f"reading Bookshelf design {aux_path}")
        netlist = load_design(aux_path)
    else:
        spec = default_bigblue1_like(scale=scale)
        generated, truth = generate_ispd_like(spec, seed=11)
        print(f"generated {spec.name}: {generated}")
        print(f"embedded structures: { {k: len(v) for k, v in truth.items()} }")

        # Round-trip through the Bookshelf format (what real ISPD files use).
        with tempfile.TemporaryDirectory() as tmp:
            aux_path = write_bookshelf(generated, tmp, "bigblue1_like")
            netlist = load_design(aux_path)
        print(f"bookshelf round-trip OK: {netlist}")

    flow = Flow(
        [
            DetectStage(FinderConfig(num_seeds=num_seeds, seed=9)),
            PlaceStage(),
            CongestionStage(grid=(16, 16)),
        ],
        name="ispd",
    )
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "")
    if cache_dir:
        with ResultStore(cache_dir) as store:
            result = flow.run(netlist, store=store)
    else:
        result = flow.run(netlist)
    print(f"\n{result.summary()}")

    report = result.artifact("detect")
    placement = result.artifact("place")
    congestion = result.artifact("congestion")
    print(report.summary())
    print(
        f"\ncongestion: peak occupancy "
        f"{float(congestion.occupancy.max()):.2f}, "
        f"{int(np.count_nonzero(congestion.occupancy >= 1.0))} overfull tile(s)"
    )

    print("\nspatial compactness of each found GTL (vs random groups):")
    movable = netlist.movable_cells()
    rng = np.random.default_rng(1)
    groups = []
    for index, gtl in enumerate(report.gtls, start=1):
        cells = sorted(gtl.cells)
        groups.append(cells)
        xs, ys = placement.x[cells], placement.y[cells]
        own = float(np.hypot(xs - xs.mean(), ys - ys.mean()).mean())
        sample = rng.choice(movable, size=len(cells), replace=False)
        xr, yr = placement.x[sample], placement.y[sample]
        rand = float(np.hypot(xr - xr.mean(), yr - yr.mean()).mean())
        print(
            f"  GTL {index}: {len(cells)} cells, dispersion {own:.1f} "
            f"vs random {rand:.1f} ({rand / own:.1f}x more compact)"
        )

    print("\nplacement map (digits = GTLs, dots = other logic):")
    print(ascii_placement_map(placement, groups))


if __name__ == "__main__":
    main()
