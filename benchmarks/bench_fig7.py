"""Benchmark: regenerate Figure 7 (congestion relief via cell inflation).

Asserts the paper's headline mitigation shape: inflating found-GTL cells 4x
and re-placing reduces the number of nets through >=100% tiles by a clear
factor (paper: 5x), does not increase the 90% count (paper: ~2x reduction),
and lowers the worst-20% average congestion (paper: 136% -> 91%).
"""

from repro.experiments.fig7 import run_fig7
from repro.generators.industrial import IndustrialSpec


def test_fig7(benchmark, once):
    spec = IndustrialSpec(
        glue_gates=10_000,
        rom_blocks=((6, 64), (6, 64), (5, 32)),
        num_pads=96,
    )
    result = benchmark.pedantic(
        run_fig7,
        kwargs=dict(spec=spec, num_seeds=96, seed=2010),
        **once,
    )
    print("\n" + result.render())

    rows = {row[0]: row for row in result.rows}
    n100_before = rows["nets through 100% tiles"][1]
    n100_after = rows["nets through 100% tiles"][2]
    n90_before = rows["nets through 90% tiles"][1]
    n90_after = rows["nets through 90% tiles"][2]

    assert n100_before > 0, "the baseline placement must be congested"
    assert n100_after < 0.7 * n100_before, (
        "inflation must clearly reduce nets through fully congested tiles"
    )
    assert n90_after <= 1.1 * n90_before

    avg_before = float(rows["avg congestion (worst 20% nets)"][1].rstrip("%"))
    avg_after = float(rows["avg congestion (worst 20% nets)"][2].rstrip("%"))
    assert avg_after < avg_before
