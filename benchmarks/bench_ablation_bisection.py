"""Ablation: agglomerative Phase I vs recursive-bisection orderings.

Section 3.2 notes Phase II/III "can be integrated with other linear
ordering generation methods as well" [Alpert & Kahng 1996].  This ablation
feeds Phase II both ordering sources on a planted graph: the paper's
seed-grown agglomeration and an FM recursive-bisection leaf order.
"""

from repro.finder import FinderConfig
from repro.finder.candidate import extract_candidate
from repro.finder.ordering import grow_linear_ordering
from repro.generators.random_gtl import planted_gtl_graph
from repro.partition import bisection_ordering
from repro.utils.rng import ensure_rng


def run_ablation(seed: int = 3):
    netlist, truth = planted_gtl_graph(2500, [250], seed=seed)
    block = truth[0]
    config = FinderConfig()
    rng = ensure_rng(seed + 1)
    seed_cell = rng.choice(sorted(block))

    # Paper's Phase I ordering.
    agglomerative = grow_linear_ordering(netlist, seed_cell, 800)
    candidate_a = extract_candidate(netlist, agglomerative, config)

    # Recursive-bisection ordering, rotated so the block's span leads.
    leaf_order = bisection_ordering(netlist, min_block=32, rng=seed + 2)
    first = min(i for i, c in enumerate(leaf_order) if c in block)
    rotated = leaf_order[first:] + leaf_order[:first]
    candidate_b = extract_candidate(netlist, rotated[:800], config)

    def quality(candidate):
        if candidate is None:
            return 0.0
        return len(candidate.cells & block) / len(candidate.cells | block)

    return quality(candidate_a), quality(candidate_b)


def test_ablation_ordering_source(benchmark, once):
    agglomerative, bisection = benchmark.pedantic(run_ablation, **once)
    print(
        f"\nPhase II candidate Jaccard vs planted block: "
        f"agglomerative {agglomerative:.3f}, bisection {bisection:.3f}"
    )
    assert agglomerative > 0.95, "the paper's ordering recovers the block"
    assert bisection > 0.5, (
        "Phase II also extracts the structure from a partitioning ordering"
    )
