"""Benchmark: regenerate Table 2 (ISPD-like placement benchmarks).

Asserts the paper's shape: every benchmark yields multiple GTLs whose top
structures span hundreds-to-thousands of cells with GTL scores well below 1.
"""

from repro.experiments.table2 import run_table2


def test_table2(benchmark, once):
    result = benchmark.pedantic(
        run_table2,
        kwargs=dict(scale=0.1, num_seeds=32, seed=2010),
        **once,
    )
    print("\n" + result.render())

    per_case = {}
    for row in result.rows:
        if row[0]:
            per_case[row[0]] = row[3]
    assert len(per_case) == 6, "all six benchmarks ran"
    assert sum(1 for v in per_case.values() if v and v >= 1) >= 5, (
        "nearly every benchmark contains detectable structures"
    )
    top_scores = [row[7] for row in result.rows if row[4] == "Structure 1"]
    assert all(score < 0.7 for score in top_scores), (
        "top structures score far below an average group"
    )
