"""Shared helper for machine-readable benchmark records.

Benchmarks that feed the repo's performance trajectory write one
``BENCH_<name>.json`` file at the repository root via :func:`record`, so
successive PRs can diff structured numbers instead of scraping log lines
(in the spirit of recorded workload results in benchmark harnesses like
opensearch-benchmark).

Schema::

    {
      "benchmark": "<name>",
      "schema_version": 2,
      "created_unix": <float, seconds>,
      "python": "3.11.7",
      "smoke": false,
      "results": {...benchmark-specific payload...},
      "run_report": {...optional repro.obs.RunReport.to_dict()...}
    }

Schema version 2 adds the optional ``run_report`` key: benchmarks that
run under tracing embed the per-phase span breakdown and kernel counters
(see :mod:`repro.obs.report`) so the perf trajectory records *where* the
time went, not just totals.

Benchmarks may declare a *headline* metric (a key into ``results``); when
a new record replaces an old one, :func:`record` compares the two and
logs a warning through the ``repro.obs`` logging channel if the headline
regressed by more than :data:`REGRESSION_TOLERANCE` — the perf trajectory
flags its own regressions instead of waiting for a human to diff JSON.
"""

from __future__ import annotations

import json
import logging
import platform
import time
from pathlib import Path
from typing import Mapping, Optional

#: Repository root (benchmarks/ lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 2

#: Relative headline-metric drop (higher-is-better) tolerated silently.
REGRESSION_TOLERANCE = 0.10

logger = logging.getLogger("repro.obs.bench")


def _check_regression(
    out: Path, name: str, results: Mapping, headline: str,
    higher_is_better: bool,
) -> None:
    """Compare the new headline metric against the record being replaced."""
    try:
        previous = json.loads(out.read_text())
    except (OSError, ValueError):
        return
    if previous.get("smoke", False):
        return  # smoke numbers are not a baseline
    old = previous.get("results", {}).get(headline)
    new = results.get(headline)
    if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
        return
    if old <= 0:
        return
    change = (new - old) / old
    regressed = change < -REGRESSION_TOLERANCE if higher_is_better \
        else change > REGRESSION_TOLERANCE
    if regressed:
        logger.warning(
            "benchmark %s: headline %r regressed %.1f%% vs previous record "
            "(%.4g -> %.4g)",
            name, headline, abs(change) * 100, old, new,
        )
        from repro.obs import trace

        if trace.enabled():
            trace.counter("bench.regressions").add(1)
    else:
        logger.info(
            "benchmark %s: headline %r %+.1f%% vs previous record",
            name, headline, change * 100,
        )


def record(
    name: str,
    results: Mapping,
    smoke: bool = False,
    path: Optional[Path] = None,
    run_report: Optional[Mapping] = None,
    headline: str = "",
    higher_is_better: bool = True,
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    Args:
        name: benchmark identifier (file name suffix).
        results: JSON-safe benchmark payload.
        smoke: True when the run was a reduced CI smoke.  A smoke run never
            overwrites an existing full-scale record — the trajectory keeps
            real numbers even when smoke suites run afterwards.
        path: override the output path (tests).
        run_report: optional ``repro.obs.RunReport.to_dict()`` payload from
            a traced run — embeds the per-phase time breakdown and kernel
            counters alongside the headline numbers.
        headline: key into ``results`` naming the headline metric; when the
            write replaces a previous full-scale record, a >10% regression
            is logged as a warning on the ``repro.obs`` channel.
        higher_is_better: direction of the headline metric (speedups and
            throughputs are, latencies are not).
    """
    out = path or (REPO_ROOT / f"BENCH_{name}.json")
    if smoke and out.exists():
        try:
            if not json.loads(out.read_text()).get("smoke", True):
                return out
        except (OSError, ValueError):
            pass  # unreadable record: overwrite it
    if headline and out.exists() and not smoke:
        _check_regression(out, name, results, headline, higher_is_better)
    payload = {
        "benchmark": name,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "smoke": smoke,
        "results": dict(results),
    }
    if run_report is not None:
        payload["run_report"] = dict(run_report)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
