"""Shared helper for machine-readable benchmark records.

Benchmarks that feed the repo's performance trajectory write one
``BENCH_<name>.json`` file at the repository root via :func:`record`, so
successive PRs can diff structured numbers instead of scraping log lines
(in the spirit of recorded workload results in benchmark harnesses like
opensearch-benchmark).

Schema::

    {
      "benchmark": "<name>",
      "schema_version": 1,
      "created_unix": <float, seconds>,
      "python": "3.11.7",
      "smoke": false,
      "results": {...benchmark-specific payload...}
    }
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Mapping, Optional

#: Repository root (benchmarks/ lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 1


def record(
    name: str,
    results: Mapping,
    smoke: bool = False,
    path: Optional[Path] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    Args:
        name: benchmark identifier (file name suffix).
        results: JSON-safe benchmark payload.
        smoke: True when the run was a reduced CI smoke.  A smoke run never
            overwrites an existing full-scale record — the trajectory keeps
            real numbers even when smoke suites run afterwards.
        path: override the output path (tests).
    """
    out = path or (REPO_ROOT / f"BENCH_{name}.json")
    if smoke and out.exists():
        try:
            if not json.loads(out.read_text()).get("smoke", True):
                return out
        except (OSError, ValueError):
            pass  # unreadable record: overwrite it
    payload = {
        "benchmark": name,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "smoke": smoke,
        "results": dict(results),
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
