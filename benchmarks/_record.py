"""Shared helper for machine-readable benchmark records.

Benchmarks that feed the repo's performance trajectory write one
``BENCH_<name>.json`` file at the repository root via :func:`record`, so
successive PRs can diff structured numbers instead of scraping log lines
(in the spirit of recorded workload results in benchmark harnesses like
opensearch-benchmark).

Schema::

    {
      "benchmark": "<name>",
      "schema_version": 2,
      "created_unix": <float, seconds>,
      "python": "3.11.7",
      "smoke": false,
      "results": {...benchmark-specific payload...},
      "run_report": {...optional repro.obs.RunReport.to_dict()...}
    }

Schema version 2 adds the optional ``run_report`` key: benchmarks that
run under tracing embed the per-phase span breakdown and kernel counters
(see :mod:`repro.obs.report`) so the perf trajectory records *where* the
time went, not just totals.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Mapping, Optional

#: Repository root (benchmarks/ lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 2


def record(
    name: str,
    results: Mapping,
    smoke: bool = False,
    path: Optional[Path] = None,
    run_report: Optional[Mapping] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    Args:
        name: benchmark identifier (file name suffix).
        results: JSON-safe benchmark payload.
        smoke: True when the run was a reduced CI smoke.  A smoke run never
            overwrites an existing full-scale record — the trajectory keeps
            real numbers even when smoke suites run afterwards.
        path: override the output path (tests).
        run_report: optional ``repro.obs.RunReport.to_dict()`` payload from
            a traced run — embeds the per-phase time breakdown and kernel
            counters alongside the headline numbers.
    """
    out = path or (REPO_ROOT / f"BENCH_{name}.json")
    if smoke and out.exists():
        try:
            if not json.loads(out.read_text()).get("smoke", True):
                return out
        except (OSError, ValueError):
            pass  # unreadable record: overwrite it
    payload = {
        "benchmark": name,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "smoke": smoke,
        "results": dict(results),
    }
    if run_report is not None:
        payload["run_report"] = dict(run_report)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
