"""Benchmark: regenerate Figure 3 (density-aware GTL-Score curves).

Asserts the paper's claim that the GTL-SD minimum contrast is more dramatic
than the nGTL-Score contrast on the same workload.
"""

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3


def test_fig3(benchmark, once):
    kwargs = dict(num_cells=12_000, gtl_size=2000, seed=2010)
    result = benchmark.pedantic(run_fig3, kwargs=kwargs, **once)
    print("\n" + result.render())

    sd_inside = result.series["seed inside GTL"]
    sd_min_size, sd_min = min(sd_inside, key=lambda p: p[1])
    assert sd_min < 0.05
    assert abs(sd_min_size - 2000) <= 40

    ngtl = run_fig2(**kwargs)
    ngtl_min = min(v for _, v in ngtl.series["seed inside GTL"])
    assert sd_min < ngtl_min, "density awareness sharpens the minimum"
