"""Incremental re-detect vs full recompute after a tiny netlist edit.

The incremental engine's value proposition (ISSUE: PR 9) is that an ECO-
sized edit — a handful of pins rewired inside one neighbourhood of a
~53K-cell industrial design — should *not* cost a full Phase I-III
detection sweep.  :func:`repro.incremental.incremental_detect` diffs the
two netlists, expands the edit's endpoints into a dirty region over the
hypergraph, re-runs only the seed jobs whose recorded footprints touch
that region, and splices the fresh outcomes into the cached trace.

This benchmark measures exactly that trade at full scale:

* ``base``    — a traced cold run on the unedited design (produces the
  :class:`~repro.incremental.SeedTrace` the patch path consumes);
* ``full``    — a cold re-run on the *edited* design (the baseline an
  un-incremental flow would pay);
* ``patched`` — ``incremental_detect`` over the same edit.

Acceptance (full scale only): the patched run is **>= 10x** faster than
the cold re-run, and its report is bit-identical to the cold run's.
Parity is additionally asserted under the scalar reference backend on a
reduced design (running the scalar kernel twice at 53K cells would
dominate the wall clock without telling us anything new).

The edit is deliberately *localized*: pins move only between cells of one
low-fanout neighbourhood, and the finder runs with an explicit small
``max_order_length``.  With the default Z = |V|/4 every seed footprint
covers ~a quarter of the design and any edit dirties everything — the
incremental path exists for the many-small-regions regime, and the
benchmark is honest about configuring it.

Results land in ``BENCH_incremental.json`` (headline: ``speedup``).
``REPRO_BENCH_SMOKE=1`` shrinks the design and skips the 10x floor.
"""

import os
import random
import time

try:
    from benchmarks._record import record
except ImportError:  # invoked outside the repo root: benchmarks/ is on sys.path
    from _record import record
from repro.finder.config import FinderConfig
from repro.generators.industrial import IndustrialSpec, generate_industrial
from repro.incremental import (
    CellEdit,
    NetEdit,
    NetlistDelta,
    apply_delta,
    diff,
    incremental_detect,
    run_traced,
)
from repro.netlist.backend import forced_backend
from repro.service.codec import report_to_dict

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

if SMOKE:
    SMALL_SPEC = IndustrialSpec(glue_gates=1200, rom_blocks=((4, 10),))
    BIG_SPEC = IndustrialSpec(glue_gates=2500, rom_blocks=((5, 16), (5, 16)))
    NUM_SEEDS = 12
    ORDER_LENGTH = 64
    NUM_MOVES = 3
else:
    SMALL_SPEC = IndustrialSpec(glue_gates=1500, rom_blocks=((4, 12), (4, 10)))
    BIG_SPEC = IndustrialSpec(
        glue_gates=30000,
        rom_blocks=((10, 384), (10, 384), (9, 192)),
    )
    NUM_SEEDS = 32
    ORDER_LENGTH = 384
    NUM_MOVES = 6

#: Nets fatter than this are never edited and cells on them never host a
#: moved pin — a single fat-net endpoint would drag hundreds of cells
#: into the dirty region and turn the "tiny edit" into a full re-run.
MAX_EDIT_DEGREE = 6


def _quiet(netlist, cell):
    """True when every net of ``cell`` is low-fanout."""
    return all(
        len(netlist.cells_of_net(net)) <= MAX_EDIT_DEGREE
        for net in netlist.nets_of_cell(cell)
    )


def _localized_delta(netlist, num_moves, rng):
    """Rewire ``num_moves`` pins inside one low-fanout neighbourhood.

    Returns a :class:`NetlistDelta` that moves single pins between quiet
    cells (total pin count invariant, no adds/removes), the shape of edit
    the incremental path is built for.
    """
    movable = netlist.movable_cells()
    anchor = next(
        cell
        for cell in movable[len(movable) // 3:]
        if _quiet(netlist, cell)
    )
    hood = sorted(
        {anchor}
        | {n for n in netlist.neighbors(anchor) if _quiet(netlist, n)}
    )
    movement = {}
    net_edits = {}
    for cell in hood:
        if len(net_edits) >= num_moves:
            break
        for net in netlist.nets_of_cell(cell):
            if len(net_edits) >= num_moves or net in net_edits:
                continue
            members = list(netlist.cells_of_net(net))
            if len(members) > MAX_EDIT_DEGREE:
                continue
            targets = [t for t in hood if t not in members]
            if not targets:
                continue
            target = targets[rng.randrange(len(targets))]
            new_members = [target if m == cell else m for m in members]
            net_edits[net] = (
                tuple(netlist.cell_name(m) for m in members),
                tuple(netlist.cell_name(m) for m in new_members),
            )
            movement[cell] = movement.get(cell, 0) - 1
            movement[target] = movement.get(target, 0) + 1
    return NetlistDelta(
        cells_changed=tuple(
            CellEdit(
                netlist.cell_name(cell),
                netlist.cell_area(cell),
                netlist.cell_pin_count(cell) + shift,
                netlist.cell_is_fixed(cell),
            )
            for cell, shift in sorted(movement.items())
            if shift != 0
        ),
        nets_changed=tuple(
            NetEdit(netlist.net_name(net), old, new)
            for net, (old, new) in sorted(net_edits.items())
        ),
    )


def _comparable(report):
    """Report payload with the one legitimately-varying field removed."""
    payload = report_to_dict(report)
    payload.pop("runtime_seconds", None)
    return payload


def _run_scenario(spec, backend, seed=7):
    """base trace -> localized edit -> cold re-run vs incremental patch."""
    with forced_backend(backend):
        base, _ = generate_industrial(spec, seed=seed)
        config = FinderConfig(
            num_seeds=NUM_SEEDS,
            max_order_length=ORDER_LENGTH,
            seed=seed,
        )
        delta = _localized_delta(base, NUM_MOVES, random.Random(seed))
        edited = apply_delta(base, delta)
        assert diff(base, edited) == delta  # the edit model round-trips

        start = time.perf_counter()
        base_report, seed_trace = run_traced(base, config)
        base_seconds = time.perf_counter() - start

        start = time.perf_counter()
        full_report, _ = run_traced(edited, config)
        full_seconds = time.perf_counter() - start

        start = time.perf_counter()
        result = incremental_detect(base, edited, seed_trace, config)
        incremental_seconds = time.perf_counter() - start

    assert _comparable(result.report) == _comparable(full_report), (
        f"[{backend}] patched report diverges from cold re-run"
    )
    assert result.mode == "incremental", (
        f"[{backend}] expected an incremental patch, got {result.mode!r} "
        f"({result.reason})"
    )
    return {
        "backend": backend,
        "cells": base.num_cells,
        "pins": base.num_pins,
        "pins_rewired": len(delta.nets_changed),
        "dirty_cells": result.dirty_cells,
        "dirty_fraction": round(result.dirty_fraction, 6),
        "seeds_total": result.seeds_total,
        "seeds_recomputed": result.seeds_recomputed,
        "base_seconds": round(base_seconds, 4),
        "full_seconds": round(full_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "speedup": round(full_seconds / max(incremental_seconds, 1e-9), 2),
        "num_gtls": result.report.num_gtls,
    }


def run():
    # Scalar-reference parity on the reduced design: the invariant is
    # backend-independent, the scalar kernel's speed is not.
    scalar = _run_scenario(SMALL_SPEC, "python")
    small = _run_scenario(SMALL_SPEC, "numpy")
    big = _run_scenario(BIG_SPEC, "numpy")

    results = {
        "parity_scalar_small": scalar,
        "parity_numpy_small": small,
        "industrial53k": big,
        "speedup": big["speedup"],
        "smoke": SMOKE,
    }
    if not SMOKE:
        assert big["cells"] >= 50_000, big["cells"]
        assert big["pins_rewired"] <= 0.01 * big["pins"]
        assert big["speedup"] >= 10.0, (
            f"incremental re-detect only {big['speedup']}x faster than a "
            f"cold run ({big['seeds_recomputed']}/{big['seeds_total']} "
            f"seeds recomputed)"
        )
    record("incremental", results, smoke=SMOKE, headline="speedup")
    for name in ("parity_scalar_small", "parity_numpy_small", "industrial53k"):
        row = results[name]
        print(
            f"{name:22s} backend={row['backend']:6s} cells={row['cells']:6d} "
            f"dirty={row['dirty_cells']:4d} "
            f"seeds={row['seeds_recomputed']}/{row['seeds_total']} "
            f"full={row['full_seconds']:.3f}s "
            f"inc={row['incremental_seconds']:.3f}s "
            f"speedup={row['speedup']}x"
        )
    return results


def test_incremental_speedup():
    """Pytest entry point (CI smoke runs this with REPRO_BENCH_SMOKE=1)."""
    run()


if __name__ == "__main__":
    run()
