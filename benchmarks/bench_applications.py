"""Benchmark: the paper's other two GTL applications (Chapter I).

* Soft blocks (floorplanning): a found GTL constrained as a soft block
  stays at least as coherent as the unconstrained placement.
* Re-synthesis: decomposing a GTL's complex gates lowers its pin density
  without changing its external cut — the structural precondition for the
  "more area, less interconnect" trade the paper describes.
"""

import numpy as np

from repro.apps import decompose_complex_gates, place_with_soft_blocks
from repro.finder import FinderConfig, find_tangled_logic
from repro.generators.industrial import IndustrialSpec, generate_industrial
from repro.netlist.ops import cut_size, group_pin_count


def run_applications(seed: int = 4):
    spec = IndustrialSpec(glue_gates=5000, rom_blocks=((5, 32),), num_pads=64)
    netlist, truth = generate_industrial(spec, seed=seed)
    report = find_tangled_logic(netlist, FinderConfig(num_seeds=48, seed=seed + 1))
    block = sorted(report.gtls[0].cells) if report.gtls else sorted(truth[0])

    # Soft blocks.
    free = place_with_soft_blocks(netlist, [], utilization=0.5)
    constrained = place_with_soft_blocks(netlist, [block], utilization=0.5)

    def dispersion(placement):
        xs, ys = placement.x[block], placement.y[block]
        return float(np.hypot(xs - xs.mean(), ys - ys.mean()).mean())

    # Re-synthesis.
    old_cut = cut_size(netlist, block)
    old_area = sum(netlist.cell_area(c) for c in block)
    old_pins = group_pin_count(netlist, block)
    new_netlist, mapping = decompose_complex_gates(netlist, block)
    new_block = [c for old in block for c in mapping[old]]
    new_cut = cut_size(new_netlist, new_block)
    new_area = sum(new_netlist.cell_area(c) for c in new_block)
    new_pins = group_pin_count(new_netlist, new_block)

    return {
        "dispersion_free": dispersion(free),
        "dispersion_soft": dispersion(constrained),
        "cut": (old_cut, new_cut),
        "pin_density": (old_pins / old_area, new_pins / new_area),
        "area": (old_area, new_area),
    }


def test_applications(benchmark, once):
    results = benchmark.pedantic(run_applications, **once)
    print(
        f"\nsoft block dispersion: free {results['dispersion_free']:.1f} -> "
        f"constrained {results['dispersion_soft']:.1f}"
    )
    print(
        f"resynthesis: cut {results['cut'][0]} -> {results['cut'][1]}, "
        f"pin density {results['pin_density'][0]:.2f} -> "
        f"{results['pin_density'][1]:.2f}, area {results['area'][0]:.0f} -> "
        f"{results['area'][1]:.0f}"
    )
    assert results["dispersion_soft"] <= results["dispersion_free"] * 1.05
    assert results["cut"][1] == results["cut"][0], "external cut preserved"
    assert results["pin_density"][1] < results["pin_density"][0], (
        "re-instantiation trades area for lower pin density"
    )
    assert results["area"][1] > results["area"][0]
