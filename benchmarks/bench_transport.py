"""Zero-copy netlist transport: cold loads, worker memory, shipped bytes.

Measures the three transport layers introduced with the binary pack format
(:mod:`repro.io.binfmt`) on the ~53K-cell industrial scenario:

* **Cold load** — parsing the design from text (``.hgr``) vs mmap-loading
  the packed ``.nla`` file (arrays touched end to end so pages actually
  fault in).  Acceptance: the packed load is **>= 5x** faster at full
  scale.  Header-only fingerprinting is timed against a full content walk
  for the same reason (warm caches key off that fingerprint).
* **Worker memory** — the finder run through a :class:`WorkerPool` at 2
  and 4 workers under the shared-memory transport and the pickle fallback
  (``REPRO_PICKLE_TRANSPORT=1``).  Per-worker private memory
  (``smaps_rollup`` Private_Clean+Private_Dirty, reported per ``pool.task``
  span) is the discriminator: shm workers serve the design out of one
  shared segment, so their private footprint stays flat in worker count,
  while every pickle worker materializes its own full replica.
* **Shipped bytes** — descriptor size vs pickled-payload size per context
  shipment (``PoolStats.context_bytes``).

Every measured run must produce a detection report bit-identical to the
serial parsed-text baseline — across pickle/shm transports *and* across
packed/parsed loads.

Results are written to ``BENCH_transport.json`` at the repo root via
:mod:`benchmarks._record`.  ``REPRO_BENCH_SMOKE=1`` shrinks the scenario
and skips the floors (tiny designs amortize nothing); the parity checks
always run.
"""

import os
import time

try:
    from benchmarks._record import record
except ImportError:  # invoked outside the repo root: benchmarks/ is on sys.path
    from _record import record
from repro.finder.config import FinderConfig
from repro.finder.finder import TangledLogicFinder
from repro.generators.industrial import IndustrialSpec, generate_industrial
from repro.io.binfmt import load_packed, packed_fingerprint, write_packed
from repro.io.hgr import read_hgr, write_hgr
from repro.obs import RunReport, trace
from repro.service.fingerprint import fingerprint_netlist
from repro.service.pool import PICKLE_TRANSPORT_ENV, WorkerPool

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

if SMOKE:
    SPEC = IndustrialSpec(glue_gates=2500, rom_blocks=((5, 16), (5, 16)))
    NUM_SEEDS = 4
    WORKER_COUNTS = (2,)
else:
    SPEC = IndustrialSpec(
        glue_gates=30000,
        rom_blocks=((10, 384), (10, 384), (9, 192)),
    )
    NUM_SEEDS = 8
    WORKER_COUNTS = (2, 4)


def _assert_reports_identical(a, b):
    assert a.num_gtls == b.num_gtls
    assert a.num_orderings == b.num_orderings
    assert a.num_candidates == b.num_candidates
    assert a.rent_exponent == b.rent_exponent
    assert a.gtls == b.gtls


def _touch(netlist):
    """Fault every array page and return a checksum-ish int."""
    arrays = netlist.arrays
    return int(arrays.net_cells.sum() + arrays.cell_nets.sum())


def _measure_cold_load(tmp_dir, netlist):
    hgr_path = os.path.join(tmp_dir, "design.hgr")
    nla_path = os.path.join(tmp_dir, "design.nla")
    write_hgr(netlist, hgr_path)

    start = time.perf_counter()
    parsed = read_hgr(hgr_path)
    _touch(parsed)
    parse_seconds = time.perf_counter() - start

    pack_bytes = write_packed(parsed, nla_path)

    start = time.perf_counter()
    packed = load_packed(nla_path)
    _touch(packed)
    load_seconds = time.perf_counter() - start

    # Fingerprint: header read vs full content walk (cleared memo).
    start = time.perf_counter()
    header_fp = packed_fingerprint(nla_path)
    header_fp_seconds = time.perf_counter() - start
    parsed.derived_cache.clear()
    start = time.perf_counter()
    walk_fp = fingerprint_netlist(parsed)
    walk_fp_seconds = time.perf_counter() - start
    assert header_fp == walk_fp

    row = {
        "cells": parsed.num_cells,
        "nets": parsed.num_nets,
        "pins": parsed.num_pins,
        "pack_bytes": pack_bytes,
        "text_parse_s": round(parse_seconds, 4),
        "packed_load_s": round(load_seconds, 4),
        "load_speedup": round(parse_seconds / max(load_seconds, 1e-9), 2),
        "fingerprint_walk_s": round(walk_fp_seconds, 4),
        "fingerprint_header_s": round(header_fp_seconds, 6),
    }
    return row, parsed, packed


def _measure_pool(netlist, workers, serial_report):
    """One traced pool run; returns timing/memory/bytes for the active
    transport (set by the caller via the environment)."""
    config = FinderConfig(num_seeds=NUM_SEEDS, seed=1, workers=workers)
    trace.enable()
    try:
        with WorkerPool(workers) as pool:
            start = time.perf_counter()
            report = TangledLogicFinder(netlist, config).run(pool=pool)
            run_seconds = time.perf_counter() - start
            stats = pool.stats
        run_report = RunReport.from_tracer()
    finally:
        trace.disable()
    _assert_reports_identical(report, serial_report)
    tasks = [s for s in run_report.spans if s["name"] == "pool.task"]
    private = [s["attrs"].get("private_kb", 0.0) for s in tasks] or [0.0]
    maxrss = [s["attrs"].get("maxrss_kb", 0.0) for s in tasks] or [0.0]
    return {
        "workers": workers,
        "run_s": round(run_seconds, 4),
        "context_shipments": stats.context_shipments,
        "context_bytes_per_shipment": (
            stats.context_bytes // max(stats.context_shipments, 1)
        ),
        "shm_segments": stats.shm_segments,
        "shm_bytes": stats.shm_bytes,
        "worker_private_kb_max": round(max(private), 1),
        "worker_private_kb_sum": round(sum(private), 1),
        "worker_maxrss_kb_max": round(max(maxrss), 1),
    }


def test_transport_cold_load_and_worker_memory(tmp_path):
    netlist, _ = generate_industrial(SPEC, seed=5)
    cold, parsed, packed = _measure_cold_load(str(tmp_path), netlist)

    serial_config = FinderConfig(num_seeds=NUM_SEEDS, seed=1)
    serial_report = TangledLogicFinder(parsed, serial_config).run()
    packed_report = TangledLogicFinder(packed, serial_config).run()
    # Packed load reproduces the parsed run exactly.
    _assert_reports_identical(packed_report, serial_report)

    results = {"cold_load": cold, "shm": [], "pickle": [], "file": []}
    previous = os.environ.pop(PICKLE_TRANSPORT_ENV, None)
    try:
        for workers in WORKER_COUNTS:
            results["shm"].append(_measure_pool(parsed, workers, serial_report))
            results["file"].append(_measure_pool(packed, workers, serial_report))
        os.environ[PICKLE_TRANSPORT_ENV] = "1"
        for workers in WORKER_COUNTS:
            results["pickle"].append(
                _measure_pool(parsed, workers, serial_report)
            )
    finally:
        if previous is None:
            os.environ.pop(PICKLE_TRANSPORT_ENV, None)
        else:
            os.environ[PICKLE_TRANSPORT_ENV] = previous

    path = record("transport", results, smoke=SMOKE)
    print(f"\nwrote {path}")
    print(
        f"cold load: text {cold['text_parse_s']}s vs packed "
        f"{cold['packed_load_s']}s ({cold['load_speedup']}x), "
        f"pack {cold['pack_bytes']} bytes"
    )
    for transport in ("shm", "file", "pickle"):
        for row in results[transport]:
            print(
                f"{transport} w={row['workers']}: run {row['run_s']}s, "
                f"{row['context_bytes_per_shipment']} B/shipment, "
                f"worker private max {row['worker_private_kb_max']} KiB "
                f"(sum {row['worker_private_kb_sum']})"
            )

    # Descriptor transports ship small messages regardless of design size;
    # the pickle payload is the whole design.  Holds at any scale.
    for transport in ("shm", "file"):
        for row in results[transport]:
            assert row["context_bytes_per_shipment"] < 16_384
    assert (
        results["pickle"][0]["context_bytes_per_shipment"]
        > 10 * results["shm"][0]["context_bytes_per_shipment"]
    )

    if not SMOKE:
        assert cold["cells"] >= 50_000
        # Acceptance: packed cold load >= 5x faster than the text parse.
        assert cold["load_speedup"] >= 5.0
        # Header fingerprint is read, not recomputed.
        assert cold["fingerprint_header_s"] < cold["fingerprint_walk_s"] / 5.0
        # Worker peak private memory: flat in worker count under shm ...
        shm_by_workers = {row["workers"]: row for row in results["shm"]}
        assert (
            shm_by_workers[4]["worker_private_kb_max"]
            <= shm_by_workers[2]["worker_private_kb_max"] * 1.3 + 25_000
        )
        # ... while every pickle worker carries its own full replica: its
        # per-worker peak clears the shm peak by at least half the design's
        # packed size (the unpickled tuple form is strictly larger).
        pickle_by_workers = {row["workers"]: row for row in results["pickle"]}
        blob_kb = cold["pack_bytes"] / 1024
        assert (
            pickle_by_workers[4]["worker_private_kb_max"]
            >= shm_by_workers[4]["worker_private_kb_max"] + blob_kb / 2
        )
        # Aggregate private memory keeps growing linearly with pickle
        # workers (each new worker adds a replica).
        assert (
            pickle_by_workers[4]["worker_private_kb_sum"]
            >= pickle_by_workers[2]["worker_private_kb_sum"] * 1.4
        )
