"""Per-stage flow caching: cold vs. warm (the tentpole's payoff).

Runs a [detect -> partition -> place -> congestion] flow on one generated
design end-to-end **from the CLI** (``flow run``), then again with the same
``--cache-dir``: the second run must report a cache hit for every stage.
The same flow is then replayed through the API to assert the cached
artifacts are bit-identical to the computed ones (canonical JSON payload
equality covers every float and array).

``REPRO_BENCH_SMOKE=1`` shrinks the design to CI-smoke size and skips the
speedup floor; the hit-rate and bit-identity checks always run.
"""

import json
import os
import time

from repro.cli import main
from repro.flow import (
    CongestionStage,
    DetectStage,
    Flow,
    PartitionStage,
    PlaceStage,
    encode_artifact,
)
from repro.finder import FinderConfig
from repro.generators.random_gtl import planted_gtl_graph
from repro.io import load_design
from repro.io.hgr import write_hgr
from repro.service import ResultStore

# The FM partition stage is the cold run's dominant cost and scales
# super-linearly, so the full-size design stays at ~2K cells.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NUM_CELLS = 1_000 if SMOKE else 2_000
NUM_SEEDS = 6 if SMOKE else 16
CONFIG = FinderConfig(num_seeds=NUM_SEEDS, seed=9)


def _flow() -> Flow:
    return Flow(
        [
            DetectStage(CONFIG),
            PartitionStage(),
            PlaceStage(),
            CongestionStage(grid=(16, 16)),
        ],
        name="bench",
    )


def _cli_run(manifest: str, cache_dir: str) -> float:
    start = time.perf_counter()
    code = main(["flow", "run", manifest, "--cache-dir", cache_dir, "--quiet"])
    assert code == 0
    return time.perf_counter() - start


def test_flow_cache_cold_vs_warm(benchmark, once, tmp_path, capsys):
    netlist, _ = planted_gtl_graph(NUM_CELLS, [NUM_CELLS // 10], seed=3)
    write_hgr(netlist, str(tmp_path / "design.hgr"))
    manifest = tmp_path / "flow.json"
    manifest.write_text(
        json.dumps(
            {
                "designs": ["design.hgr"],
                "stages": [
                    {"stage": "detect", "num_seeds": NUM_SEEDS, "seed": 9},
                    {"stage": "partition"},
                    {"stage": "place"},
                    {"stage": "congestion", "grid": [16, 16]},
                ],
            }
        )
    )
    cache_dir = str(tmp_path / "cache")

    cold_time = _cli_run(str(manifest), cache_dir)
    cold_out = capsys.readouterr().out
    assert "4 put(s)" in cold_out

    warm_time = benchmark.pedantic(
        _cli_run, args=(str(manifest), cache_dir), **once
    )
    warm_out = capsys.readouterr().out
    # Acceptance: the second CLI run answers every stage from the cache.
    assert "4 hit(s) / 0 miss(es) (100% hit rate)" in warm_out
    assert warm_out.count(" hit ") >= 4 and " run " not in warm_out

    # Bit-identity: run the same flow via the API on the same design file
    # into a fresh cache, then replay it; every cached artifact's canonical
    # payload must equal the computed one exactly (a FinderReport embeds
    # its own wall-clock runtime, so identity is only defined against the
    # run that produced the cache entry).
    design = load_design(str(tmp_path / "design.hgr"))
    with ResultStore(str(tmp_path / "api-cache")) as store:
        computed = _flow().run(design, store=store)
        cached = _flow().run(design, store=store)
    assert not any(r.cached for r in computed.results)
    assert cached.all_cached
    for fresh, hit in zip(computed.results, cached.results):
        assert hit.fingerprint == fresh.fingerprint
        assert encode_artifact(hit.kind, hit.artifact) == encode_artifact(
            fresh.kind, fresh.artifact
        )

    # CLI and API share one fingerprint space: the CLI-populated cache
    # answers the API run wholesale.
    with ResultStore(cache_dir) as store:
        assert _flow().run(design, store=store).all_cached

    print(
        f"\n{NUM_CELLS}-cell design, 4 stages: cold {cold_time:.2f}s, "
        f"warm {warm_time:.3f}s (speedup x{cold_time / max(warm_time, 1e-9):.0f})"
    )
    if not SMOKE:
        assert warm_time < 0.5 * cold_time
