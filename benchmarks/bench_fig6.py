"""Benchmark: regenerate Figures 1+6 (hotspots coincide with found GTLs).

Asserts the paper's statement that the found GTLs "match almost exactly"
the routing hotspots: most >=100% tiles contain GTL cells and GTL tiles are
far more congested than the rest of the die.
"""

from repro.experiments.fig6 import run_fig6
from repro.generators.industrial import IndustrialSpec


def test_fig6(benchmark, once):
    spec = IndustrialSpec(
        glue_gates=10_000,
        rom_blocks=((6, 64), (6, 64), (5, 32)),
        num_pads=96,
    )
    result = benchmark.pedantic(
        run_fig6,
        kwargs=dict(spec=spec, num_seeds=96, seed=2010, show_map=False),
        **once,
    )
    print("\n" + result.render())

    values = {row[0]: row[1] for row in result.rows}
    assert values["GTLs found"] >= 2
    assert values["hot (>=100%) tiles"] >= 1, "the design must have hotspots"
    assert values["hot-tile/GTL coincidence"] >= 0.6, (
        "paper: hotspots match the GTLs almost exactly"
    )
    assert values["mean occupancy of GTL tiles"] > 1.5 * values[
        "mean occupancy elsewhere"
    ]
