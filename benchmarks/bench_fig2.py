"""Benchmark: regenerate Figure 2 (nGTL-Score vs group size).

Asserts the paper's curve shape: the inside-seed curve has a deep minimum
at the planted boundary; the outside-seed curve stays flat near 1.
"""

from repro.experiments.fig2 import run_fig2


def test_fig2(benchmark, once):
    gtl_size = 2000
    result = benchmark.pedantic(
        run_fig2,
        kwargs=dict(num_cells=12_000, gtl_size=gtl_size, seed=2010),
        **once,
    )
    print("\n" + result.render())

    inside = result.series["seed inside GTL"]
    outside = result.series["seed outside GTL"]

    min_size, min_value = min(inside, key=lambda p: p[1])
    assert min_value < 0.15, "paper: minimum ~0.1"
    assert abs(min_size - gtl_size) <= 0.02 * gtl_size, "minimum at the boundary"

    # After the minimum the curve rises again (adding non-members hurts).
    tail = [v for s, v in inside if s > 1.5 * gtl_size]
    assert min(tail) > 2 * min_value

    outside_values = [v for s, v in outside if s > 200]
    assert min(outside_values) > 0.3, "outside curve has no GTL-like dip"
    assert 0.5 < sum(outside_values) / len(outside_values) < 1.3
