"""Batch service vs. sequential one-shot runs (the tentpole's payoff).

Three ways to answer the same 10-job workload:

* ``sequential`` — N independent :func:`find_tangled_logic` calls, the
  pre-service repo idiom.
* ``batch cold``  — one :class:`BatchRunner` pass against an empty result
  store (pays fingerprinting + store inserts on top of the detection work).
* ``batch warm``  — the same pass again: every job must be answered from
  the store (>= 90% hits required) and the pass must beat the cold run by
  a wide margin.
"""

import time

from repro.finder import FinderConfig, find_tangled_logic
from repro.generators.random_gtl import planted_gtl_graph
from repro.service import BatchRunner, DetectionJob, ResultStore

NUM_JOBS = 10
CONFIG = FinderConfig(num_seeds=12, seed=9)


def _make_jobs():
    jobs = []
    for index in range(NUM_JOBS):
        cells = 2_000 + 300 * index
        netlist, _ = planted_gtl_graph(cells, [cells // 12], seed=index)
        jobs.append(DetectionJob(netlist=netlist, config=CONFIG, label=f"d{index}"))
    return jobs


def _sequential(jobs) -> float:
    start = time.perf_counter()
    for job in jobs:
        find_tangled_logic(job.netlist, job.config)
    return time.perf_counter() - start


def _batch(jobs, store) -> float:
    start = time.perf_counter()
    with BatchRunner(workers=1, store=store) as runner:
        results = runner.run(jobs)
    assert all(r.ok for r in results)
    return time.perf_counter() - start


def test_service_batch_cold_vs_warm(benchmark, once, tmp_path):
    jobs = _make_jobs()
    sequential_time = _sequential(jobs)

    with ResultStore(str(tmp_path / "cache")) as store:
        cold_time = _batch(jobs, store)
        cold_stats = (store.stats.hits, store.stats.misses)

        warm_time = benchmark.pedantic(_batch, args=(jobs, store), **once)
        warm_hits = store.stats.hits - cold_stats[0]
        hit_rate = warm_hits / len(jobs)

    print(
        f"\n{NUM_JOBS} jobs: sequential {sequential_time:.2f}s, "
        f"batch cold {cold_time:.2f}s, batch warm {warm_time:.3f}s "
        f"({hit_rate:.0%} warm hits, warm speedup x{cold_time / warm_time:.0f})"
    )
    # Acceptance: warm pass answers >= 90% of jobs from the cache and is
    # measurably faster than the cold pass.
    assert hit_rate >= 0.9
    assert warm_time < 0.5 * cold_time
    # The service layer's bookkeeping (fingerprints, SQLite inserts) must
    # stay a small tax on top of the raw sequential detection work.
    assert cold_time < 1.5 * sequential_time + 1.0
