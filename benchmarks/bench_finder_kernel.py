"""Scalar vs array detection kernel on industrial-like designs.

Runs the full three-phase finder under both backends (see
:mod:`repro.netlist.backend`) on two `generators.industrial` scenarios:

* ``small`` — the default ~15K-cell Table-3 design;
* ``industrial50k`` — a ~53K-cell variant with large dissolved ROMs
  (~8.7K cells each) around wide (2^10-line) decoders, the fat-fanout
  regime the paper's industrial testcase describes.

For each scenario/config the two backends must produce bit-identical
reports — same GTL cell sets, sizes, cuts and seeds, scores within 1e-9 —
which is the invariant that lets flow caches be shared across backends.

The 50K scenario is measured in two finder configurations:

* ``exact`` — ``lambda_skip=0``, the paper's exact connection-weight
  algorithm with no update skipping.  This is the acceptance measurement:
  the array kernel must be **>= 5x** faster than the scalar reference at
  full scale (the scalar path drowns in per-pin dict updates, O(degree)
  cut-delta recounts and a garbage-clogged lazy heap).
* ``lambda20`` — the default skip optimization, which shrinks update
  volume for both backends and narrows the gap (~3x); recorded for
  transparency, no floor asserted.

Results are written to ``BENCH_finder_kernel.json`` at the repo root via
:mod:`benchmarks._record` (the machine-readable perf trajectory).

``REPRO_BENCH_SMOKE=1`` shrinks both scenarios to CI-smoke size and skips
the speedup floor (tiny designs cannot amortize anything); the parity
checks always run.
"""

import os
import time

try:
    from benchmarks._record import record
except ImportError:  # invoked outside the repo root: benchmarks/ is on sys.path
    from _record import record
from repro.finder.config import FinderConfig
from repro.finder.finder import TangledLogicFinder
from repro.generators.industrial import IndustrialSpec, generate_industrial
from repro.netlist.backend import forced_backend
from repro.obs import RunReport, trace

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

if SMOKE:
    SMALL_SPEC = IndustrialSpec(glue_gates=1500, rom_blocks=((4, 12), (4, 10)))
    BIG_SPEC = IndustrialSpec(glue_gates=2500, rom_blocks=((5, 16), (5, 16)))
    NUM_SEEDS = 4
else:
    SMALL_SPEC = IndustrialSpec()  # the default Table-3-like design (~15K)
    BIG_SPEC = IndustrialSpec(
        glue_gates=30000,
        rom_blocks=((10, 384), (10, 384), (9, 192)),
    )
    NUM_SEEDS = 8


def _run_backend(netlist, config, backend):
    with forced_backend(backend):
        start = time.perf_counter()
        report = TangledLogicFinder(netlist, config).run()
        return time.perf_counter() - start, report


def _assert_reports_identical(scalar_report, array_report):
    """Bit-identical GTL sets; scores within 1e-9; same global exponent."""
    assert scalar_report.num_gtls == array_report.num_gtls
    assert scalar_report.num_orderings == array_report.num_orderings
    assert scalar_report.num_candidates == array_report.num_candidates
    assert scalar_report.rent_fallback == array_report.rent_fallback
    assert abs(scalar_report.rent_exponent - array_report.rent_exponent) <= 1e-9
    for scalar_gtl, array_gtl in zip(scalar_report.gtls, array_report.gtls):
        assert set(scalar_gtl.cells) == set(array_gtl.cells)
        assert scalar_gtl.size == array_gtl.size
        assert scalar_gtl.cut == array_gtl.cut
        assert scalar_gtl.seed == array_gtl.seed
        assert abs(scalar_gtl.score - array_gtl.score) <= 1e-9
        assert abs(scalar_gtl.ngtl_score - array_gtl.ngtl_score) <= 1e-9
        assert abs(scalar_gtl.gtl_sd_score - array_gtl.gtl_sd_score) <= 1e-9


def _measure(netlist, config):
    scalar_seconds, scalar_report = _run_backend(netlist, config, "python")
    array_seconds, array_report = _run_backend(netlist, config, "numpy")
    _assert_reports_identical(scalar_report, array_report)
    return {
        "cells": netlist.num_cells,
        "nets": netlist.num_nets,
        "num_seeds": config.num_seeds,
        "lambda_skip": config.lambda_skip,
        "num_gtls": array_report.num_gtls,
        "gtl_sizes": [gtl.size for gtl in array_report.gtls],
        "scalar_s": round(scalar_seconds, 4),
        "array_s": round(array_seconds, 4),
        "speedup": round(scalar_seconds / max(array_seconds, 1e-9), 2),
    }


def _measure_tracing(netlist, config):
    """Traced vs. untraced array run on the same design, back to back.

    Returns the comparison row and the traced run's :class:`RunReport`.
    The traced report must be bit-identical to the untraced one — the
    obs layer observes, it never perturbs — and the traced run must stay
    within 5% wall-clock at full scale (sub-second smoke runs get a
    looser bound because fixed costs don't amortize).
    """
    with forced_backend("numpy"):
        start = time.perf_counter()
        untraced_report = TangledLogicFinder(netlist, config).run()
        untraced_seconds = time.perf_counter() - start

        trace.enable()
        try:
            start = time.perf_counter()
            traced_report = TangledLogicFinder(netlist, config).run()
            traced_seconds = time.perf_counter() - start
            run_report = RunReport.from_tracer()
        finally:
            trace.disable()

    _assert_reports_identical(untraced_report, traced_report)
    if SMOKE:
        assert traced_seconds <= untraced_seconds * 1.5 + 0.05
    else:
        assert traced_seconds <= untraced_seconds * 1.05
    phases = {
        name: round(row["total_s"], 4)
        for name, row in run_report.phase_totals().items()
        if name.startswith("finder.phase")
    }
    row = {
        "cells": netlist.num_cells,
        "untraced_s": round(untraced_seconds, 4),
        "traced_s": round(traced_seconds, 4),
        "overhead": round(traced_seconds / max(untraced_seconds, 1e-9), 4),
        "phases_s": phases,
        "counters": run_report.counters(),
    }
    return row, run_report


def test_finder_kernel_scalar_vs_array():
    small_netlist, _ = generate_industrial(SMALL_SPEC, seed=5)
    big_netlist, _ = generate_industrial(BIG_SPEC, seed=5)
    small_netlist.arrays  # build CSR views outside the timed regions
    big_netlist.arrays

    results = {
        "small": _measure(
            small_netlist, FinderConfig(num_seeds=NUM_SEEDS, seed=1)
        ),
        "industrial50k_exact": _measure(
            big_netlist, FinderConfig(num_seeds=NUM_SEEDS, seed=1, lambda_skip=0)
        ),
        "industrial50k_lambda20": _measure(
            big_netlist, FinderConfig(num_seeds=NUM_SEEDS, seed=1)
        ),
    }
    tracing_row, run_report = _measure_tracing(
        big_netlist, FinderConfig(num_seeds=NUM_SEEDS, seed=1)
    )
    results["industrial50k_tracing"] = tracing_row
    path = record(
        "finder_kernel", results, smoke=SMOKE, run_report=run_report.to_dict()
    )
    print(f"\nwrote {path}")
    for name, row in results.items():
        if "scalar_s" not in row:
            continue
        print(
            f"{name}: {row['cells']} cells, scalar {row['scalar_s']}s, "
            f"array {row['array_s']}s, speedup {row['speedup']}x, "
            f"gtls {row['num_gtls']}"
        )
    print(
        f"tracing: untraced {tracing_row['untraced_s']}s, "
        f"traced {tracing_row['traced_s']}s "
        f"({tracing_row['overhead']}x), phases {tracing_row['phases_s']}"
    )

    if not SMOKE:
        # Acceptance: >= 50K cells and >= 5x on the exact-weight kernel,
        # with bit-identical reports (asserted above for every row).
        exact = results["industrial50k_exact"]
        assert exact["cells"] >= 50_000
        assert exact["num_gtls"] >= 2  # dissolved ROM blocks are recovered
        assert exact["speedup"] >= 5.0
