"""Benchmark: regenerate Figure 5 (metric comparison along one ordering).

Asserts the paper's three curve behaviours: interior shared minimum for the
GTL metrics, right-end minimum for ratio cut, nGTL-Score hovering near 1.
"""

from repro.experiments.fig5 import run_fig5


def test_fig5(benchmark, once):
    result = benchmark.pedantic(
        run_fig5,
        kwargs=dict(scale=0.5, seed=2010, probe_seeds=24),
        **once,
    )
    print("\n" + result.render())

    ngtl = result.series["nGTL-S"]
    sd = result.series["GTL-SD"]
    ratio = result.series["ratio-cut"]
    length = ngtl[-1][0]

    n_min_size = min(ngtl, key=lambda p: p[1])[0]
    d_min_size = min(sd, key=lambda p: p[1])[0]
    r_min_size = min(ratio, key=lambda p: p[1])[0]

    assert n_min_size < 0.9 * length, "nGTL-S minimum is interior"
    assert abs(n_min_size - d_min_size) <= 0.05 * length, (
        "both GTL metrics identify the same structure"
    )
    assert r_min_size >= 0.9 * length, "ratio-cut minimum sits at the right end"

    mean_ngtl = sum(v for _, v in ngtl) / len(ngtl)
    assert 0.6 < mean_ngtl < 1.5, "nGTL-Score values are mostly around 1"
