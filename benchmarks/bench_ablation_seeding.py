"""Ablation: seed-selection strategies vs the paper's uniform draw.

With a fixed seed budget, biased seeding should detect the planted
structures at least as reliably as uniform seeding (the paper compensates
with 100 uniform seeds; smarter draws matter when seeds are scarce).
"""

from repro.analysis.overlap import match_to_ground_truth
from repro.finder import FinderConfig, find_tangled_logic
from repro.generators.random_gtl import planted_gtl_graph


def run_ablation(seed: int = 9, budget: int = 10, trials: int = 3):
    detection = {}
    for strategy in ("uniform", "pin_density", "clustering", "stratified"):
        hits = 0
        total = 0
        for trial in range(trials):
            netlist, truth = planted_gtl_graph(
                6000, [250, 400], seed=seed + trial
            )
            config = FinderConfig(
                num_seeds=budget,
                seed=seed + 100 + trial,
                seed_strategy=strategy,
            )
            report = find_tangled_logic(netlist, config)
            matches = match_to_ground_truth(truth, report.gtls)
            hits += sum(1 for m in matches if m.detected)
            total += len(truth)
        detection[strategy] = hits / total
    return detection


def test_ablation_seeding(benchmark, once):
    detection = benchmark.pedantic(run_ablation, **once)
    print("\ndetection rate at a 10-seed budget:")
    for strategy, rate in detection.items():
        print(f"  {strategy:12s} {rate:.2f}")
    # The planted blocks are pin-dense, so density-biased seeding must be
    # at least as good as uniform at this small budget.
    assert detection["pin_density"] >= detection["uniform"] - 0.2
    assert all(rate > 0 for rate in detection.values())
