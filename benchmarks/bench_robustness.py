"""Robustness: GTL detection under netlist noise.

Rewires an increasing fraction of pins and measures whether the planted
block is still detected and how its score degrades.  The finder should be
robust to small ECO-level noise (a few percent of pins) and degrade
gracefully, not catastrophically.
"""

from repro.analysis.overlap import match_to_ground_truth
from repro.finder import FinderConfig, find_tangled_logic
from repro.generators.perturb import rewire_pins
from repro.generators.random_gtl import planted_gtl_graph


def run_robustness(seed: int = 15):
    netlist, truth = planted_gtl_graph(5000, [400], seed=seed)
    results = {}
    for fraction in (0.0, 0.02, 0.05, 0.1):
        noisy = rewire_pins(netlist, fraction, rng=seed + 1)
        report = find_tangled_logic(
            noisy, FinderConfig(num_seeds=24, seed=seed + 2)
        )
        matches = match_to_ground_truth(truth, report.gtls)
        match = matches[0]
        results[fraction] = (
            match.detected,
            match.miss,
            match.found.ngtl_score if match.found else float("nan"),
        )
    return results


def test_robustness_to_rewiring(benchmark, once):
    results = benchmark.pedantic(run_robustness, **once)
    print("\nnoise -> (detected, miss, nGTL-S):")
    for fraction, (detected, miss, score) in results.items():
        print(f"  {fraction:4.0%}: detected={detected} miss={miss:.3f} "
              f"score={score:.3f}")
    assert results[0.0][0], "clean case must be detected"
    assert results[0.02][0], "2% pin noise must not break detection"
    assert results[0.05][0], "5% pin noise must not break detection"
    # Scores degrade monotonically-ish with noise (cut grows).
    assert results[0.05][2] > results[0.0][2]
