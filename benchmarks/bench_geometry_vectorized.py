"""Scalar vs vectorized geometry hot paths on an ISPD-like design.

Measures the three paths PR 2 vectorized — total HPWL, the RUDY congestion
map, and quadratic system assembly — in both backends on one generated
bigblue1-shaped design, asserts scalar/vectorized parity within 1e-9, and
(at full scale) requires the vectorized HPWL + congestion build to be at
least 5x faster than the scalar reference.

Prints a one-line JSON summary (sizes, per-path timings, speedups).

``REPRO_BENCH_SMOKE=1`` shrinks the design to CI-smoke size and skips the
speedup floor (a tiny design cannot amortize numpy call overhead); the
parity checks always run.
"""

import json
import os
import time

import numpy as np

from repro.generators.ispd_like import default_bigblue1_like, generate_ispd_like
from repro.placement.pads import assign_pad_positions
from repro.placement.placer import Placement
from repro.placement.quadratic import assemble_quadratic_system
from repro.placement.region import Die
from repro.routing.congestion import build_congestion_map

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SCALE = 0.02 if SMOKE else 1.4
GRID = (8, 8) if SMOKE else (48, 48)


def _make_placement():
    netlist, _ = generate_ispd_like(default_bigblue1_like(SCALE), seed=3)
    die = Die.for_area(float(netlist.arrays.areas.sum()), utilization=0.6)
    rng = np.random.default_rng(11)
    placement = Placement(
        netlist=netlist,
        die=die,
        x=rng.uniform(0.0, die.width, netlist.num_cells),
        y=rng.uniform(0.0, die.height, netlist.num_cells),
    )
    pads = assign_pad_positions(netlist, die)
    return placement, pads


def _timed(function):
    start = time.perf_counter()
    result = function()
    return time.perf_counter() - start, result


def test_geometry_vectorized_parity_and_speedup(benchmark, once):
    placement, pads = _make_placement()
    netlist = placement.netlist
    netlist.arrays  # build the flat view outside the timed regions

    hpwl_scalar_t, hpwl_scalar = _timed(lambda: placement.hpwl(backend="python"))
    hpwl_vector_t, hpwl_vector = _timed(lambda: placement.hpwl(backend="numpy"))

    rudy_scalar_t, rudy_scalar = _timed(
        lambda: build_congestion_map(placement, grid=GRID, backend="python")
    )
    rudy_vector_t, rudy_vector = _timed(
        lambda: build_congestion_map(placement, grid=GRID, backend="numpy")
    )

    asm_scalar_t, asm_scalar = _timed(
        lambda: assemble_quadratic_system(netlist, pads, backend="python")
    )
    asm_vector_t, asm_vector = _timed(
        lambda: benchmark.pedantic(
            assemble_quadratic_system,
            args=(netlist, pads),
            kwargs=dict(backend="numpy"),
            **once,
        )
    )

    # Parity: every vectorized path matches its scalar reference.
    assert hpwl_vector == hpwl_scalar  # bit-identical by construction
    np.testing.assert_allclose(
        rudy_vector.demand, rudy_scalar.demand, rtol=1e-12, atol=1e-9
    )
    assert rudy_vector.net_boxes == rudy_scalar.net_boxes
    difference = (asm_scalar[0] - asm_vector[0]).tocoo()
    max_delta = np.abs(difference.data).max() if difference.nnz else 0.0
    assert max_delta <= 1e-9
    np.testing.assert_allclose(asm_vector[1], asm_scalar[1], atol=1e-9)
    np.testing.assert_allclose(asm_vector[2], asm_scalar[2], atol=1e-9)

    hot_speedup = (hpwl_scalar_t + rudy_scalar_t) / max(
        hpwl_vector_t + rudy_vector_t, 1e-9
    )
    summary = {
        "cells": netlist.num_cells,
        "nets": netlist.num_nets,
        "grid": list(GRID),
        "smoke": SMOKE,
        "hpwl": {
            "total": hpwl_vector,
            "scalar_s": round(hpwl_scalar_t, 4),
            "vector_s": round(hpwl_vector_t, 4),
            "speedup": round(hpwl_scalar_t / max(hpwl_vector_t, 1e-9), 1),
        },
        "rudy": {
            "scalar_s": round(rudy_scalar_t, 4),
            "vector_s": round(rudy_vector_t, 4),
            "speedup": round(rudy_scalar_t / max(rudy_vector_t, 1e-9), 1),
        },
        "assembly": {
            "scalar_s": round(asm_scalar_t, 4),
            "vector_s": round(asm_vector_t, 4),
            "speedup": round(asm_scalar_t / max(asm_vector_t, 1e-9), 1),
        },
        "hpwl_plus_rudy_speedup": round(hot_speedup, 1),
    }
    print("\n" + json.dumps(summary))

    if not SMOKE:
        # Acceptance: >= 20k cells and >= 5x on total HPWL + RUDY build.
        assert netlist.num_cells >= 20_000
        assert hot_speedup >= 5.0
