"""Benchmark: regenerate Table 1 (random graphs with planted GTLs).

Asserts the paper's result shape: every planted GTL is found with miss and
over rates far below 1% (paper: miss <= 0.14%, over <= 0.5%).
"""

from repro.experiments.table1 import run_table1


def test_table1(benchmark, once):
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(scale=0.05, num_seeds=100, seed=2010),
        **once,
    )
    print("\n" + result.render())

    data_rows = [r for r in result.rows if r[5] != "(missed)"]
    missed = [r for r in result.rows if r[5] == "(missed)"]
    assert not missed, "paper finds every planted GTL"
    for row in data_rows:
        assert row[8] <= 2.0, "miss% must stay near zero"
        assert row[9] <= 2.0, "over% must stay near zero"
        assert row[6] < 0.5, "nGTL-S of a planted GTL is far below 1"
