"""Benchmark: regenerate Figure 4 (GTLs cluster spatially in the placement).

Asserts that every found GTL is substantially more compact on the placed
die than random same-size cell groups — the quantitative form of the
paper's colored-clot plot.
"""

from repro.experiments.fig4 import run_fig4


def test_fig4(benchmark, once):
    result = benchmark.pedantic(
        run_fig4,
        kwargs=dict(scale=0.15, num_seeds=32, seed=2010, show_map=False),
        **once,
    )
    print("\n" + result.render())

    assert result.rows, "at least one GTL must be found"
    for row in result.rows:
        compactness = row[4]
        assert compactness > 1.5, (
            "a found GTL is placed much more compactly than a random group"
        )
