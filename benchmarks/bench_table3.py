"""Benchmark: regenerate Table 3 (industrial circuit, dissolved ROMs).

Asserts the paper's shape: every designed ROM block is recovered with a
found size within a few percent of the designed size and GTL scores in the
~0.02-0.05 band.
"""

from repro.experiments.table3 import run_table3
from repro.generators.industrial import IndustrialSpec


def test_table3(benchmark, once):
    spec = IndustrialSpec(
        glue_gates=8000,
        rom_blocks=((6, 48), (6, 48), (6, 48), (6, 48), (5, 16)),
        num_pads=96,
    )
    result = benchmark.pedantic(
        run_table3,
        kwargs=dict(spec=spec, num_seeds=96, seed=2010),
        **once,
    )
    print("\n" + result.render())

    found = [r for r in result.rows if r[1] != "(missed)"]
    assert len(found) >= 4, "paper recovers all five ROM blocks"
    for row in found:
        designed, size = row[0], row[1]
        assert abs(size - designed) / designed < 0.15
        assert row[4] <= 5.0  # miss%
        assert row[3] < 0.2  # GTL-Score far below 1
