"""Ablation: connection-weight-first vs min-cut-first Phase I ordering.

Section 3.2.1 argues that preferring the connection weight over plain
min-cut "leads to addition of cells belonging to true GTL first".  This
ablation grows orderings from seeds inside a planted block with the normal
grower and with a cut-greedy variant, and compares how pure the first
|block| positions are.
"""

from typing import List

from repro.finder.ordering import LinearOrderingGrower
from repro.generators.random_gtl import planted_gtl_graph
from repro.utils.rng import ensure_rng


class _CutGreedyGrower(LinearOrderingGrower):
    """Variant that picks the min-cut candidate, ignoring the weight."""

    def step(self):
        best = None
        best_key = None
        # Scan the live frontier (small: the weight map).
        for cell in list(self._weight):
            key = (self.cut_delta(cell), cell)
            if best_key is None or key < best_key:
                best_key = key
                best = cell
        if best is None:
            return None
        self._heap.discard(best)
        self._absorb(best)
        return best


def _purity(ordering: List[int], block: frozenset) -> float:
    prefix = ordering[: len(block)]
    return len(set(prefix) & block) / len(block)


def run_ablation(num_cells: int = 6000, block_size: int = 500, seed: int = 7):
    """Returns (weight_first_purity, cut_first_purity), averaged."""
    netlist, truth = planted_gtl_graph(num_cells, [block_size], seed=seed)
    block = truth[0]
    rng = ensure_rng(seed + 1)
    seeds = rng.sample(sorted(block), 5)

    weight_purity = []
    cut_purity = []
    for seed_cell in seeds:
        normal = LinearOrderingGrower(netlist, seed_cell)
        normal.grow(block_size)
        weight_purity.append(_purity(normal.ordering, block))

        greedy = _CutGreedyGrower(netlist, seed_cell)
        greedy.grow(block_size)
        cut_purity.append(_purity(greedy.ordering, block))
    return (
        sum(weight_purity) / len(weight_purity),
        sum(cut_purity) / len(cut_purity),
    )


def test_ablation_ordering_criterion(benchmark, once):
    weight_first, cut_first = benchmark.pedantic(run_ablation, **once)
    print(
        f"\nordering purity over first |block| cells: weight-first "
        f"{weight_first:.3f} vs min-cut-first {cut_first:.3f}"
    )
    assert weight_first > 0.95, "weight-first stays inside the true GTL"
    assert weight_first >= cut_first - 0.02, (
        "the paper's primary criterion is at least as pure as min-cut-first"
    )
