"""Scalar vs array FM partition kernel on generated designs.

Runs the partition layer under both backends (see
:mod:`repro.netlist.backend`) on two scenarios:

* ``fm27k`` — one FM bisection of a bigblue1-like ISPD-shaped design at
  scale 2.0 (~27K cells).  This is the acceptance measurement: the array
  kernel must be **>= 4x** faster than the scalar reference at full scale
  (the scalar path drowns in per-move bucket sorting and per-pin dict
  updates; the array kernel runs on flat per-cell state with split
  value-validated gain heaps and a vectorized subset restriction).
* ``ispd_bisection`` — full recursive bisection (the bisection-ordering
  alternative Phase I) of a bigblue1-like design at scale 1.0 (~15K
  cells), reusing one shared
  :class:`~repro.partition.kernel.SubsetCSR` restriction down the tree.
  Small blocks amortize less, so the gap narrows (~2x); recorded for
  transparency, no floor asserted.

For each scenario the two backends must produce bit-identical results —
same sides, cut and pass counts for FM, same leaves in the same order for
recursive bisection — the invariant that lets flow caches be shared across
backends.

Results are written to ``BENCH_partition_kernel.json`` at the repo root
via :mod:`benchmarks._record` (the machine-readable perf trajectory).

``REPRO_BENCH_SMOKE=1`` shrinks both scenarios to CI-smoke size and skips
the speedup floor (tiny designs cannot amortize anything); the parity
checks always run.
"""

import os
import time

try:
    from benchmarks._record import record
except ImportError:  # invoked outside the repo root: benchmarks/ is on sys.path
    from _record import record
from repro.generators.ispd_like import default_bigblue1_like, generate_ispd_like
from repro.netlist.backend import forced_backend
from repro.partition import fm_bisect, recursive_bisection

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

if SMOKE:
    FM_SCALE = 0.15
    BISECTION_SCALE = 0.1
    MIN_BLOCK = 16
else:
    FM_SCALE = 2.0  # ~27K cells
    BISECTION_SCALE = 1.0  # ~17K cells, ~hundreds of tree nodes
    MIN_BLOCK = 64


def _timed(func, backend):
    with forced_backend(backend):
        start = time.perf_counter()
        result = func()
        return time.perf_counter() - start, result


def _measure_fm(netlist):
    scalar_seconds, scalar = _timed(lambda: fm_bisect(netlist, rng=1), "python")
    array_seconds, array = _timed(lambda: fm_bisect(netlist, rng=1), "numpy")
    assert scalar.sides == array.sides
    assert scalar.cut == array.cut
    assert scalar.passes == array.passes
    return {
        "cells": netlist.num_cells,
        "nets": netlist.num_nets,
        "cut": array.cut,
        "passes": array.passes,
        "scalar_s": round(scalar_seconds, 4),
        "array_s": round(array_seconds, 4),
        "speedup": round(scalar_seconds / max(array_seconds, 1e-9), 2),
    }


def _measure_bisection(netlist):
    scalar_seconds, scalar = _timed(
        lambda: recursive_bisection(netlist, min_block=MIN_BLOCK, rng=3), "python"
    )
    array_seconds, array = _timed(
        lambda: recursive_bisection(netlist, min_block=MIN_BLOCK, rng=3), "numpy"
    )
    assert scalar == array  # same leaves, same order
    return {
        "cells": netlist.num_cells,
        "nets": netlist.num_nets,
        "min_block": MIN_BLOCK,
        "leaves": len(array),
        "scalar_s": round(scalar_seconds, 4),
        "array_s": round(array_seconds, 4),
        "speedup": round(scalar_seconds / max(array_seconds, 1e-9), 2),
    }


def test_partition_kernel_scalar_vs_array():
    fm_netlist, _ = generate_ispd_like(default_bigblue1_like(FM_SCALE), seed=5)
    bisect_netlist, _ = generate_ispd_like(
        default_bigblue1_like(BISECTION_SCALE), seed=7
    )
    fm_netlist.arrays  # build CSR views outside the timed regions
    bisect_netlist.arrays

    results = {
        "fm27k": _measure_fm(fm_netlist),
        "ispd_bisection": _measure_bisection(bisect_netlist),
    }
    path = record("partition_kernel", results, smoke=SMOKE)
    print(f"\nwrote {path}")
    for name, row in results.items():
        print(
            f"{name}: {row['cells']} cells, scalar {row['scalar_s']}s, "
            f"array {row['array_s']}s, speedup {row['speedup']}x"
        )

    if not SMOKE:
        # Acceptance: >= 20K cells and >= 4x on one FM bisection, with
        # bit-identical partitions (asserted above for every row).
        fm = results["fm27k"]
        assert fm["cells"] >= 20_000
        assert fm["speedup"] >= 4.0
