"""Runtime scaling of the finder (complexity check, Section 4.1.2).

Phase I is O(|E| log |V|) per seed; the full pipeline should therefore
scale roughly linearly in graph size for a fixed seed count.  This
benchmark measures one mid-size configuration (for the timing record) and
checks the growth factor between two sizes stays well below quadratic.
"""

import time

from repro.finder import FinderConfig, find_tangled_logic
from repro.generators.random_gtl import planted_gtl_graph


def _run(num_cells: int, seed: int = 5) -> float:
    netlist, _ = planted_gtl_graph(num_cells, [num_cells // 20], seed=seed)
    config = FinderConfig(num_seeds=8, seed=seed)
    start = time.perf_counter()
    find_tangled_logic(netlist, config)
    return time.perf_counter() - start


def test_finder_scaling(benchmark, once):
    small_time = _run(4000)
    large_time = benchmark.pedantic(_run, args=(16_000,), **once)
    print(f"\n4K cells: {small_time:.2f}s, 16K cells: {large_time:.2f}s")
    # 4x cells; allow up to ~8x time (log factors, constants) — far below
    # the 16x a quadratic algorithm would need.
    assert large_time < 10 * max(small_time, 0.05)
